//! Toward an N-IP SoC (Section IV-D): add the Hexagon DSP's scalar unit
//! as a third concurrent IP and see why the paper found it "too wimpy to
//! substantially perturb CPU-GPU behavior".
//!
//! Run with `cargo run --example three_ip`.

use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};
use gables_soc_sim::{presets, Job, RooflineKernel, Simulator, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The measured three-IP Gables spec for the Snapdragon-835-like SoC.
    let spec = SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(7.5))
        .bpeak(BytesPerSec::from_gbps(25.5))
        .cpu("Kryo CPU", BytesPerSec::from_gbps(15.1))
        .accelerator("Adreno 540 GPU", 349.6 / 7.5, BytesPerSec::from_gbps(24.4))?
        .accelerator("Hexagon DSP scalar", 3.0 / 7.5, BytesPerSec::from_gbps(5.4))?
        .build()?;
    println!("{spec}");

    // Give the DSP a slice of work and watch the model's verdict.
    println!("work split (CPU/GPU/DSP) at I = 16 everywhere:");
    for dsp_share in [0.0, 0.05, 0.2, 0.4] {
        let rest = 1.0 - dsp_share;
        let workload = Workload::builder()
            .work(rest * 0.25, 16.0)?
            .work(rest * 0.75, 16.0)?
            .work(dsp_share, 16.0)?
            .build()?;
        let eval = evaluate(&spec, &workload)?;
        println!(
            "  DSP share {dsp_share:<5}: Pattainable = {:>7.2} Gops/s (bottleneck: {})",
            eval.attainable().to_gops(),
            eval.bottleneck()
        );
    }
    println!("a few percent of work saturates the 3 GFLOPS/s scalar unit;\n");

    // The same story on the execution-driven simulator: CPU+GPU co-run
    // with and without the DSP alongside.
    let sim = Simulator::new(presets::snapdragon_835_like())?;
    let cpu_gpu = vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(8)
            },
        },
    ];
    let base = sim.run(&cpu_gpu)?;
    let mut with_dsp = cpu_gpu.clone();
    with_dsp.push(Job {
        ip: presets::DSP,
        kernel: RooflineKernel::dram_resident(8).scaled(0.05),
    });
    let perturbed = sim.run(&with_dsp)?;
    let cpu_delta = (perturbed.jobs[0].seconds - base.jobs[0].seconds) / base.jobs[0].seconds;
    let gpu_delta = (perturbed.jobs[1].seconds - base.jobs[1].seconds) / base.jobs[1].seconds;
    println!(
        "simulator: adding a DSP job perturbs CPU completion by {:.2}% and GPU by {:.2}%",
        100.0 * cpu_delta,
        100.0 * gpu_delta
    );
    println!(
        "(the DSP streams {:.1} GB/s of the {:.1} GB/s controller — Section IV-D's finding)",
        perturbed.jobs[2].achieved_bytes_per_sec / 1e9,
        sim.soc().dram.effective_bandwidth() / 1e9
    );
    Ok(())
}
