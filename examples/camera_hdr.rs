//! Camera scenario: the paper's Section II-B motivation made concrete.
//!
//! Computes the DRAM demand of 4K high-frame-rate recording, shows it
//! saturating a 30 GB/s SoC, then models the HDR+ usecase (Table I) on an
//! SoC with an ISP and an IPU to find which component limits the shot.
//!
//! Run with `cargo run --example camera_hdr`.

use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};
use gables_usecase::{table1_usecases, CameraPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the bandwidth wall. 4K240 with noise reduction and five
    // reference frames moves ~12 MB frames many times per frame period.
    let pipeline = CameraPipeline::hfr_4k240();
    println!(
        "4K240 pipeline: {:.2} MB/frame, {:.1} GB/s standing DRAM demand",
        pipeline.format.frame_megabytes(),
        pipeline.dram_gbps()
    );
    for bpeak in [30.0, 40.0, 60.0] {
        println!(
            "  on a {bpeak:.0} GB/s SoC: {} (max sustainable {:.0} fps)",
            if pipeline.saturates(bpeak) {
                "SATURATED"
            } else {
                "ok"
            },
            pipeline.max_fps(bpeak)
        );
    }

    // Part 2: the HDR+ usecase from Table I on a camera-oriented SoC.
    let hdr = table1_usecases()
        .into_iter()
        .find(|u| u.name() == "HDR+")
        .expect("Table I includes HDR+");
    println!(
        "\nHDR+ exercises {} IPs concurrently: {}",
        hdr.concurrency(),
        hdr.active_ips()
            .map(|ip| ip.short_name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Hardware: AP + GPU + ISP + IPU (Pixel-Visual-Core-like: "3 trillion
    // ops/s per core, 8 cores" ~ 24 Tops/s => acceleration ~48 over a 0.5
    // Tops/s AP at int8-equivalent throughput). Units here are "ops".
    let soc = SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(500.0))
        .bpeak(BytesPerSec::from_gbps(30.0))
        .cpu("AP", BytesPerSec::from_gbps(15.0))
        .accelerator("GPU", 4.0, BytesPerSec::from_gbps(24.0))?
        .accelerator("ISP", 6.0, BytesPerSec::from_gbps(20.0))?
        .accelerator("IPU", 48.0, BytesPerSec::from_gbps(18.0))?
        .build()?;

    // Software: the HDR+ burst. Most math lives in the IPU's merge/tone-
    // map (high reuse in its line buffers); the ISP streams raw frames
    // (low reuse); the AP and GPU orchestrate and preview.
    let workload = Workload::builder()
        .work(0.05, 2.0)? // AP: control + bookkeeping
        .work(0.10, 4.0)? // GPU: viewfinder compositing
        .work(0.25, 1.0)? // ISP: raw streaming, little reuse
        .work(0.60, 16.0)? // IPU: align/merge/tone-map with local reuse
        .build()?;
    let eval = evaluate(&soc, &workload)?;
    println!("\nHDR+ on the camera SoC:\n{eval}");

    // What if the IPU's software kept less state on-chip?
    let sloppy = workload.with_intensity(3, 2.0)?;
    let worse = evaluate(&soc, &sloppy)?;
    println!(
        "if IPU reuse drops 16 -> 2 ops/byte: {:.1} -> {:.1} Gops/s (bottleneck: {})",
        eval.attainable().to_gops(),
        worse.attainable().to_gops(),
        worse.bottleneck()
    );
    Ok(())
}
