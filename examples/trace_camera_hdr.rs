//! Telemetry walkthrough: where does the HDR+ burst spend its time?
//!
//! Re-runs the camera SoC from `camera_hdr.rs` on the execution-driven
//! simulator with a `TimelineRecorder` attached, then prints the
//! per-job bottleneck attribution, an ASCII bottleneck/utilization
//! timeline, and writes a Chrome trace (`chrome://tracing` /
//! <https://ui.perfetto.dev>) next to the working directory.
//!
//! The same artifacts are available from the CLI via
//! `gables trace <spec.ini> [prefix]`.
//!
//! Run with `cargo run --example trace_camera_hdr`.

use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::SocSpec;
use gables_plot::{render_timeline, utilization_row, TimelineRow, TimelineSpan};
use gables_soc_sim::{presets, telemetry, Job, RooflineKernel, Simulator, TimelineRecorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The camera-oriented SoC from `camera_hdr.rs`: AP + GPU + ISP + IPU.
    let soc = SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(500.0))
        .bpeak(BytesPerSec::from_gbps(30.0))
        .cpu("AP", BytesPerSec::from_gbps(15.0))
        .accelerator("GPU", 4.0, BytesPerSec::from_gbps(24.0))?
        .accelerator("ISP", 6.0, BytesPerSec::from_gbps(20.0))?
        .accelerator("IPU", 48.0, BytesPerSec::from_gbps(18.0))?
        .build()?;
    let sim = Simulator::new(presets::from_gables_spec(&soc))?;

    // The HDR+ split: (work fraction, operational intensity in ops/byte).
    // The RMW kernel realizes intensity I as round(8·I) flops per
    // 8-byte word; the fraction scales each job's share of the burst.
    let burst = [(0.05, 2.0), (0.10, 4.0), (0.25, 1.0), (0.60, 16.0)];
    let jobs: Vec<Job> = burst
        .iter()
        .enumerate()
        .map(|(ip, &(fraction, intensity))| Job {
            ip,
            kernel: RooflineKernel::dram_resident((intensity * 8.0_f64).round() as u32)
                .scaled(fraction),
        })
        .collect();

    let mut recorder = TimelineRecorder::new();
    let run = sim.run_with_recorder(&jobs, &mut recorder)?;
    let names: Vec<String> = sim.soc().ips.iter().map(|ip| ip.name.clone()).collect();

    // 1. The human-readable report: makespan, per-job attribution.
    print!(
        "{}",
        telemetry::text_report(&run, recorder.epochs(), &names)
    );

    // 2. A bottleneck ribbon per IP plus a shaded DRAM-utilization row.
    let mut rows: Vec<TimelineRow> = names
        .iter()
        .enumerate()
        .map(|(ip, name)| TimelineRow {
            label: name.clone(),
            spans: recorder
                .epochs()
                .iter()
                .flat_map(|e| {
                    e.flows.iter().filter(|f| f.ip == ip).map(|f| TimelineSpan {
                        t_start: e.t_start,
                        t_end: e.t_end,
                        glyph: f.binding.glyph(),
                    })
                })
                .collect(),
        })
        .collect();
    let dram: Vec<(f64, f64, f64)> = recorder
        .epochs()
        .iter()
        .map(|e| (e.t_start, e.t_end, e.dram_utilization))
        .collect();
    rows.push(utilization_row("DRAM", &dram));
    println!("\nC compute, P port, D DRAM; DRAM row shading = utilization");
    print!("{}", render_timeline(&rows, 64));

    // 3. The machine-readable artifacts.
    std::fs::write(
        "hdr_burst.trace.json",
        telemetry::chrome_trace_json(recorder.epochs(), &names),
    )?;
    std::fs::write(
        "hdr_burst.timeline.csv",
        telemetry::csv_timeline(recorder.epochs(), &names),
    )?;
    println!("\nwrote hdr_burst.trace.json (chrome://tracing) and hdr_burst.timeline.csv");
    Ok(())
}
