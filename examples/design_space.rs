//! Early-stage design-space exploration: the "which IPs and roughly how
//! big?" question the paper says Gables exists to answer.
//!
//! Compares three candidate SoCs for one usecase, sweeps offload fraction
//! and memory bandwidth, reads sensitivities, and contrasts with a
//! MultiAmdahl area split.
//!
//! Run with `cargo run --example design_space`.

use gables_model::analysis::{bpeak_sweep, offload_sweep, sensitivities, sufficient_bpeak};
use gables_model::baselines::multiamdahl::{MultiAmdahl, PerfFn, Task};
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};

fn candidate(name: &str, a1: f64, bpeak: f64) -> Result<SocSpec, gables_model::GablesError> {
    SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(20.0))
        .bpeak(BytesPerSec::from_gbps(bpeak))
        .cpu(format!("{name}-CPU"), BytesPerSec::from_gbps(12.0))
        .accelerator(format!("{name}-NPU"), a1, BytesPerSec::from_gbps(16.0))?
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The usecase: 80% of work offloadable at 6 ops/byte, rest on the CPU
    // at 8 ops/byte.
    let usecase = Workload::two_ip(0.8, 8.0, 6.0)?;

    println!("candidate comparison for the fixed usecase:");
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "candidate", "Pattainable", "bottleneck", "needed Bpeak"
    );
    for (name, a1, bpeak) in [
        ("big-npu/thin-dram", 30.0, 12.0),
        ("mid-npu/mid-dram", 12.0, 20.0),
        ("small-npu/fat-dram", 6.0, 34.0),
    ] {
        let soc = candidate(name, a1, bpeak)?;
        let eval = evaluate(&soc, &usecase)?;
        let needed = sufficient_bpeak(&soc, &usecase)?;
        println!(
            "{name:<28} {:>9.1} G {:>16} {:>11.1} GB/s",
            eval.attainable().to_gops(),
            eval.bottleneck().to_string(),
            needed.to_gbps()
        );
    }

    // Offload sweep on the middle candidate: where does acceleration pay?
    let soc = candidate("mid", 12.0, 20.0)?;
    println!("\noffload sweep (I0 = I1 = 6):");
    for p in offload_sweep(&soc, 6.0, 6.0, 8)? {
        println!(
            "  f = {:<5} normalized = {:>6.3} ({})",
            p.f,
            p.normalized,
            p.evaluation.bottleneck()
        );
    }

    // Bandwidth sweep: diminishing returns once the IPs bind.
    println!("\nBpeak sweep:");
    for p in bpeak_sweep(&soc, &usecase, 5.0, 80.0, 8)? {
        println!(
            "  Bpeak = {:>6.1} GB/s -> {:>7.2} Gops/s ({})",
            p.bpeak_gbps,
            p.evaluation.attainable().to_gops(),
            p.evaluation.bottleneck()
        );
    }

    // Sensitivities: which knob is worth a respin?
    println!("\nelasticities of Pattainable (1.0 = proportional):");
    for s in sensitivities(&soc, &usecase)? {
        println!("  d ln P / d ln {:<6} = {:>6.3}", s.parameter, s.elasticity);
    }

    // MultiAmdahl's serialized, compute-only view of the same split, with
    // Pollack's-rule cores: how much area each side earns.
    let problem = MultiAmdahl::new(vec![
        Task {
            work_fraction: 0.2,
            perf: PerfFn::Pollack { k: 20.0 },
        },
        Task {
            work_fraction: 0.8,
            perf: PerfFn::Pollack { k: 60.0 },
        },
    ])?;
    let alloc = problem.optimize(10.0)?;
    println!(
        "\nMultiAmdahl area split (10 units): CPU {:.2}, NPU {:.2} -> serial P = {:.1} Gops/s",
        alloc.allocations[0],
        alloc.allocations[1],
        1.0 / alloc.execution_time
    );
    println!("(MultiAmdahl sees no bandwidth walls; Gables above does — Section VI)");
    Ok(())
}
