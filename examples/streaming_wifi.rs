//! The Figure 4 usecase end to end: describe the WiFi-streaming dataflow,
//! derive Gables software inputs from it, and evaluate the usecase on an
//! SoC specification.
//!
//! Run with `cargo run --example streaming_wifi`.

use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec};
use gables_usecase::flows::streaming_wifi;
use gables_usecase::gables::{derive_inputs, input_rows};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = streaming_wifi();
    flow.validate().map_err(std::io::Error::other)?;
    println!("{flow}");

    let inputs = derive_inputs(&flow)?;
    println!("derived Gables software inputs:");
    for row in input_rows(&flow, &inputs) {
        println!(
            "  {:<12} f = {:.4}  I = {:>10.3} ops/byte",
            row.ip.short_name(),
            row.fraction,
            row.intensity
        );
    }

    // Hardware: a modest SoC; IP order must match the derived input order.
    let mut b = SocSpec::builder();
    b.ppeak(OpsPerSec::from_gops(10.0))
        .bpeak(BytesPerSec::from_gbps(12.0));
    for (i, ip) in inputs.ips.iter().enumerate() {
        if i == 0 {
            b.cpu(ip.short_name(), BytesPerSec::from_gbps(10.0));
        } else {
            // Fixed-function blocks: modest acceleration, narrow ports.
            b.accelerator(ip.short_name(), 2.0, BytesPerSec::from_gbps(4.0))?;
        }
    }
    let soc = b.build()?;

    let eval = evaluate(&soc, &inputs.workload)?;
    println!("\nusecase on the SoC:\n{eval}");
    println!(
        "standing demand {:.2} Gops/s vs attainable {:.2} Gops/s -> {}",
        inputs.total_ops_per_sec / 1e9,
        eval.attainable().to_gops(),
        if inputs.total_ops_per_sec <= eval.attainable().value() {
            "real-time feasible"
        } else {
            "NOT feasible in real time"
        }
    );
    Ok(())
}
