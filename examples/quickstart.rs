//! Quickstart: model a two-IP SoC with Gables, find the bottleneck, and
//! walk the paper's Figure 6 design iteration.
//!
//! Run with `cargo run --example quickstart`.

use gables_model::analysis::sufficient_bpeak;
use gables_model::two_ip::TwoIpModel;
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hardware: a 40 Gops/s CPU complex (6 GB/s port), a 5x accelerator
    // (15 GB/s port), 10 GB/s of shared off-chip bandwidth.
    let soc = SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(40.0))
        .bpeak(BytesPerSec::from_gbps(10.0))
        .cpu("CPU", BytesPerSec::from_gbps(6.0))
        .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))?
        .build()?;
    println!("{soc}");

    // Software usecase: 75% of the work offloaded to the GPU, but with
    // poor data reuse there (0.1 ops/byte vs the CPU's 8).
    let usecase = Workload::two_ip(0.75, 8.0, 0.1)?;
    let eval = evaluate(&soc, &usecase)?;
    println!("naive offload:\n{eval}");

    // The model says memory binds. How much bandwidth would be enough?
    let needed = sufficient_bpeak(&soc, &usecase)?;
    println!(
        "bandwidth sufficient for this usecase: {:.1} GB/s (vs {:.1} installed)\n",
        needed.to_gbps(),
        soc.bpeak().to_gbps()
    );

    // The paper's better answer (Figure 6d): fix the *reuse*, then trim
    // bandwidth to what the balanced design needs.
    let balanced = TwoIpModel::figure_6d();
    let eval = balanced.evaluate()?;
    println!("balanced design (Figure 6d):\n{eval}");
    println!("balanced across all components: {}", eval.is_balanced(1e-9));
    Ok(())
}
