//! Empirically derive rooflines for a simulated Snapdragon-835-like SoC
//! (the paper's Section IV methodology) and feed them back into the
//! analytical Gables model.
//!
//! Run with `cargo run --example empirical_roofline`.

use gables_ert::{fit, sweep, SweepConfig};
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};
use gables_soc_sim::{presets, MixHarness, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Simulator::new(presets::snapdragon_835_like())?;
    println!("{}", sim.soc());

    // Empirical rooflines via the Algorithm-1 sweep (Figures 7 and 9).
    let cpu = fit(&sweep(&sim, presets::CPU, &SweepConfig::cpu_default())?);
    let gpu = fit(&sweep(&sim, presets::GPU, &SweepConfig::gpu_default())?);
    let dsp = fit(&sweep(&sim, presets::DSP, &SweepConfig::cpu_default())?);
    println!("CPU: {cpu}");
    println!("GPU: {gpu}");
    println!("DSP: {dsp}");
    println!(
        "GPU acceleration vs CPU: {:.1}x (paper: 349.6/7.5 = 46.6x)\n",
        gpu.peak_gflops / cpu.peak_gflops
    );

    // Assemble the measured ceilings into a Gables hardware spec.
    let spec = SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(cpu.peak_gflops))
        .bpeak(BytesPerSec::from_gbps(25.5))
        .cpu("CPU", BytesPerSec::from_gbps(cpu.dram_gbps))
        .accelerator(
            "GPU",
            gpu.peak_gflops / cpu.peak_gflops,
            BytesPerSec::from_gbps(gpu.dram_gbps),
        )?
        .accelerator(
            "DSP",
            dsp.peak_gflops / cpu.peak_gflops,
            BytesPerSec::from_gbps(dsp.dram_gbps),
        )?
        .build()?;

    // Model vs simulator on one mixing point (Section IV-C).
    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    for (f, intensity) in [(0.5, 8.0), (0.75, 64.0), (1.0, 1024.0)] {
        let kernel = harness.kernel_at_intensity(intensity)?;
        let measured = harness.run(kernel, f)?.flops_per_sec / 1e9;
        let workload = Workload::builder()
            .work(1.0 - f, intensity)?
            .work(f, intensity)?
            .idle()
            .build()?;
        let bound = evaluate(&spec, &workload)?.attainable().to_gops();
        println!(
            "f = {f:<5} I = {intensity:<6} simulator {measured:>8.2} GFLOPS/s   Gables bound {bound:>8.2}   ({:.0}% of bound)",
            100.0 * measured / bound
        );
    }
    Ok(())
}
