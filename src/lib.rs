//! Umbrella package for the Gables reproduction workspace:
//! re-exports the member crates for the integration tests and examples.

pub use gables_ert as ert;
pub use gables_market as market;
pub use gables_model as model;
pub use gables_plot as plot;
pub use gables_soc_sim as soc_sim;
pub use gables_usecase as usecase;
