//! Integration: the analytical Gables model against the execution-driven
//! simulator — the reproduction's core validity argument.
//!
//! On a cacheless simulator SoC built *from* a Gables hardware spec, a
//! single-IP run must land exactly on the IP's roofline, and concurrent
//! runs must respect (and, without overheads, approach) the model's
//! `Pattainable` bound.

use gables_model::two_ip::TwoIpModel;
use gables_model::{evaluate, Workload};
use gables_soc_sim::{presets, CoordinationOverhead, Job, MixHarness, RooflineKernel, Simulator};

fn sim_for(model: &TwoIpModel) -> Simulator {
    let spec = model.soc().expect("valid spec");
    Simulator::new(presets::from_gables_spec(&spec)).expect("valid sim config")
}

#[test]
fn single_ip_run_sits_on_the_roofline() {
    let model = TwoIpModel::figure_6a();
    let sim = sim_for(&model);
    for fpw in [1u32, 8, 48, 64, 256, 4096] {
        let kernel = RooflineKernel::dram_resident(fpw);
        let run = sim.run(&[Job { ip: 0, kernel }]).expect("runs");
        let i = kernel.intensity();
        // IP[0] roofline: min(B0 * I, Ppeak) = min(6*I, 40) Gops/s.
        let expected = (6.0 * i).min(40.0);
        let got = run.jobs[0].achieved_flops_per_sec / 1e9;
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "I={i}: {got} vs {expected}"
        );
    }
}

#[test]
fn concurrent_run_never_exceeds_pattainable() {
    // Sweep (f, I0=I1) over the Figure 6 hardware; the simulator's
    // aggregate throughput must respect the model's upper bound at the
    // matching workload.
    let model = TwoIpModel::figure_6a();
    let spec = model.soc().expect("valid");
    let sim = sim_for(&model);
    let harness = MixHarness::new(&sim, 0, 1).with_overhead(CoordinationOverhead::none());
    for intensity in [0.5, 2.0, 8.0, 64.0] {
        let kernel = harness
            .kernel_at_intensity(intensity)
            .expect("representable");
        for step in 0..=4 {
            let f = step as f64 / 4.0;
            let measured = harness.run(kernel, f).expect("runs").flops_per_sec / 1e9;
            let w = Workload::two_ip(f, kernel.intensity(), kernel.intensity()).expect("valid");
            let bound = evaluate(&spec, &w).expect("valid").attainable().to_gops();
            assert!(
                measured <= bound * 1.01,
                "f={f} I={intensity}: measured {measured} > bound {bound}"
            );
        }
    }
}

#[test]
fn ideal_concurrent_run_approaches_pattainable() {
    // With no coordination overhead and perfectly divisible work, the
    // simulator should achieve most of the model's bound: the bound is
    // tight, not loose. (The gap comes from the two halves finishing at
    // different times — the model assumes perfect overlap.)
    let model = TwoIpModel::figure_6d();
    let spec = model.soc().expect("valid");
    let sim = sim_for(&model);
    let harness = MixHarness::new(&sim, 0, 1).with_overhead(CoordinationOverhead::none());
    let kernel = harness.kernel_at_intensity(8.0).expect("representable");
    let measured = harness.run(kernel, 0.75).expect("runs").flops_per_sec / 1e9;
    let w = model.workload().expect("valid");
    let bound = evaluate(&spec, &w).expect("valid").attainable().to_gops();
    assert!((bound - 160.0).abs() < 1e-9);
    assert!(
        measured > 0.9 * bound,
        "measured {measured} too far below bound {bound}"
    );
}

#[test]
fn figure_6b_memory_wall_shows_up_in_the_simulator() {
    // The model's headline story — offloading poor-reuse work collapses
    // performance — must reproduce mechanically in the simulator. The
    // workload of Figure 6b has different intensities per IP, which the
    // mix harness does not support directly, so run the jobs explicitly.
    let model = TwoIpModel::figure_6b();
    let sim = sim_for(&model);
    // CPU: 25% of ops at I=8; GPU: 75% of ops at I=0.1. Build kernels
    // with matching op counts: ops = words * fpw (trials=1).
    // CPU kernel: fpw 64 (I = 8), GPU kernel: IA = 0.1 needs fpw 0.8 —
    // not representable; use word_bytes 4, pattern RMW, fpw 1 => I=0.125.
    // Keep I ratio approximate; shape is what matters.
    let total_ops = 4.0e9;
    let cpu_kernel = RooflineKernel {
        trials: 1,
        words: (total_ops * 0.25 / 64.0) as u64,
        word_bytes: 4,
        flops_per_word: 64,
        pattern: gables_soc_sim::TrafficPattern::ReadModifyWrite,
        data_type: gables_soc_sim::kernel::DataType::Fp32,
    };
    let gpu_kernel = RooflineKernel {
        trials: 1,
        words: (total_ops * 0.75) as u64,
        word_bytes: 4,
        flops_per_word: 1,
        pattern: gables_soc_sim::TrafficPattern::ReadModifyWrite,
        data_type: gables_soc_sim::kernel::DataType::Fp32,
    };
    let run = sim
        .run(&[
            Job {
                ip: 0,
                kernel: cpu_kernel,
            },
            Job {
                ip: 1,
                kernel: gpu_kernel,
            },
        ])
        .expect("runs");
    let aggregate = run.aggregate_flops_per_sec / 1e9;
    // The model (at I1 = 0.125) bounds it just above the paper's 1.3:
    let w = Workload::two_ip(0.75, 8.0, 0.125).expect("valid");
    let bound = evaluate(&model.soc().expect("valid"), &w)
        .expect("valid")
        .attainable()
        .to_gops();
    assert!(aggregate <= bound * 1.01, "{aggregate} > {bound}");
    // And it is a catastrophe compared to the 40 Gops/s of Figure 6a.
    assert!(
        aggregate < 4.0,
        "memory wall did not materialize: {aggregate}"
    );
}

#[test]
fn snapdragon_presets_agree_with_ert_and_model() {
    // End-to-end: simulate, fit empirical rooflines, assemble a Gables
    // spec from them, and check the model's f=0 / f=1 endpoints match the
    // simulator's single-IP measurements.
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid");
    let cpu = gables_ert::measure(&sim, presets::CPU, &gables_ert::SweepConfig::cpu_default())
        .expect("sweeps");
    let gpu = gables_ert::measure(&sim, presets::GPU, &gables_ert::SweepConfig::gpu_default())
        .expect("sweeps");
    let spec = gables_model::SocSpec::builder()
        .ppeak(gables_model::units::OpsPerSec::from_gops(cpu.peak_gflops))
        .bpeak(gables_model::units::BytesPerSec::from_gbps(25.5))
        .cpu(
            "CPU",
            gables_model::units::BytesPerSec::from_gbps(cpu.dram_gbps),
        )
        .accelerator(
            "GPU",
            gpu.peak_gflops / cpu.peak_gflops,
            gables_model::units::BytesPerSec::from_gbps(gpu.dram_gbps),
        )
        .expect("valid")
        .build()
        .expect("valid");

    for (f, i, expect_gflops) in [
        (0.0, 1024.0, 7.5),         // all-CPU compute bound
        (1.0, 1024.0, 349.6),       // all-GPU compute bound
        (1.0, 0.125, 24.4 * 0.125), // all-GPU bandwidth bound
    ] {
        let w = Workload::two_ip(f, i, i).expect("valid");
        let bound = evaluate(&spec, &w).expect("valid").attainable().to_gops();
        assert!(
            (bound - expect_gflops).abs() / expect_gflops < 0.02,
            "f={f} I={i}: {bound} vs {expect_gflops}"
        );
    }
}
