//! Integration: every paper table and figure regenerates, and each
//! anchored metric lands near its paper value. This is the executable
//! form of EXPERIMENTS.md.

use std::path::PathBuf;

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gables-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn every_experiment_regenerates_within_tolerance() {
    let dir = out_dir("all");
    let reports = gables_bench::all_reports(&dir).expect("all experiments run");
    assert_eq!(reports.len(), 21, "one report per regeneration target");
    for report in &reports {
        let tol = gables_bench::report_tolerance(&report.id);
        assert!(
            report.max_relative_error() < tol,
            "{} off by {:.1}% (tol {:.0}%):\n{report}",
            report.id,
            100.0 * report.max_relative_error(),
            100.0 * tol
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure_6_is_bit_exact_against_the_appendix() {
    use gables_model::two_ip::TwoIpModel;
    for (name, model, expected) in TwoIpModel::figure_6_progression() {
        let got = model.attainable_gops().expect("valid");
        assert!(
            (got - expected).abs() < 1e-9,
            "figure {name}: {got} vs {expected}"
        );
    }
}

#[test]
fn svg_artifacts_are_written_and_well_formed() {
    let dir = out_dir("svg");
    let reports = gables_bench::all_reports(&dir).expect("runs");
    let mut svg_count = 0;
    for r in &reports {
        for artifact in &r.artifacts {
            let text = std::fs::read_to_string(artifact).expect("artifact exists");
            if artifact.extension().is_some_and(|e| e == "svg") {
                svg_count += 1;
                assert!(text.starts_with("<svg"), "{}", artifact.display());
                assert!(
                    text.trim_end().ends_with("</svg>"),
                    "{}",
                    artifact.display()
                );
            }
        }
    }
    // fig1 (1) + fig2 (2) + fig6 (4) + fig7 (2) + fig8 (1) + fig9 (1).
    assert_eq!(svg_count, 11);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure_8_ordering_matches_the_paper() {
    // The qualitative claims of Section IV-C, checked from the raw sweep:
    // higher intensity lines dominate lower ones at full offload, the
    // I=1024 line peaks at f=1, and the I=1 line ends below where it
    // starts.
    use gables_soc_sim::{presets, MixHarness, Simulator};
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid");
    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    let lines = harness
        .sweep(&gables_bench::figures::fig8::INTENSITIES, 8)
        .expect("sweeps");

    // Dominance at f = 1.
    for pair in lines.windows(2) {
        let low = pair[0].last().expect("points").flops_per_sec;
        let high = pair[1].last().expect("points").flops_per_sec;
        assert!(high >= low, "intensity ordering violated at f=1");
    }
    // I = 1024 monotone rising in f.
    let top = lines.last().expect("lines");
    for pair in top.windows(2) {
        assert!(pair[1].flops_per_sec >= pair[0].flops_per_sec * 0.999);
    }
    // I = 1 ends in a slowdown.
    let bottom = lines.first().expect("lines");
    assert!(
        bottom.last().expect("points").flops_per_sec
            < bottom.first().expect("points").flops_per_sec
    );
}

#[test]
fn hfr_4k240_bandwidth_wall_reproduces() {
    // Section II-B's motivating arithmetic.
    let pipeline = gables_usecase::CameraPipeline::hfr_4k240();
    assert!((pipeline.format.frame_megabytes() - 12.44).abs() < 0.01);
    assert!(pipeline.saturates(30.0));
}
