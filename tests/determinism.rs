//! Integration: the whole stack is deterministic — identical inputs give
//! bit-identical outputs across runs, which the figure-regeneration
//! harness and EXPERIMENTS.md rely on.

use gables_market::Market;
use gables_model::explore::{explore, pareto_frontier, CandidateGrid, CostModel};
use gables_model::Workload;
use gables_soc_sim::cache_sim::{CacheConfig, CacheSim};
use gables_soc_sim::trace::TracePattern;
use gables_soc_sim::{presets, Job, MixHarness, RooflineKernel, Simulator};

#[test]
fn simulator_runs_are_deterministic() {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid");
    let jobs = vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: gables_soc_sim::TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(8)
            },
        },
    ];
    let a = sim.run(&jobs).expect("runs");
    let b = sim.run(&jobs).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn mix_sweep_is_deterministic() {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid");
    let harness = MixHarness::new(&sim, presets::CPU, presets::GPU);
    let a = harness.sweep(&[1.0, 64.0], 4).expect("sweeps");
    let b = harness.sweep(&[1.0, 64.0], 4).expect("sweeps");
    assert_eq!(a, b);
}

#[test]
fn cache_simulation_is_deterministic() {
    let cfg = CacheConfig {
        capacity_bytes: 64 << 10,
        line_bytes: 64,
        associativity: 4,
    };
    let trace = TracePattern::RandomChase {
        bytes: 1 << 20,
        stride: 64,
        count: 50_000,
    }
    .generate();
    let mut a = CacheSim::new(cfg).expect("valid");
    let mut b = CacheSim::new(cfg).expect("valid");
    assert_eq!(a.run_trace(&trace), b.run_trace(&trace));
}

#[test]
fn market_and_explorer_are_deterministic() {
    assert_eq!(Market::generate(7), Market::generate(7));

    let grid = CandidateGrid {
        ppeak_gops: 40.0,
        b0_gbps: 6.0,
        accelerations: vec![1.0, 5.0],
        b1_gbps: vec![5.0, 15.0],
        bpeak_gbps: vec![10.0, 20.0],
    };
    let w = Workload::two_ip(0.75, 8.0, 8.0).expect("valid");
    let a = explore(&grid, &CostModel::unit(), &w).expect("explores");
    let b = explore(&grid, &CostModel::unit(), &w).expect("explores");
    assert_eq!(a, b);
    assert_eq!(pareto_frontier(&a), pareto_frontier(&b));
}

#[test]
fn figure_regeneration_is_deterministic() {
    // The pure-model reports are cheap enough to run twice and compare.
    let a = gables_bench::figures::extensions::ext_serialized();
    let b = gables_bench::figures::extensions::ext_serialized();
    assert_eq!(a, b);
    let a = gables_bench::figures::background::table1();
    let b = gables_bench::figures::background::table1();
    assert_eq!(a, b);
}
