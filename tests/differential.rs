//! Differential property tests over randomized valid specs.
//!
//! One deterministic generator (SplitMix64-seeded, so every failure is
//! reproducible from its case number) produces a thousand random but
//! *valid* spec files, and each is pushed through independent
//! implementations of the same math, which must agree:
//!
//! * **Dual forms** — the time form of `evaluate` (Eq. 9–11) and the
//!   performance form `attainable_perf_form` (Eq. 12–14) are algebraic
//!   duals; they must match to relative 1e-9.
//! * **Serial vs parallel** — sweeps under `Parallelism::Serial` and
//!   `Parallelism::Threads(3)` must render byte-identical tables.
//! * **CLI vs HTTP** — `gables eval` output and the `/v1/eval?format=text`
//!   route body must be byte-equal for the same spec.

use std::fmt::Write as _;
use std::sync::Arc;

use gables_cli::serve::build_router;
use gables_cli::spec::Spec;
use gables_cli::{eval_command, sweep_command_with};
use gables_model::rng::SplitMix64;
use gables_model::{evaluate, Parallelism};
use gables_serve::{Request, Router, ServerMetrics, ShardedCache};

const CASES: usize = 1000;

/// Generates one random valid spec: 1–4 IPs (first one the CPU), peak
/// rates spanning several orders of magnitude, fractions on the unit
/// simplex, log-uniform intensities. Values are printed with `{}`
/// (shortest round-trip formatting), so the parsed spec reproduces the
/// generated f64s bit-exactly.
fn random_spec(rng: &mut SplitMix64) -> String {
    let ip_count = rng.range_usize(1, 4);
    let ppeak = rng.range_f64(0.1, 500.0);
    let bpeak = rng.range_f64(0.1, 200.0);
    let mut spec = String::new();
    let _ = writeln!(spec, "[soc]\nppeak_gops = {ppeak}\nbpeak_gbps = {bpeak}\n");
    for i in 0..ip_count {
        let bandwidth = rng.range_f64(0.05, 100.0);
        if i == 0 {
            let _ = writeln!(spec, "[ip.CPU]\nbandwidth_gbps = {bandwidth}\n");
        } else {
            let accel = rng.range_f64(1.0, 20.0);
            let _ = writeln!(
                spec,
                "[ip.ACC{i}]\nacceleration = {accel}\nbandwidth_gbps = {bandwidth}\n"
            );
        }
    }
    // Fractions: random positive weights, normalized, with the last one
    // written as 1 - (sum of the printed others) so the *parsed* values
    // sum to 1 within the model's 1e-9 tolerance.
    let weights: Vec<f64> = (0..ip_count).map(|_| rng.range_f64(0.05, 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut fractions: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let head_sum: f64 = fractions[..ip_count - 1].iter().sum();
    fractions[ip_count - 1] = 1.0 - head_sum;
    let intensities: Vec<f64> = (0..ip_count)
        .map(|_| 10f64.powf(rng.range_f64(-2.0, 2.0)))
        .collect();
    let join = |xs: &[f64]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(
        spec,
        "[workload]\nfractions   = {}\nintensities = {}",
        join(&fractions),
        join(&intensities)
    );
    spec
}

fn router() -> Router {
    build_router(
        Arc::new(ServerMetrics::new()),
        Arc::new(ShardedCache::new(4, 32)),
    )
}

fn post_eval_text(router: &Router, body: &str) -> (u16, String) {
    let resp = router.dispatch(&Request {
        method: "POST".into(),
        path: "/v1/eval".into(),
        query: Some("format=text".into()),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    });
    (resp.status, String::from_utf8(resp.body).expect("UTF-8"))
}

#[test]
fn generator_is_deterministic_and_produces_valid_specs() {
    let a = random_spec(&mut SplitMix64::new(1));
    let b = random_spec(&mut SplitMix64::new(1));
    assert_eq!(a, b, "same seed, same spec");
    let spec = Spec::parse(&a).expect("generated spec parses");
    let soc = spec.soc().expect("generated SoC builds");
    let workload = spec.workload().expect("generated workload builds");
    evaluate(&soc, &workload).expect("generated spec evaluates");
}

#[test]
fn time_form_and_performance_form_are_duals_on_random_specs() {
    let mut rng = SplitMix64::new(0xD1FF);
    for case in 0..CASES {
        let text = random_spec(&mut rng);
        let spec = Spec::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let soc = spec
            .soc()
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let workload = spec
            .workload()
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let time_form = evaluate(&soc, &workload)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"))
            .attainable()
            .value();
        let perf_form = gables_model::model::attainable_perf_form(&soc, &workload)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"))
            .value();
        let rel = (time_form - perf_form).abs() / time_form.abs().max(perf_form.abs());
        assert!(
            rel < 1e-9,
            "case {case}: dual forms disagree: time {time_form} vs perf {perf_form} (rel {rel})\n{text}"
        );
    }
}

#[test]
fn serial_and_threaded_sweeps_are_bit_identical_on_random_specs() {
    let mut rng = SplitMix64::new(0xBEE5);
    // Sweeps evaluate a whole grid per case; a tenth of the case budget
    // still exercises hundreds of grid points per policy.
    for case in 0..CASES / 10 {
        let text = random_spec(&mut rng);
        let serial = sweep_command_with(&text, "intensity", 0.25, 64.0, 17, Parallelism::Serial)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let threaded =
            sweep_command_with(&text, "intensity", 0.25, 64.0, 17, Parallelism::Threads(3))
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(
            serial, threaded,
            "case {case}: parallel sweep diverged from serial\n{text}"
        );
    }
}

#[test]
fn cli_and_http_route_answer_byte_identically_on_random_specs() {
    let router = router();
    let mut rng = SplitMix64::new(0xCAFE);
    for case in 0..CASES {
        let text = random_spec(&mut rng);
        let cli = eval_command(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let (status, body) = post_eval_text(&router, &text);
        assert_eq!(status, 200, "case {case}: {body}\n{text}");
        assert_eq!(
            cli, body,
            "case {case}: /v1/eval diverged from the CLI\n{text}"
        );
    }
}
