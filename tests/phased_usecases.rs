//! Integration: camera dataflows → Gables inputs → phased execution →
//! design-space exploration, exercising the whole pipeline a SoC
//! architect would walk.

use gables_model::explore::{cheapest_meeting, explore, CandidateGrid, CostModel};
use gables_model::ext::phased::{Phase, PhasedUsecase};
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, SocSpec, Workload};
use gables_usecase::camera_flows::{hdr_plus, video_capture};
use gables_usecase::gables::derive_inputs;
use gables_usecase::video::FrameFormat;
use gables_usecase::Ip;

/// A camera-oriented SoC whose IP order matches an HDR+ derived workload.
fn camera_soc(ips: &[Ip]) -> SocSpec {
    let mut b = SocSpec::builder();
    b.ppeak(OpsPerSec::from_gops(500.0))
        .bpeak(BytesPerSec::from_gbps(30.0));
    for (i, ip) in ips.iter().enumerate() {
        if i == 0 {
            b.cpu(ip.short_name(), BytesPerSec::from_gbps(15.0));
        } else {
            let (a, bw) = match ip {
                Ip::Ipu => (48.0, 18.0),
                Ip::Gpu => (4.0, 24.0),
                Ip::Isp => (6.0, 20.0),
                _ => (2.0, 8.0),
            };
            b.accelerator(ip.short_name(), a, BytesPerSec::from_gbps(bw))
                .expect("valid");
        }
    }
    b.build().expect("valid")
}

#[test]
fn hdr_plus_dataflow_runs_through_the_model() {
    let flow = hdr_plus();
    let inputs = derive_inputs(&flow).expect("derives");
    let soc = camera_soc(&inputs.ips);
    let eval = evaluate(&soc, &inputs.workload).expect("evaluates");
    assert!(eval.attainable().value() > 0.0);
    // The usecase's standing demand should be feasible in real time on
    // this SoC (attainable exceeds demand).
    assert!(
        eval.attainable().value() > inputs.total_ops_per_sec,
        "HDR+ not real-time: attainable {:.2} Gops/s vs demand {:.2}",
        eval.attainable().to_gops(),
        inputs.total_ops_per_sec / 1e9
    );
}

#[test]
fn hdr_shot_as_phased_usecase() {
    // An HDR+ shot: a capture-dominated phase then a merge-dominated
    // phase, both derived from dataflows with the same IP universe.
    let capture_inputs = derive_inputs(&hdr_plus()).expect("derives");
    let soc = camera_soc(&capture_inputs.ips);
    let n = capture_inputs.ips.len();

    // Merge phase: all math on the IPU (high intensity), control on AP.
    let ipu = capture_inputs
        .ips
        .iter()
        .position(|&ip| ip == Ip::Ipu)
        .expect("IPU present");
    let mut b = Workload::builder();
    for i in 0..n {
        if i == 0 {
            b.work(0.1, 4.0).expect("valid");
        } else if i == ipu {
            b.work(0.9, 32.0).expect("valid");
        } else {
            b.idle();
        }
    }
    let merge = b.build().expect("valid");

    let phased = PhasedUsecase::new(vec![
        Phase {
            name: "capture burst".into(),
            weight: 0.35,
            workload: capture_inputs.workload.clone(),
        },
        Phase {
            name: "align+merge".into(),
            weight: 0.65,
            workload: merge,
        },
    ])
    .expect("weights sum to 1");
    let eval = phased.evaluate(&soc).expect("evaluates");

    // Sanity: phased result sits between its phase extremes and the
    // dominant phase is identified.
    let rates: Vec<f64> = eval
        .phases()
        .iter()
        .map(|p| p.evaluation.attainable().value())
        .collect();
    let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = rates.iter().cloned().fold(0.0, f64::max);
    assert!(eval.attainable().value() >= lo && eval.attainable().value() <= hi);
    assert!(eval.dominant_phase().is_some());
    let shares: f64 = eval.phases().iter().map(|p| p.time_share).sum();
    assert!((shares - 1.0).abs() < 1e-9);
}

#[test]
fn explorer_sizes_an_npu_for_video_capture() {
    // Derive the 4K30 capture workload, then ask the explorer for the
    // cheapest two-IP design sustaining it with 2x headroom.
    let flow = video_capture(FrameFormat::uhd_4k_yuv420(), 30.0);
    let inputs = derive_inputs(&flow).expect("derives");
    // Collapse to two IPs: AP keeps its share, everything else goes to
    // one "camera engine" at the demand-weighted intensity.
    let ap_f = inputs
        .workload
        .assignment(0)
        .expect("AP")
        .fraction()
        .value();
    let ap_i = inputs
        .workload
        .assignment(0)
        .expect("AP")
        .intensity()
        .value();
    let rest_f = 1.0 - ap_f;
    let demands = flow.ip_demands();
    let rest_ops: f64 = demands
        .iter()
        .filter(|(ip, _)| **ip != Ip::Ap)
        .map(|(_, d)| d.ops_per_sec)
        .sum();
    let rest_bytes: f64 = demands
        .iter()
        .filter(|(ip, _)| **ip != Ip::Ap)
        .map(|(_, d)| d.dram_bytes_per_sec)
        .sum();
    let rest_i = rest_ops / rest_bytes;
    let usecase = Workload::two_ip(rest_f, ap_i, rest_i).expect("valid");

    let grid = CandidateGrid {
        ppeak_gops: 20.0,
        b0_gbps: 12.0,
        accelerations: vec![1.0, 2.0, 4.0, 8.0, 16.0],
        b1_gbps: vec![4.0, 8.0, 16.0, 32.0],
        bpeak_gbps: vec![8.0, 16.0, 32.0],
    };
    let points = explore(&grid, &CostModel::unit(), &usecase).expect("explores");
    let needed_gops = 2.0 * rest_ops / 1e9 / rest_f; // 2x headroom on total work rate
    let pick = cheapest_meeting(&points, needed_gops)
        .expect("some candidate sustains 4K30 capture with headroom");
    assert!(pick.perf_gops >= needed_gops);
    // And the pick is not the most expensive candidate.
    let max_cost = points.iter().map(|p| p.cost).fold(0.0, f64::max);
    assert!(pick.cost < max_cost);
}
