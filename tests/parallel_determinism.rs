//! Integration: the parallel execution paths are *bit-identical* to
//! their serial counterparts — not merely statistically equivalent.
//!
//! Every parallel entry point in the suite (`explore_with`, the
//! analysis sweeps, the ERT grid, the soc-sim batch runner) is built on
//! `gables_model::par::try_map`, which chunks the index range and
//! reassembles results in index order. These tests pin the contract the
//! rest of the repo (figure regeneration, the serving cache, golden
//! files) relies on: for every worker count, the output is the same
//! `Vec`, byte for byte — compared both structurally (`assert_eq!`) and
//! through the `Debug` rendering to catch any float formatting drift.

use gables_model::analysis::{bpeak_sweep_with, offload_sweep_with};
use gables_model::explore::{explore_with, CandidateGrid, CostModel};
use gables_model::two_ip::TwoIpModel;
use gables_model::{Parallelism, Workload};
use gables_soc_sim::{presets, run_gables_batch, run_gables_workload, Simulator};

/// The worker policies every suite below must agree across.
const POLICIES: [Parallelism; 3] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn fig7_scale_grid() -> (CandidateGrid, CostModel) {
    (
        CandidateGrid {
            ppeak_gops: 40.0,
            b0_gbps: 6.0,
            accelerations: (1..=8).map(f64::from).collect(),
            b1_gbps: (1..=8).map(|b| f64::from(b) * 4.0).collect(),
            bpeak_gbps: (1..=8).map(|b| f64::from(b) * 6.0).collect(),
        },
        CostModel::unit(),
    )
}

#[test]
fn explore_grid_is_bit_identical_across_worker_counts() {
    let (grid, cost) = fig7_scale_grid();
    let usecase = Workload::two_ip(0.75, 8.0, 0.25).expect("valid workload");
    let serial = explore_with(&grid, &cost, &usecase, Parallelism::Serial).expect("serial");
    assert_eq!(serial.len(), 512);
    let serial_debug = format!("{serial:?}");
    for par in POLICIES {
        let got = explore_with(&grid, &cost, &usecase, par).expect("parallel");
        assert_eq!(got, serial, "{par:?}");
        assert_eq!(format!("{got:?}"), serial_debug, "{par:?}");
    }
}

#[test]
fn analysis_sweeps_are_bit_identical_across_worker_counts() {
    let soc = TwoIpModel::figure_6b().soc().expect("figure 6b SoC");
    let offload_serial =
        offload_sweep_with(&soc, 8.0, 0.25, 64, Parallelism::Serial).expect("serial");
    let workload = Workload::two_ip(0.75, 8.0, 0.25).expect("valid workload");
    let bpeak_serial =
        bpeak_sweep_with(&soc, &workload, 1.0, 64.0, 64, Parallelism::Serial).expect("serial");
    for par in POLICIES {
        let offload = offload_sweep_with(&soc, 8.0, 0.25, 64, par).expect("parallel");
        assert_eq!(offload, offload_serial, "{par:?}");
        assert_eq!(
            format!("{offload:?}"),
            format!("{offload_serial:?}"),
            "{par:?}"
        );
        let bpeak = bpeak_sweep_with(&soc, &workload, 1.0, 64.0, 64, par).expect("parallel");
        assert_eq!(bpeak, bpeak_serial, "{par:?}");
    }
}

#[test]
fn ert_sweep_is_bit_identical_across_worker_counts() {
    let sim = Simulator::new(presets::snapdragon_835_like()).expect("valid preset");
    let config = gables_ert::SweepConfig {
        array_bytes: vec![64 << 10, 1 << 20, 16 << 20],
        flops_per_word: vec![1, 4, 16, 64, 256],
        trials: 1,
        pattern: gables_soc_sim::TrafficPattern::ReadModifyWrite,
    };
    let serial =
        gables_ert::sweep_with(&sim, presets::CPU, &config, Parallelism::Serial).expect("serial");
    assert_eq!(serial.len(), 15);
    for par in POLICIES {
        let got = gables_ert::sweep_with(&sim, presets::CPU, &config, par).expect("parallel");
        assert_eq!(got, serial, "{par:?}");
        assert_eq!(format!("{got:?}"), format!("{serial:?}"), "{par:?}");
    }
}

#[test]
fn soc_sim_batch_is_bit_identical_across_worker_counts() {
    let spec = TwoIpModel::figure_6b().soc().expect("figure 6b SoC");
    let workloads: Vec<Workload> = (0..12)
        .map(|k| Workload::two_ip(k as f64 / 11.0, 8.0, 0.25).expect("valid workload"))
        .collect();
    let serial = run_gables_batch(&spec, &workloads, Parallelism::Serial).expect("serial");
    // The batch runner agrees with N independent serial runs.
    for (w, run) in workloads.iter().zip(&serial) {
        let lone =
            run_gables_workload(&spec, w, &mut gables_soc_sim::NullRecorder).expect("single run");
        assert_eq!(&lone, run);
    }
    for par in POLICIES {
        let got = run_gables_batch(&spec, &workloads, par).expect("parallel");
        assert_eq!(got, serial, "{par:?}");
        assert_eq!(format!("{got:?}"), format!("{serial:?}"), "{par:?}");
    }
}

#[test]
fn gables_threads_env_override_preserves_the_bits() {
    // `Auto` reads GABLES_THREADS at resolve time. The env var is
    // process-global, so this is the only test in this binary that
    // touches it; every other test pins an explicit policy.
    let (grid, cost) = fig7_scale_grid();
    let usecase = Workload::two_ip(0.75, 8.0, 0.25).expect("valid workload");
    let serial = explore_with(&grid, &cost, &usecase, Parallelism::Serial).expect("serial");
    for threads in ["1", "2", "8"] {
        std::env::set_var("GABLES_THREADS", threads);
        assert_eq!(
            Parallelism::Auto.resolve(),
            threads.parse::<usize>().unwrap()
        );
        let got = explore_with(&grid, &cost, &usecase, Parallelism::Auto).expect("auto");
        assert_eq!(got, serial, "GABLES_THREADS={threads}");
    }
    std::env::remove_var("GABLES_THREADS");
}

#[test]
fn parallel_errors_match_the_first_serial_error() {
    // An invalid grid point must surface the same error whether the grid
    // is walked serially or split across workers: acceleration 0 is
    // rejected, and the serial loop order puts it first.
    let (mut grid, cost) = fig7_scale_grid();
    grid.accelerations[3] = 0.0;
    grid.accelerations[6] = -1.0;
    let usecase = Workload::two_ip(0.75, 8.0, 0.25).expect("valid workload");
    let serial = explore_with(&grid, &cost, &usecase, Parallelism::Serial).unwrap_err();
    for par in POLICIES {
        let got = explore_with(&grid, &cost, &usecase, par).unwrap_err();
        assert_eq!(got.to_string(), serial.to_string(), "{par:?}");
    }
}
