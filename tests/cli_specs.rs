//! Integration: every shipped spec file under `specs/` parses, evaluates,
//! and produces the values its comments promise, through the CLI command
//! layer (the same path `gables eval` takes).

use std::path::Path;

fn read_spec(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("specs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn all_shipped_specs_evaluate() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("specs dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "gables") {
            let text = std::fs::read_to_string(&path).expect("readable");
            let out = gables_cli::eval_command(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(out.contains("Pattainable"), "{}", path.display());
            count += 1;
        }
    }
    assert!(count >= 6, "expected the shipped spec set, found {count}");
}

#[test]
fn figure_specs_match_the_appendix() {
    for (file, expected) in [
        ("figure_6a.gables", "Pattainable = 40.0000 Gops/s"),
        ("figure_6b.gables", "Pattainable = 1.3278 Gops/s"),
        ("figure_6d.gables", "Pattainable = 160.0000 Gops/s"),
    ] {
        let out = gables_cli::eval_command(&read_spec(file)).expect("evaluates");
        assert!(out.contains(expected), "{file}:\n{out}");
    }
}

#[test]
fn sram_spec_reports_the_extension() {
    let out = gables_cli::eval_command(&read_spec("sram_extension.gables")).expect("evaluates");
    assert!(out.contains("with memory-side SRAM"));
    // Rescued from 1.33 to the 2 Gops/s IP bound.
    assert!(out.contains("2.0000 Gops/s"), "{out}");
}

#[test]
fn explore_spec_yields_a_frontier() {
    let out = gables_cli::frontier_command(&read_spec("explore_npu.gables")).expect("explores");
    assert!(out.contains("60 candidates"));
    assert!(out.contains("Pareto frontier"));
}

#[test]
fn snapdragon_spec_is_cpu_bound_at_f_quarter() {
    let out = gables_cli::eval_command(&read_spec("snapdragon_835.gables")).expect("evaluates");
    // At I = 64 and f = 0.75, the CPU's 7.5/0.25 = 30 Gops/s binds.
    assert!(out.contains("Pattainable = 30.0000 Gops/s"), "{out}");
    assert!(out.contains("bottleneck: IP[0]"), "{out}");
}

#[test]
fn whatif_on_shipped_spec_replays_the_walkthrough() {
    let out = gables_cli::whatif_command(
        &read_spec("figure_6b.gables"),
        "set_bpeak 30; set_intensity 1 8; set_bpeak 20",
    )
    .expect("applies");
    assert!(out.contains("160.0000 Gops/s"), "{out}");
}
