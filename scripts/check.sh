#!/usr/bin/env sh
# Full local gate: formatting, lints, release build, every test in the
# workspace, and the regression-gated benchmark trajectory. Run from the
# repository root; exits non-zero on the first failure. Works offline —
# the workspace has no external deps.
#
# `--quick` skips the release-mode builds/tests and both bench stages
# (smoke + trajectory/perf gate) for a fast edit-compile-test loop; the
# full run is the gate that counts.
set -eu

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "usage: scripts/check.sh [--quick]" >&2
      exit 2
      ;;
  esac
done

echo "==> no stray stdout printing in library crates"
# Library code must log through gables_model::obs (stderr, leveled),
# never print to stdout. eprintln! is allowed; println!/print! are not.
# The char class before 'print' keeps 'eprintln!' from matching.
if grep -rnE '(^|[^a-zA-Z0-9_e])print(ln)?!\(' \
    crates/core/src crates/serve/src crates/soc-sim/src crates/ert/src; then
  echo "stray stdout printing found in library crates (use gables_model::obs)" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$QUICK" -eq 0 ]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test (tier-1: root suite)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> allocation-budget gate (zero-alloc evaluate / sweep points, debug)"
cargo test -q -p gables-model --test alloc_budget

echo "==> serve loopback smoke test (real server on an ephemeral port)"
cargo test -q -p gables-cli --test serve_loopback

echo "==> observability loopback suite (request IDs, flight recorder, prom, spans)"
cargo test -q -p gables-cli --test obs_loopback

echo "==> profiler suite (folded stacks, alloc counters, /v1/debug/profile)"
cargo test -q -p gables-cli --test profile

echo "==> fault-injection smoke (deterministic adversarial clients)"
cargo test -q -p gables-cli --test fault_injection

echo "==> carm loopback (envelope -> flight record -> prom reconciliation)"
cargo test -q -p gables-cli --test carm_loopback

echo "==> event-loop suite (pipelining, 10k idle soak, slow writers, batch/replica matrix)"
cargo test -q -p gables-cli --test event_loop

echo "==> SLO loopback suite (fleet sketch merge, burn rates, shard pinning)"
# Under --quick the storm half (a --replicas 2 fleet plus a request and
# fault storm) is skipped via GABLES_QUICK=1; the shard-pinning checks
# still run.
GABLES_QUICK="$QUICK" cargo test -q -p gables-cli --test slo_loopback

echo "==> replica router smoke (gables serve --replicas 2 boots, announces, shuts down)"
# Immediate stdin EOF trips the supervised-mode watchdog, so the router
# must announce its address and then exit cleanly on its own.
announce="$(printf '' | timeout 60 cargo run -q -p gables-cli --bin gables -- \
    serve 127.0.0.1:0 --replicas 2 --announce | head -n1)"
case "$announce" in
  "LISTENING "*) ;;
  *)
    echo "replica smoke failed: expected a LISTENING announcement, got '$announce'" >&2
    exit 1
    ;;
esac

if [ "$QUICK" -eq 0 ]; then
  echo "==> release-mode suites (debug_assert! compiled out)"
  cargo test --release -q -p gables-cli --test obs_loopback
  cargo test --release -q -p gables-cli

  echo "==> allocation-budget gate (release: the optimized hot paths)"
  cargo test --release -q -p gables-model --test alloc_budget
fi

echo "==> differential property suite (dual forms, serial vs parallel, CLI vs HTTP)"
GABLES_LOG=debug cargo test -q --test differential

echo "==> parallel determinism suite (forced GABLES_THREADS=2, debug logging on)"
GABLES_THREADS=2 GABLES_LOG=debug cargo test -q --test parallel_determinism

if [ "$QUICK" -eq 0 ]; then
  echo "==> parallel bench smoke (small grid, artifact to target/figures)"
  # Capture the log and check the exit status explicitly: `cargo bench
  # -q` is silent on success, and this guards against any wrapper ever
  # swallowing a nonzero exit from the bench binary itself.
  bench_log="target/bench-smoke.log"
  if ! GABLES_BENCH_SCALE=4 cargo bench -q -p gables-bench --bench parallel \
      >"$bench_log" 2>&1; then
    cat "$bench_log" >&2
    echo "parallel bench smoke failed (log above)" >&2
    exit 1
  fi

  echo "==> benchmark trajectory + perf gate (vs committed BENCH_*.json)"
  sh scripts/perf_gate.sh
fi

if [ "$QUICK" -eq 1 ]; then
  echo "all quick checks passed (run without --quick for the full gate)"
else
  echo "all checks passed"
fi
