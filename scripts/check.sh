#!/usr/bin/env sh
# Full local gate: formatting, lints, release build, and every test in
# the workspace. Run from the repository root; exits non-zero on the
# first failure. Works offline — the workspace has no external deps.
set -eu

cd "$(dirname "$0")/.."

echo "==> no stray stdout printing in library crates"
# Library code must log through gables_model::obs (stderr, leveled),
# never print to stdout. eprintln! is allowed; println!/print! are not.
# The char class before 'print' keeps 'eprintln!' from matching.
if grep -rnE '(^|[^a-zA-Z0-9_e])print(ln)?!\(' \
    crates/core/src crates/serve/src crates/soc-sim/src crates/ert/src; then
  echo "stray stdout printing found in library crates (use gables_model::obs)" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root suite)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> serve loopback smoke test (real server on an ephemeral port)"
cargo test -q -p gables-cli --test serve_loopback

echo "==> observability loopback suite (request IDs, flight recorder, prom, spans)"
cargo test -q -p gables-cli --test obs_loopback
cargo test --release -q -p gables-cli --test obs_loopback

echo "==> fault-injection smoke (deterministic adversarial clients)"
cargo test -q -p gables-cli --test fault_injection

echo "==> corpus + validation in release mode (debug_assert! compiled out)"
cargo test --release -q -p gables-cli

echo "==> differential property suite (dual forms, serial vs parallel, CLI vs HTTP)"
GABLES_LOG=debug cargo test -q --test differential

echo "==> parallel determinism suite (forced GABLES_THREADS=2, debug logging on)"
GABLES_THREADS=2 GABLES_LOG=debug cargo test -q --test parallel_determinism

echo "==> parallel bench smoke (small grid, artifact to target/figures)"
GABLES_BENCH_SCALE=4 cargo bench -q -p gables-bench --bench parallel

echo "all checks passed"
