#!/usr/bin/env sh
# Runs the benchmark trajectory (release-profile, fixed scale) and
# judges it against the committed BENCH_*.json baselines at the repo
# root. Pass --update to re-baseline instead of judging; any other
# arguments are forwarded to perf_gate (e.g. --candidate DIR).
#
# The gate fails on a >15% median regression that also exceeds 25 us
# absolute, so it catches real regressions without tripping on noise
# in sub-microsecond metrics.
set -eu

cd "$(dirname "$0")/.."

GABLES_BENCH_SCALE="${GABLES_BENCH_SCALE:-8}"
export GABLES_BENCH_SCALE

# Absolute path: cargo runs benches with the package dir as cwd, while
# perf_gate runs from the repo root — both must agree on the directory.
GABLES_BENCH_TRAJECTORY_DIR="${GABLES_BENCH_TRAJECTORY_DIR:-$PWD/target/trajectory}"
export GABLES_BENCH_TRAJECTORY_DIR

echo "==> benchmark trajectory (GABLES_BENCH_SCALE=$GABLES_BENCH_SCALE)"
if ! cargo bench -q -p gables-bench --bench trajectory; then
  echo "benchmark trajectory failed" >&2
  exit 1
fi

echo "==> perf gate vs committed BENCH_*.json"
cargo run --release -q -p gables-bench --bin perf_gate -- "$@"
