//! Hardware-side model inputs: the SoC specification.
//!
//! A [`SocSpec`] captures the hardware inputs of Table II: the CPU-complex
//! peak performance `Ppeak`, the peak off-chip bandwidth `Bpeak`, and for
//! every IP block `IP[i]` its acceleration `Ai` (with `A0 = 1` required)
//! and its bandwidth `Bi` to/from the on-chip interconnect.

use core::fmt;
use std::sync::Arc;

use crate::error::GablesError;
use crate::units::{Acceleration, BytesPerSec, OpsPerSec};

/// One IP block of the SoC (Figure 5): a CPU complex, GPU, DSP, ISP, or any
/// other accelerator.
///
/// The name is interned behind an `Arc<str>`, so cloning an `IpSpec` (or a
/// whole [`SocSpec`], as the design-space explorer does per candidate) is
/// a reference-count bump rather than a string allocation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IpSpec {
    name: Arc<str>,
    acceleration: Acceleration,
    bandwidth: BytesPerSec,
}

impl IpSpec {
    /// Creates an IP block specification.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `bandwidth` is not
    /// finite and positive.
    pub fn new(
        name: impl Into<String>,
        acceleration: Acceleration,
        bandwidth: BytesPerSec,
    ) -> Result<Self, GablesError> {
        let bw = bandwidth.value();
        if !bw.is_normal() || bw <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "IP bandwidth",
                bw,
                "must be finite, normal, and > 0",
            ));
        }
        let name: String = name.into();
        Ok(Self {
            name: Arc::from(name),
            acceleration,
            bandwidth,
        })
    }

    /// The human-readable IP name (e.g. `"CPU"`, `"GPU"`, `"Hexagon DSP"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The acceleration `Ai` of this IP relative to the CPU complex.
    pub fn acceleration(&self) -> Acceleration {
        self.acceleration
    }

    /// The bandwidth `Bi` in and out of this IP.
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }
}

impl fmt::Display for IpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (A = {}, B = ", self.name, self.acceleration)?;
        crate::decfmt::write_fixed(f, self.bandwidth.to_gbps(), 3)?;
        f.write_str(" GB/s)")
    }
}

/// The hardware half of the Gables model: an N-IP SoC (Figure 5).
///
/// Construct with [`SocSpec::builder`]. IP\[0\] is always the CPU complex
/// with acceleration 1; its peak performance is `Ppeak` and each other
/// IP\[i\] peaks at `Ai · Ppeak`.
///
/// # Examples
///
/// The two-IP SoC of the paper's Figure 6:
///
/// ```
/// use gables_model::{SocSpec, units::{BytesPerSec, OpsPerSec}};
///
/// let soc = SocSpec::builder()
///     .ppeak(OpsPerSec::from_gops(40.0))
///     .bpeak(BytesPerSec::from_gbps(10.0))
///     .cpu("CPU", BytesPerSec::from_gbps(6.0))
///     .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))?
///     .build()?;
/// assert_eq!(soc.ip_count(), 2);
/// assert_eq!(soc.ip_peak_perf(1)?.to_gops(), 200.0);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SocSpec {
    ppeak: OpsPerSec,
    bpeak: BytesPerSec,
    ips: Vec<IpSpec>,
}

impl SocSpec {
    /// Starts building a SoC specification.
    pub fn builder() -> SocSpecBuilder {
        SocSpecBuilder::new()
    }

    /// Peak computation performance `Ppeak` of the CPU complex (IP\[0\]).
    pub fn ppeak(&self) -> OpsPerSec {
        self.ppeak
    }

    /// Peak off-chip memory bandwidth `Bpeak`.
    pub fn bpeak(&self) -> BytesPerSec {
        self.bpeak
    }

    /// The number of IP blocks `N`.
    pub fn ip_count(&self) -> usize {
        self.ips.len()
    }

    /// All IP blocks in index order (IP\[0\] is the CPU complex).
    pub fn ips(&self) -> &[IpSpec] {
        &self.ips
    }

    /// The IP block at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::IpIndexOutOfBounds`] if `index >= ip_count()`.
    pub fn ip(&self, index: usize) -> Result<&IpSpec, GablesError> {
        self.ips.get(index).ok_or(GablesError::IpIndexOutOfBounds {
            index,
            len: self.ips.len(),
        })
    }

    /// The peak performance `Ai · Ppeak` of IP\[i\].
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::IpIndexOutOfBounds`] if `index >= ip_count()`.
    pub fn ip_peak_perf(&self, index: usize) -> Result<OpsPerSec, GablesError> {
        Ok(self.ip(index)?.acceleration() * self.ppeak)
    }

    /// Returns a copy of this SoC with a different off-chip bandwidth, the
    /// most common what-if edit in the paper (Figures 6b→6c→6d all change
    /// `Bpeak`).
    pub fn with_bpeak(&self, bpeak: BytesPerSec) -> Result<SocSpec, GablesError> {
        let bw = bpeak.value();
        if !bw.is_normal() || bw <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "Bpeak",
                bw,
                "must be finite, normal, and > 0",
            ));
        }
        Ok(SocSpec {
            bpeak,
            ..self.clone()
        })
    }

    /// Hot-loop plumbing for the design-space explorer: replaces `Bpeak`
    /// in place without re-validating. The explorer validates every axis
    /// value up front, so per-candidate re-validation would be pure waste.
    pub(crate) fn set_bpeak_unchecked(&mut self, bpeak: BytesPerSec) {
        self.bpeak = bpeak;
    }

    /// Hot-loop plumbing for the design-space explorer: rewrites IP
    /// `index`'s acceleration and bandwidth in place (axis values are
    /// validated up front by the caller).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds (internal callers mutate IPs
    /// the template is known to have).
    pub(crate) fn set_ip_unchecked(
        &mut self,
        index: usize,
        acceleration: Acceleration,
        bandwidth: BytesPerSec,
    ) {
        let ip = &mut self.ips[index];
        ip.acceleration = acceleration;
        ip.bandwidth = bandwidth;
    }
}

impl fmt::Display for SocSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SoC: Ppeak = ")?;
        crate::decfmt::write_fixed(f, self.ppeak.to_gops(), 3)?;
        f.write_str(" Gops/s, Bpeak = ")?;
        crate::decfmt::write_fixed(f, self.bpeak.to_gbps(), 3)?;
        writeln!(f, " GB/s, {} IPs", self.ips.len())?;
        for (i, ip) in self.ips.iter().enumerate() {
            writeln!(f, "  IP[{i}]: {ip}")?;
        }
        Ok(())
    }
}

/// Builder for [`SocSpec`] (C-BUILDER, non-consuming).
#[derive(Debug, Clone, Default)]
pub struct SocSpecBuilder {
    ppeak: Option<OpsPerSec>,
    bpeak: Option<BytesPerSec>,
    ips: Vec<IpSpec>,
}

impl SocSpecBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the CPU-complex peak performance `Ppeak`.
    pub fn ppeak(&mut self, ppeak: OpsPerSec) -> &mut Self {
        self.ppeak = Some(ppeak);
        self
    }

    /// Sets the peak off-chip memory bandwidth `Bpeak`.
    pub fn bpeak(&mut self, bpeak: BytesPerSec) -> &mut Self {
        self.bpeak = Some(bpeak);
        self
    }

    /// Adds the CPU complex as IP\[0\] with acceleration fixed at 1.
    ///
    /// Must be called before any [`accelerator`](Self::accelerator) so that
    /// the CPU lands at index 0, as the model requires.
    pub fn cpu(&mut self, name: impl Into<String>, bandwidth: BytesPerSec) -> &mut Self {
        // Defer bandwidth validation to build() so the builder chain stays
        // infallible until an accelerator (which must validate A) is added.
        let name: String = name.into();
        self.ips.insert(
            0,
            IpSpec {
                name: Arc::from(name),
                acceleration: Acceleration::UNITY,
                bandwidth,
            },
        );
        self
    }

    /// Adds an accelerator IP with acceleration `Ai` and bandwidth `Bi`.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `acceleration` is not
    /// finite and positive.
    pub fn accelerator(
        &mut self,
        name: impl Into<String>,
        acceleration: f64,
        bandwidth: BytesPerSec,
    ) -> Result<&mut Self, GablesError> {
        let a = Acceleration::new(acceleration)?;
        let name: String = name.into();
        self.ips.push(IpSpec {
            name: Arc::from(name),
            acceleration: a,
            bandwidth,
        });
        Ok(self)
    }

    /// Builds the [`SocSpec`], validating every parameter.
    ///
    /// # Errors
    ///
    /// * [`GablesError::InvalidParameter`] if `Ppeak` or `Bpeak` is
    ///   missing, non-finite, or non-positive.
    /// * [`GablesError::InvalidIpParameter`] if any IP bandwidth is
    ///   non-finite or non-positive, naming the offending IP index.
    /// * [`GablesError::NoIps`] if no IP was added.
    /// * [`GablesError::NonUnityCpuAcceleration`] if IP\[0\] does not have
    ///   acceleration 1 (i.e. [`cpu`](Self::cpu) was never called).
    pub fn build(&self) -> Result<SocSpec, GablesError> {
        let ppeak = self
            .ppeak
            .ok_or_else(|| GablesError::invalid_parameter("Ppeak", f64::NAN, "must be set"))?;
        if !ppeak.value().is_normal() || ppeak.value() <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "Ppeak",
                ppeak.value(),
                "must be finite, normal, and > 0",
            ));
        }
        let bpeak = self
            .bpeak
            .ok_or_else(|| GablesError::invalid_parameter("Bpeak", f64::NAN, "must be set"))?;
        if !bpeak.value().is_normal() || bpeak.value() <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "Bpeak",
                bpeak.value(),
                "must be finite, normal, and > 0",
            ));
        }
        if self.ips.is_empty() {
            return Err(GablesError::NoIps);
        }
        if self.ips[0].acceleration != Acceleration::UNITY {
            return Err(GablesError::NonUnityCpuAcceleration {
                acceleration: self.ips[0].acceleration.value(),
            });
        }
        for (i, ip) in self.ips.iter().enumerate() {
            let bw = ip.bandwidth.value();
            if !bw.is_normal() || bw <= 0.0 {
                return Err(GablesError::invalid_parameter(
                    "IP bandwidth",
                    bw,
                    "must be finite, normal, and > 0",
                )
                .for_ip(i));
            }
        }
        Ok(SocSpec {
            ppeak,
            bpeak,
            ips: self.ips.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure6_soc() -> SocSpec {
        SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(40.0))
            .bpeak(BytesPerSec::from_gbps(10.0))
            .cpu("CPU", BytesPerSec::from_gbps(6.0))
            .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_figure6_soc() {
        let soc = figure6_soc();
        assert_eq!(soc.ip_count(), 2);
        assert_eq!(soc.ppeak().to_gops(), 40.0);
        assert_eq!(soc.bpeak().to_gbps(), 10.0);
        assert_eq!(soc.ip(0).unwrap().name(), "CPU");
        assert_eq!(soc.ip(1).unwrap().name(), "GPU");
        assert_eq!(soc.ip_peak_perf(0).unwrap().to_gops(), 40.0);
        assert_eq!(soc.ip_peak_perf(1).unwrap().to_gops(), 200.0);
    }

    #[test]
    fn cpu_always_lands_at_index_zero() {
        let soc = SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(10.0))
            .bpeak(BytesPerSec::from_gbps(10.0))
            .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))
            .unwrap()
            .cpu("CPU", BytesPerSec::from_gbps(6.0))
            .build()
            .unwrap();
        assert_eq!(soc.ip(0).unwrap().name(), "CPU");
        assert_eq!(soc.ip(1).unwrap().name(), "GPU");
    }

    #[test]
    fn build_requires_cpu_first() {
        let mut b = SocSpec::builder();
        b.ppeak(OpsPerSec::from_gops(10.0))
            .bpeak(BytesPerSec::from_gbps(10.0));
        b.accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))
            .unwrap();
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            GablesError::NonUnityCpuAcceleration { acceleration: 5.0 }
        );
    }

    #[test]
    fn build_rejects_missing_and_invalid_params() {
        assert!(SocSpec::builder().build().is_err());

        let mut b = SocSpec::builder();
        b.ppeak(OpsPerSec::from_gops(10.0))
            .bpeak(BytesPerSec::from_gbps(10.0));
        assert_eq!(b.build().unwrap_err(), GablesError::NoIps);

        let mut b = SocSpec::builder();
        b.ppeak(OpsPerSec::from_gops(-1.0))
            .bpeak(BytesPerSec::from_gbps(10.0))
            .cpu("CPU", BytesPerSec::from_gbps(6.0));
        assert!(matches!(
            b.build().unwrap_err(),
            GablesError::InvalidParameter { name: "Ppeak", .. }
        ));

        let mut b = SocSpec::builder();
        b.ppeak(OpsPerSec::from_gops(1.0))
            .bpeak(BytesPerSec::from_gbps(0.0))
            .cpu("CPU", BytesPerSec::from_gbps(6.0));
        assert!(matches!(
            b.build().unwrap_err(),
            GablesError::InvalidParameter { name: "Bpeak", .. }
        ));

        let mut b = SocSpec::builder();
        b.ppeak(OpsPerSec::from_gops(1.0))
            .bpeak(BytesPerSec::from_gbps(10.0))
            .cpu("CPU", BytesPerSec::from_gbps(0.0));
        assert!(matches!(
            b.build().unwrap_err(),
            GablesError::InvalidIpParameter {
                ip: 0,
                field: "IP bandwidth",
                ..
            }
        ));
    }

    #[test]
    fn accelerator_rejects_bad_acceleration() {
        let mut b = SocSpec::builder();
        assert!(b
            .accelerator("GPU", 0.0, BytesPerSec::from_gbps(15.0))
            .is_err());
        assert!(b
            .accelerator("GPU", -2.0, BytesPerSec::from_gbps(15.0))
            .is_err());
    }

    #[test]
    fn ip_index_out_of_bounds() {
        let soc = figure6_soc();
        assert_eq!(
            soc.ip(2).unwrap_err(),
            GablesError::IpIndexOutOfBounds { index: 2, len: 2 }
        );
    }

    #[test]
    fn with_bpeak_edits_only_bandwidth() {
        let soc = figure6_soc();
        let edited = soc.with_bpeak(BytesPerSec::from_gbps(30.0)).unwrap();
        assert_eq!(edited.bpeak().to_gbps(), 30.0);
        assert_eq!(edited.ppeak(), soc.ppeak());
        assert_eq!(edited.ips(), soc.ips());
        assert!(soc.with_bpeak(BytesPerSec::from_gbps(-1.0)).is_err());
    }

    #[test]
    fn display_lists_all_ips() {
        let text = figure6_soc().to_string();
        assert!(text.contains("Ppeak = 40.000 Gops/s"));
        assert!(text.contains("IP[0]: CPU"));
        assert!(text.contains("IP[1]: GPU"));
    }

    #[test]
    fn ip_spec_new_validates() {
        assert!(IpSpec::new("X", Acceleration::UNITY, BytesPerSec::from_gbps(1.0)).is_ok());
        assert!(IpSpec::new("X", Acceleration::UNITY, BytesPerSec::from_gbps(0.0)).is_err());
    }

    #[test]
    fn build_rejects_non_finite_and_subnormal_params_in_release_too() {
        // These rejections are real branches (not debug_assert!), so they
        // hold in release builds — the profile `gables serve` runs under.
        // NaN cannot be routed through `new` here because its debug_assert
        // would fire first in debug builds; the release-only NaN path is
        // covered end-to-end by the cli corpus suite.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, 1.0e-320, -0.0, 0.0] {
            let mut b = SocSpec::builder();
            b.ppeak(OpsPerSec::new(bad))
                .bpeak(BytesPerSec::new(10.0e9))
                .cpu("CPU", BytesPerSec::new(6.0e9));
            assert!(b.build().is_err(), "ppeak {bad} accepted");

            let mut b = SocSpec::builder();
            b.ppeak(OpsPerSec::new(1.0e9))
                .bpeak(BytesPerSec::new(bad))
                .cpu("CPU", BytesPerSec::new(6.0e9));
            assert!(b.build().is_err(), "bpeak {bad} accepted");

            let mut b = SocSpec::builder();
            b.ppeak(OpsPerSec::new(1.0e9))
                .bpeak(BytesPerSec::new(10.0e9))
                .cpu("CPU", BytesPerSec::new(bad));
            let err = b.build().unwrap_err();
            assert!(
                matches!(err, GablesError::InvalidIpParameter { ip: 0, .. }),
                "IP bandwidth {bad}: {err}"
            );
            assert_eq!(err.code(), "invalid_parameter");
        }
    }
}
