//! A minimal JSON value type with a recursive-descent parser and a
//! serializer, built on `std` only — no external JSON crate is among the
//! approved offline dependencies.
//!
//! Shared by the telemetry exporters' golden tests (which must re-parse
//! the Chrome trace JSON they emit) and by `gables-serve`'s HTTP request
//! and response bodies. The grammar is standard JSON; two deliberate
//! simplifications keep it small:
//!
//! * numbers are `f64` (fine for this workspace: rates, seconds,
//!   fractions, and counters well below 2^53), and
//! * objects preserve insertion order in a `Vec` of pairs, with
//!   [`Json::get`] returning the first match — duplicate keys are
//!   accepted on parse, as most JSON parsers do.
//!
//! ```
//! use gables_model::json::Json;
//!
//! let v = Json::parse(r#"{"spec": "[soc]", "steps": 8}"#)?;
//! assert_eq!(v.get("spec").and_then(Json::as_str), Some("[soc]"));
//! assert_eq!(v.get("steps").and_then(Json::as_f64), Some(8.0));
//! // Serialization round-trips.
//! assert_eq!(Json::parse(&v.to_string())?, v);
//! # Ok::<(), gables_model::json::JsonError>(())
//! ```

use core::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object: key/value pairs in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing bytes are an error).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset for malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        Parser::parse(text)
    }

    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// A number value; non-finite floats (which JSON cannot represent)
    /// become `null`.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Number(x)
        } else {
            Json::Null
        }
    }
}

/// Serializes compactly (no insignificant whitespace). Non-finite
/// numbers — unreachable via [`Json::num`] but constructible directly —
/// render as `null`.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) if n.is_finite() => write!(f, "{n}"),
            Json::Number(_) => f.write_str("null"),
            Json::String(s) => write!(f, "\"{}\"", escape(s)),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(p.pos, "trailing bytes"));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                self.pos,
                format!(
                    "expected {:?}, found {:?}",
                    b as char,
                    self.peek().map(|c| c as char)
                ),
            ))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(JsonError::new(
                self.pos,
                format!("unexpected {:?}", other.map(|c| c as char)),
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(self.pos, "bad literal"))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                other => {
                    return Err(JsonError::new(
                        self.pos,
                        format!("expected ',' or '}}', found {:?}", other.map(|c| c as char)),
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(JsonError::new(
                        self.pos,
                        format!("expected ',' or ']', found {:?}", other.map(|c| c as char)),
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new(self.pos, "truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::new(self.pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|e| JsonError::new(self.pos, e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| JsonError::new(self.pos, e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    JsonError::new(self.pos, "bad \\u code point")
                                })?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(
                                self.pos,
                                format!("bad escape {:?}", other as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| JsonError::new(self.pos, e.to_string()))?;
                    let ch = rest.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii by scan");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| JsonError::new(start, format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::String("a\nb".into())
        );
    }

    #[test]
    fn parses_structures_and_preserves_object_order() {
        let v = Json::parse(r#"{"z": [1, 2, {"k": null}], "a": "x"}"#).unwrap();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "z");
        assert_eq!(pairs[1].0, "a");
        let arr = v.get("z").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("k"), Some(&Json::Null));
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"x", "{\"a\" 1}", "tru", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("offset 4"));
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
        assert_eq!(Json::parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn serializes_compactly_and_round_trips() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("a\"b")),
            ("n".into(), Json::num(2.5)),
            (
                "flags".into(),
                Json::Array(vec![Json::Bool(true), Json::Null]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"{"name":"a\"b","n":2.5,"flags":[true,null]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn duplicate_keys_return_first_match() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
    }
}
