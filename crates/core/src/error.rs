//! Error types for the Gables model.

use core::fmt;

/// The error type returned by all fallible operations in this crate.
///
/// # Examples
///
/// ```
/// use gables_model::units::WorkFraction;
///
/// let err = WorkFraction::new(2.0).unwrap_err();
/// assert!(err.to_string().contains("work fraction"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GablesError {
    /// A scalar parameter was outside its valid domain.
    InvalidParameter {
        /// Human-readable parameter name (e.g. `"work fraction"`).
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// A per-IP parameter was outside its valid domain. Like
    /// [`GablesError::InvalidParameter`] but names the offending IP, so
    /// multi-IP builders can say *which* port or accelerator is wrong.
    InvalidIpParameter {
        /// The index of the offending IP.
        ip: usize,
        /// The field that was rejected (e.g. `"IP bandwidth"`).
        field: &'static str,
        /// The offending value.
        value: f64,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// A value inside a candidate-grid axis (or another indexed parameter
    /// list) was outside its valid domain. Like
    /// [`GablesError::InvalidParameter`] but names the axis and the
    /// offending index, so a bad grid fails up front with a precise
    /// message instead of mid-exploration with a per-point one.
    InvalidAxisParameter {
        /// The axis / list name (e.g. `"accelerations"`).
        axis: &'static str,
        /// The index of the offending value within the axis.
        index: usize,
        /// The offending value.
        value: f64,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// The per-IP work fractions of a workload did not sum to 1.
    WorkFractionSum {
        /// The actual sum of the provided fractions.
        sum: f64,
    },
    /// A workload was built for a different number of IPs than the SoC has.
    IpCountMismatch {
        /// Number of IPs in the SoC specification.
        soc_ips: usize,
        /// Number of work assignments in the workload.
        workload_ips: usize,
    },
    /// An IP index was out of bounds for the SoC.
    IpIndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// Number of IPs in the SoC specification.
        len: usize,
    },
    /// A SoC specification was built with no IP blocks at all.
    NoIps,
    /// The first IP (`IP[0]`, the CPU complex) must have acceleration 1.
    ///
    /// The paper fixes `A0 = 1` so that `Ppeak` is defined relative to the
    /// CPU complex.
    NonUnityCpuAcceleration {
        /// The acceleration that was supplied for IP\[0\].
        acceleration: f64,
    },
    /// A bus-usage matrix had the wrong shape for the SoC/topology pair.
    BusMatrixShape {
        /// Expected `(ips, buses)` shape.
        expected: (usize, usize),
        /// Provided `(ips, buses)` shape.
        actual: (usize, usize),
    },
    /// An IP with nonzero work has no bus path to memory in the
    /// interconnect extension, so its data could never be transferred.
    NoBusPath {
        /// The index of the disconnected IP.
        ip: usize,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// What was being solved for.
        what: &'static str,
    },
    /// A cache-hierarchy description for the cache-aware roofline was
    /// malformed (empty ladder, non-increasing ceilings, ...).
    InvalidCacheConfig {
        /// What was wrong with the hierarchy.
        what: String,
    },
}

/// The coarse category of a [`GablesError`], independent of its payload.
///
/// Useful for matching on failure class without destructuring the
/// `#[non_exhaustive]` error enum, and for mapping model errors onto
/// transport-level error codes (the HTTP tier does exactly this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A scalar or per-IP parameter was outside its valid domain.
    InvalidParameter,
    /// Work fractions did not sum to 1.
    WorkFractionSum,
    /// Workload and SoC disagree on the number of IPs.
    IpCountMismatch,
    /// An IP index was out of bounds.
    IpIndexOutOfBounds,
    /// The SoC had no IP blocks.
    NoIps,
    /// IP\[0\] (the CPU complex) had a non-unity acceleration.
    NonUnityCpuAcceleration,
    /// A bus-usage matrix had the wrong shape.
    BusMatrixShape,
    /// An active IP had no bus path to memory.
    NoBusPath,
    /// An iterative solver failed to converge.
    NoConvergence,
    /// A cache-hierarchy description was malformed (zero sets,
    /// non-power-of-two line size, level ordering violations, ...).
    InvalidCacheConfig,
}

impl ErrorKind {
    /// A stable, machine-readable snake_case code for this category.
    ///
    /// The set of codes is closed: every [`GablesError`] maps onto exactly
    /// one of these strings, and transport tiers (the `/v1` HTTP error
    /// envelope, exit-code mapping in the CLI) treat them as a contract.
    /// Codes are never reused for a different meaning.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::InvalidParameter => "invalid_parameter",
            ErrorKind::WorkFractionSum => "work_fraction_sum",
            ErrorKind::IpCountMismatch => "ip_count_mismatch",
            ErrorKind::IpIndexOutOfBounds => "ip_index_out_of_bounds",
            ErrorKind::NoIps => "no_ips",
            ErrorKind::NonUnityCpuAcceleration => "non_unity_cpu_acceleration",
            ErrorKind::BusMatrixShape => "bus_matrix_shape",
            ErrorKind::NoBusPath => "no_bus_path",
            ErrorKind::NoConvergence => "no_convergence",
            ErrorKind::InvalidCacheConfig => "invalid_cache_config",
        }
    }

    /// All categories in declaration order, for exhaustive-coverage tests
    /// and documentation generators.
    pub const ALL: [ErrorKind; 10] = [
        ErrorKind::InvalidParameter,
        ErrorKind::WorkFractionSum,
        ErrorKind::IpCountMismatch,
        ErrorKind::IpIndexOutOfBounds,
        ErrorKind::NoIps,
        ErrorKind::NonUnityCpuAcceleration,
        ErrorKind::BusMatrixShape,
        ErrorKind::NoBusPath,
        ErrorKind::NoConvergence,
        ErrorKind::InvalidCacheConfig,
    ];
}

impl GablesError {
    /// Convenience constructor for [`GablesError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, value: f64, reason: &'static str) -> Self {
        GablesError::InvalidParameter {
            name,
            value,
            reason,
        }
    }

    /// Convenience constructor for [`GablesError::InvalidIpParameter`].
    pub fn invalid_ip_parameter(
        ip: usize,
        field: &'static str,
        value: f64,
        reason: &'static str,
    ) -> Self {
        GablesError::InvalidIpParameter {
            ip,
            field,
            value,
            reason,
        }
    }

    /// Attaches an IP index to an [`GablesError::InvalidParameter`],
    /// turning it into [`GablesError::InvalidIpParameter`]. Other
    /// variants pass through unchanged — they either already carry their
    /// IP index or have none to name.
    pub fn for_ip(self, ip: usize) -> Self {
        match self {
            GablesError::InvalidParameter {
                name,
                value,
                reason,
            } => GablesError::InvalidIpParameter {
                ip,
                field: name,
                value,
                reason,
            },
            other => other,
        }
    }

    /// The closed machine-readable code for this error's category.
    ///
    /// Shorthand for `self.kind().code()`.
    pub fn code(&self) -> &'static str {
        self.kind().code()
    }

    /// The coarse category of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            GablesError::InvalidParameter { .. }
            | GablesError::InvalidIpParameter { .. }
            | GablesError::InvalidAxisParameter { .. } => ErrorKind::InvalidParameter,
            GablesError::WorkFractionSum { .. } => ErrorKind::WorkFractionSum,
            GablesError::IpCountMismatch { .. } => ErrorKind::IpCountMismatch,
            GablesError::IpIndexOutOfBounds { .. } => ErrorKind::IpIndexOutOfBounds,
            GablesError::NoIps => ErrorKind::NoIps,
            GablesError::NonUnityCpuAcceleration { .. } => ErrorKind::NonUnityCpuAcceleration,
            GablesError::BusMatrixShape { .. } => ErrorKind::BusMatrixShape,
            GablesError::NoBusPath { .. } => ErrorKind::NoBusPath,
            GablesError::NoConvergence { .. } => ErrorKind::NoConvergence,
            GablesError::InvalidCacheConfig { .. } => ErrorKind::InvalidCacheConfig,
        }
    }
}

impl fmt::Display for GablesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GablesError::InvalidParameter {
                name,
                value,
                reason,
            } => {
                write!(f, "invalid {name} {value}: {reason}")
            }
            GablesError::InvalidIpParameter {
                ip,
                field,
                value,
                reason,
            } => {
                write!(f, "IP[{ip}] has invalid {field} {value}: {reason}")
            }
            GablesError::InvalidAxisParameter {
                axis,
                index,
                value,
                reason,
            } => {
                write!(f, "invalid {axis}[{index}] value {value}: {reason}")
            }
            GablesError::WorkFractionSum { sum } => {
                write!(f, "work fractions must sum to 1, got {sum}")
            }
            GablesError::IpCountMismatch {
                soc_ips,
                workload_ips,
            } => write!(
                f,
                "workload has {workload_ips} work assignments but the SoC has {soc_ips} IPs"
            ),
            GablesError::IpIndexOutOfBounds { index, len } => {
                write!(f, "IP[{index}] is out of bounds for a SoC with {len} IPs")
            }
            GablesError::NoIps => write!(f, "a SoC must have at least one IP block"),
            GablesError::NonUnityCpuAcceleration { acceleration } => write!(
                f,
                "IP[0] (the CPU complex) must have acceleration 1, got {acceleration}"
            ),
            GablesError::BusMatrixShape { expected, actual } => write!(
                f,
                "bus usage matrix has shape {}x{}, expected {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            GablesError::NoBusPath { ip } => {
                write!(f, "IP[{ip}] has nonzero work but no bus path to memory")
            }
            GablesError::NoConvergence { what } => {
                write!(f, "solver failed to converge while computing {what}")
            }
            GablesError::InvalidCacheConfig { what } => {
                write!(f, "invalid cache configuration: {what}")
            }
        }
    }
}

impl std::error::Error for GablesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<GablesError> = vec![
            GablesError::invalid_parameter("work fraction", 2.0, "must be within [0, 1]"),
            GablesError::invalid_ip_parameter(2, "IP bandwidth", -1.0, "must be positive"),
            GablesError::InvalidAxisParameter {
                axis: "accelerations",
                index: 1,
                value: f64::NAN,
                reason: "must be finite and > 0",
            },
            GablesError::WorkFractionSum { sum: 0.5 },
            GablesError::IpCountMismatch {
                soc_ips: 2,
                workload_ips: 3,
            },
            GablesError::IpIndexOutOfBounds { index: 5, len: 2 },
            GablesError::NoIps,
            GablesError::NonUnityCpuAcceleration { acceleration: 2.0 },
            GablesError::BusMatrixShape {
                expected: (2, 3),
                actual: (3, 2),
            },
            GablesError::NoBusPath { ip: 1 },
            GablesError::NoConvergence { what: "balance" },
            GablesError::InvalidCacheConfig {
                what: "hierarchy has no levels".into(),
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            // Error messages follow C-GOOD-ERR style: lowercase start, no
            // trailing punctuation.
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("IP"));
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<GablesError>();
    }

    #[test]
    fn indexed_errors_name_the_ip_consistently() {
        // Every variant that knows its IP index renders it as `IP[i]`.
        let indexed = vec![
            GablesError::invalid_ip_parameter(3, "IP bandwidth", 0.0, "must be positive"),
            GablesError::IpIndexOutOfBounds { index: 3, len: 2 },
            GablesError::NoBusPath { ip: 3 },
        ];
        for err in indexed {
            assert!(err.to_string().contains("IP[3]"), "{err}");
        }
        assert!(GablesError::NonUnityCpuAcceleration { acceleration: 2.0 }
            .to_string()
            .contains("IP[0]"));
    }

    #[test]
    fn for_ip_wraps_invalid_parameter_and_passes_others_through() {
        let base = GablesError::invalid_parameter("IP bandwidth", -4.0, "must be positive");
        let wrapped = base.clone().for_ip(1);
        assert_eq!(
            wrapped,
            GablesError::InvalidIpParameter {
                ip: 1,
                field: "IP bandwidth",
                value: -4.0,
                reason: "must be positive",
            }
        );
        assert!(wrapped.to_string().contains("IP[1]"));
        let passthrough = GablesError::NoIps.for_ip(5);
        assert_eq!(passthrough, GablesError::NoIps);
    }

    #[test]
    fn kind_maps_every_variant() {
        let pairs: Vec<(GablesError, ErrorKind)> = vec![
            (
                GablesError::invalid_parameter("x", 0.0, "r"),
                ErrorKind::InvalidParameter,
            ),
            (
                GablesError::invalid_ip_parameter(0, "x", 0.0, "r"),
                ErrorKind::InvalidParameter,
            ),
            (
                GablesError::InvalidAxisParameter {
                    axis: "b1_gbps",
                    index: 0,
                    value: -1.0,
                    reason: "r",
                },
                ErrorKind::InvalidParameter,
            ),
            (
                GablesError::WorkFractionSum { sum: 0.5 },
                ErrorKind::WorkFractionSum,
            ),
            (
                GablesError::IpCountMismatch {
                    soc_ips: 1,
                    workload_ips: 2,
                },
                ErrorKind::IpCountMismatch,
            ),
            (
                GablesError::IpIndexOutOfBounds { index: 1, len: 1 },
                ErrorKind::IpIndexOutOfBounds,
            ),
            (GablesError::NoIps, ErrorKind::NoIps),
            (
                GablesError::NonUnityCpuAcceleration { acceleration: 2.0 },
                ErrorKind::NonUnityCpuAcceleration,
            ),
            (
                GablesError::BusMatrixShape {
                    expected: (1, 1),
                    actual: (2, 2),
                },
                ErrorKind::BusMatrixShape,
            ),
            (GablesError::NoBusPath { ip: 0 }, ErrorKind::NoBusPath),
            (
                GablesError::NoConvergence { what: "balance" },
                ErrorKind::NoConvergence,
            ),
            (
                GablesError::InvalidCacheConfig {
                    what: "empty".into(),
                },
                ErrorKind::InvalidCacheConfig,
            ),
        ];
        for (err, kind) in pairs {
            assert_eq!(err.kind(), kind, "{err}");
        }
    }

    #[test]
    fn codes_are_closed_snake_case_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in ErrorKind::ALL {
            let code = kind.code();
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{code}"
            );
            assert!(seen.insert(code), "duplicate code {code}");
        }
        assert_eq!(seen.len(), ErrorKind::ALL.len());
        // GablesError::code delegates to the kind's code.
        assert_eq!(
            GablesError::invalid_parameter("x", 0.0, "r").code(),
            "invalid_parameter"
        );
        assert_eq!(GablesError::NoIps.code(), "no_ips");
    }
}
