//! Software-side model inputs: the usecase workload.
//!
//! A [`Workload`] captures the software inputs of Table II: for every IP\[i\]
//! the fraction of usecase work `fi` assigned to it and the operational
//! intensity `Ii` of that work. Fractions are non-negative and sum to 1;
//! work at different IPs proceeds *concurrently* in the base model
//! (Section II-B), unlike Amdahl's Law.

use core::fmt;

use crate::error::GablesError;
use crate::inline::InlineVec;
use crate::units::{OpsPerByte, WorkFraction};

/// Per-IP collections store up to this many IPs without heap allocation.
/// Mobile SoCs in the paper have 2–5 IP blocks; larger SoCs still work,
/// they just spill to the heap.
pub(crate) const INLINE_IPS: usize = 8;

/// Tolerance used when validating that work fractions sum to 1.
pub const FRACTION_SUM_TOLERANCE: f64 = 1e-9;

/// The work assigned to one IP: a fraction `fi` of total usecase ops at
/// operational intensity `Ii`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkAssignment {
    fraction: WorkFraction,
    intensity: OpsPerByte,
}

impl WorkAssignment {
    /// Creates a work assignment.
    ///
    /// Validation is active in **all** build profiles: a NaN or infinite
    /// intensity is rejected even on idle assignments (it would poison
    /// equality comparisons and canonical cache keys), and an active
    /// assignment additionally requires a normal, strictly positive
    /// intensity (a subnormal `Ii` makes `fi / Ii` overflow to ∞).
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if the intensity is not
    /// finite, or if the fraction is nonzero and the intensity is not
    /// normal and strictly positive. (Zero-work assignments may carry any
    /// finite intensity since it is never used.)
    pub fn new(fraction: WorkFraction, intensity: OpsPerByte) -> Result<Self, GablesError> {
        let i = intensity.value();
        if !i.is_finite() {
            return Err(GablesError::invalid_parameter(
                "operational intensity",
                i,
                "must be finite",
            ));
        }
        if !fraction.is_zero() && (!i.is_normal() || i <= 0.0) {
            return Err(GablesError::invalid_parameter(
                "operational intensity",
                i,
                "must be finite, normal, and > 0 when the IP is assigned work",
            ));
        }
        Ok(Self {
            fraction,
            intensity,
        })
    }

    /// Creates a work assignment from raw untrusted values, validating the
    /// fraction and intensity in all build profiles without ever routing
    /// NaN through the debug-asserting [`OpsPerByte::new`].
    ///
    /// # Errors
    ///
    /// See [`WorkFraction::new`] and [`WorkAssignment::new`].
    pub fn try_from_raw(fraction: f64, intensity: f64) -> Result<Self, GablesError> {
        let f = WorkFraction::new(fraction)?;
        Self::new(f, OpsPerByte::try_new(intensity)?)
    }

    /// An assignment of zero work (the IP is idle for this usecase).
    pub fn idle() -> Self {
        Self {
            fraction: WorkFraction::ZERO,
            intensity: OpsPerByte::new(1.0),
        }
    }

    /// The fraction of usecase work `fi`.
    pub fn fraction(&self) -> WorkFraction {
        self.fraction
    }

    /// The operational intensity `Ii` of the work at this IP.
    pub fn intensity(&self) -> OpsPerByte {
        self.intensity
    }

    /// Whether this IP is assigned any work at all.
    pub fn is_active(&self) -> bool {
        !self.fraction.is_zero()
    }
}

impl Default for WorkAssignment {
    /// The idle assignment ([`WorkAssignment::idle`]).
    fn default() -> Self {
        Self::idle()
    }
}

/// The software half of the Gables model: a usecase apportioned over N IPs.
///
/// # Examples
///
/// The workload of the paper's Figure 6b (f = 0.75, `I0` = 8, `I1` = 0.1):
///
/// ```
/// use gables_model::Workload;
///
/// let workload = Workload::builder()
///     .work(0.25, 8.0)?
///     .work(0.75, 0.1)?
///     .build()?;
/// assert_eq!(workload.ip_count(), 2);
/// assert!((workload.iavg().unwrap().value() - 0.13278).abs() < 1e-4);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Workload {
    assignments: InlineVec<WorkAssignment, INLINE_IPS>,
}

impl Workload {
    /// Starts building a workload.
    pub fn builder() -> WorkloadBuilder {
        WorkloadBuilder::new()
    }

    /// Builds a workload directly from assignments.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::WorkFractionSum`] if the fractions do not sum
    /// to 1 (within [`FRACTION_SUM_TOLERANCE`]), or
    /// [`GablesError::NoIps`] if `assignments` is empty.
    pub fn from_assignments(assignments: Vec<WorkAssignment>) -> Result<Self, GablesError> {
        Self::from_inline(InlineVec::from_slice(&assignments))
    }

    /// [`Workload::from_assignments`] over the inline representation —
    /// the allocation-free path the hot loops use.
    pub(crate) fn from_inline(
        assignments: InlineVec<WorkAssignment, INLINE_IPS>,
    ) -> Result<Self, GablesError> {
        if assignments.len() == 0 {
            return Err(GablesError::NoIps);
        }
        let sum: f64 = assignments
            .as_slice()
            .iter()
            .map(|a| a.fraction().value())
            .sum();
        if (sum - 1.0).abs() > FRACTION_SUM_TOLERANCE {
            return Err(GablesError::WorkFractionSum { sum });
        }
        Ok(Self { assignments })
    }

    /// Convenience constructor for the paper's two-IP primer (Section
    /// III-B): `f` work at IP\[1\] with intensity `i1`, `1 - f` work at
    /// IP\[0\] with intensity `i0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `f` is outside `[0, 1]` or an active IP has a
    /// non-positive intensity.
    pub fn two_ip(f: f64, i0: f64, i1: f64) -> Result<Self, GablesError> {
        let f = WorkFraction::new(f)?;
        let mut assignments = InlineVec::new();
        assignments.push(WorkAssignment::new(
            f.complement(),
            OpsPerByte::try_new(i0)?,
        )?);
        assignments.push(WorkAssignment::new(f, OpsPerByte::try_new(i1)?)?);
        Self::from_inline(assignments)
    }

    /// The number of IPs this workload spans.
    pub fn ip_count(&self) -> usize {
        self.assignments.len()
    }

    /// All work assignments in IP index order.
    pub fn assignments(&self) -> &[WorkAssignment] {
        self.assignments.as_slice()
    }

    /// The work assignment for IP\[i\].
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::IpIndexOutOfBounds`] if `index` is out of
    /// range.
    pub fn assignment(&self, index: usize) -> Result<&WorkAssignment, GablesError> {
        self.assignments
            .as_slice()
            .get(index)
            .ok_or(GablesError::IpIndexOutOfBounds {
                index,
                len: self.assignments.len(),
            })
    }

    /// The indices of IPs that are assigned nonzero work.
    pub fn active_ips(&self) -> impl Iterator<Item = usize> + '_ {
        self.assignments
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_active())
            .map(|(i, _)| i)
    }

    /// The average operational intensity `Iavg`: the harmonic mean of the
    /// per-IP intensities weighted by fraction of work (Equation 7 and the
    /// Equation 13 discussion),
    /// `Iavg = 1 / (Σ fi / Ii)`.
    ///
    /// This is the x-coordinate at which the memory roofline is read off.
    /// Returns `None` if no IP has work (cannot happen for a validated
    /// workload, but kept total for robustness).
    pub fn iavg(&self) -> Option<OpsPerByte> {
        let denom: f64 = self
            .assignments
            .as_slice()
            .iter()
            .filter(|a| a.is_active())
            .map(|a| a.fraction().value() / a.intensity().value())
            .sum();
        if denom > 0.0 {
            Some(OpsPerByte::new(1.0 / denom))
        } else {
            None
        }
    }

    /// Total bytes of DRAM traffic per op of usecase work,
    /// `Σ Di = Σ fi / Ii` — the reciprocal of [`iavg`](Self::iavg).
    pub fn total_data_per_op(&self) -> f64 {
        self.assignments
            .as_slice()
            .iter()
            .filter(|a| a.is_active())
            .map(|a| a.fraction().value() / a.intensity().value())
            .sum()
    }

    /// Returns a copy of this workload with IP\[i\]'s intensity replaced,
    /// the what-if edit of Figure 6d (raising `I1` from 0.1 to 8).
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::IpIndexOutOfBounds`] if `index` is out of
    /// range, or [`GablesError::InvalidParameter`] for a non-positive
    /// intensity on an active IP.
    pub fn with_intensity(&self, index: usize, intensity: f64) -> Result<Workload, GablesError> {
        let current = *self.assignment(index)?;
        let mut assignments = self.assignments.clone();
        assignments.as_mut_slice()[index] =
            WorkAssignment::new(current.fraction(), OpsPerByte::try_new(intensity)?)?;
        Ok(Workload { assignments })
    }

    /// Replaces one assignment in place without re-validating the fraction
    /// sum. Hot-loop plumbing for [`crate::model::EvalScratch`], which
    /// only ever writes complement pairs or same-fraction intensity edits,
    /// so the sum invariant is preserved by construction.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds (internal callers index IPs that
    /// are known to exist).
    pub(crate) fn set_assignment(&mut self, index: usize, assignment: WorkAssignment) {
        self.assignments.as_mut_slice()[index] = assignment;
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.assignments.as_slice().iter().enumerate() {
            writeln!(
                f,
                "  IP[{i}]: f = {:.4}, I = {} ops/byte",
                a.fraction().value(),
                a.intensity().value()
            )?;
        }
        Ok(())
    }
}

/// Builder for [`Workload`] (C-BUILDER, non-consuming). Assignments are
/// added in IP index order.
#[derive(Debug, Clone, Default)]
pub struct WorkloadBuilder {
    assignments: InlineVec<WorkAssignment, INLINE_IPS>,
}

impl WorkloadBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns the next IP `fraction` of the work at `intensity` ops/byte.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `fraction` is outside
    /// `[0, 1]` or `intensity` is non-positive while `fraction` is nonzero.
    pub fn work(&mut self, fraction: f64, intensity: f64) -> Result<&mut Self, GablesError> {
        self.assignments
            .push(WorkAssignment::try_from_raw(fraction, intensity)?);
        Ok(self)
    }

    /// Assigns the next IP no work at all.
    pub fn idle(&mut self) -> &mut Self {
        self.assignments.push(WorkAssignment::idle());
        self
    }

    /// Builds the [`Workload`], validating that fractions sum to 1.
    ///
    /// # Errors
    ///
    /// See [`Workload::from_assignments`].
    pub fn build(&self) -> Result<Workload, GablesError> {
        Workload::from_inline(self.assignments.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_sum() {
        let mut b = Workload::builder();
        b.work(0.25, 8.0).unwrap();
        b.work(0.5, 0.1).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, GablesError::WorkFractionSum { sum } if (sum - 0.75).abs() < 1e-12));
    }

    #[test]
    fn empty_workload_is_rejected() {
        assert_eq!(Workload::builder().build().unwrap_err(), GablesError::NoIps);
    }

    #[test]
    fn two_ip_constructor_matches_figure_6b() {
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        assert_eq!(w.ip_count(), 2);
        assert!((w.assignment(0).unwrap().fraction().value() - 0.25).abs() < 1e-15);
        assert!((w.assignment(1).unwrap().fraction().value() - 0.75).abs() < 1e-15);
        // Appendix: Iavg = 1/[(0.25/8) + (0.75/0.1)] = 0.13278...
        let iavg = w.iavg().unwrap().value();
        assert!((iavg - 0.132_780_082).abs() < 1e-6);
    }

    #[test]
    fn iavg_with_single_active_ip_is_its_intensity() {
        // Figure 6a: f = 0 so Iavg = I0 = 8.
        let w = Workload::two_ip(0.0, 8.0, 0.1).unwrap();
        assert!((w.iavg().unwrap().value() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn iavg_is_harmonic_mean_weighted_by_fraction() {
        let w = Workload::two_ip(0.5, 4.0, 4.0).unwrap();
        assert!((w.iavg().unwrap().value() - 4.0).abs() < 1e-12);
        let w = Workload::two_ip(0.5, 2.0, 8.0).unwrap();
        // 1/(0.25 + 0.0625) = 3.2
        assert!((w.iavg().unwrap().value() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn total_data_is_reciprocal_of_iavg() {
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let product = w.total_data_per_op() * w.iavg().unwrap().value();
        assert!((product - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_assignment_allows_any_intensity() {
        let mut b = Workload::builder();
        b.work(1.0, 8.0).unwrap();
        b.idle();
        let w = b.build().unwrap();
        assert!(!w.assignment(1).unwrap().is_active());
        assert_eq!(w.active_ips().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn active_assignment_requires_positive_intensity() {
        let f = WorkFraction::new(0.5).unwrap();
        assert!(WorkAssignment::new(f, OpsPerByte::new(0.0)).is_err());
        assert!(WorkAssignment::new(f, OpsPerByte::new(-3.0)).is_err());
        // But zero fraction tolerates it.
        assert!(WorkAssignment::new(WorkFraction::ZERO, OpsPerByte::new(0.0)).is_ok());
    }

    #[test]
    fn non_finite_intensity_is_rejected_even_when_idle() {
        // NaN on an idle IP would poison PartialEq and cache keys; it is
        // rejected in all build profiles, without tripping the
        // debug_assert! in OpsPerByte::new.
        assert!(WorkAssignment::try_from_raw(0.0, f64::NAN).is_err());
        assert!(WorkAssignment::try_from_raw(0.0, f64::INFINITY).is_err());
        assert!(WorkAssignment::try_from_raw(0.0, -1.0).is_ok());
        assert!(Workload::two_ip(0.0, 8.0, f64::NAN).is_err());
        assert!(Workload::builder().work(0.0, f64::NAN).is_err());
    }

    #[test]
    fn subnormal_intensity_is_rejected_when_active() {
        // fi / Ii with a subnormal Ii overflows to infinity.
        assert!(WorkAssignment::try_from_raw(0.5, 1.0e-310).is_err());
        assert!(WorkAssignment::try_from_raw(0.5, f64::MIN_POSITIVE).is_ok());
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        assert!(w.with_intensity(1, 1.0e-310).is_err());
        assert!(w.with_intensity(1, f64::NAN).is_err());
    }

    #[test]
    fn with_intensity_edits_one_ip() {
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let w2 = w.with_intensity(1, 8.0).unwrap();
        assert_eq!(w2.assignment(1).unwrap().intensity().value(), 8.0);
        assert_eq!(w2.assignment(0).unwrap().intensity().value(), 8.0);
        assert_eq!(
            w2.assignment(1).unwrap().fraction(),
            w.assignment(1).unwrap().fraction()
        );
        assert!(w.with_intensity(5, 1.0).is_err());
    }

    #[test]
    fn fraction_sum_tolerance_accepts_rounding() {
        // Eight increments of 1/8 accumulate rounding error well below the
        // tolerance; this mirrors the Figure 8 sweep.
        let mut b = Workload::builder();
        b.work(1.0 - 7.0 * 0.125, 1.0).unwrap();
        for _ in 0..7 {
            b.work(0.125, 1.0).unwrap();
        }
        assert!(b.build().is_ok());
    }

    #[test]
    fn workloads_beyond_inline_capacity_spill_to_the_heap() {
        // 12 IPs exceed the INLINE_IPS buffer; behavior is unchanged.
        let mut b = Workload::builder();
        b.work(5.0 / 16.0, 1.0).unwrap();
        for _ in 0..11 {
            b.work(1.0 / 16.0, 2.0).unwrap();
        }
        let w = b.build().unwrap();
        assert_eq!(w.ip_count(), 12);
        assert_eq!(w.assignments().len(), 12);
        assert_eq!(w.active_ips().count(), 12);
        let w2 = w.with_intensity(11, 4.0).unwrap();
        assert_eq!(w2.assignment(11).unwrap().intensity().value(), 4.0);
        assert_eq!(w2.assignment(10).unwrap().intensity().value(), 2.0);
        assert!(w.iavg().is_some());
        // from_assignments round-trips the spilled representation.
        let rebuilt = Workload::from_assignments(w.assignments().to_vec()).unwrap();
        assert_eq!(rebuilt, w);
    }

    #[test]
    fn display_shows_assignments() {
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let text = w.to_string();
        assert!(text.contains("IP[0]"));
        assert!(text.contains("IP[1]"));
    }
}
