//! The base N-IP Gables model (Section III-D).
//!
//! [`evaluate`] implements the *time form* of the model, Equations 9–11:
//!
//! ```text
//! Ci        = fi / (Ai · Ppeak)                    compute time at IP[i]
//! Di        = fi / Ii                              data transferred for IP[i]
//! TIP[i]    = max(Di / Bi, Ci)                     time at IP[i]
//! Tmemory   = (Σ Di) / Bpeak                       time at the memory interface
//! Pattainable = 1 / max(TIP[0..N], Tmemory)
//! ```
//!
//! All work is normalized so that the whole usecase is one operation; the
//! resulting times are seconds per op and their reciprocals are ops/sec.
//!
//! The *performance/roofline form* (Equations 12–14) is exposed as
//! [`scaled_ip_roofline`] and [`memory_roofline`]; property tests verify
//! that the two forms are duals of one another.

use core::fmt;

use crate::error::GablesError;
use crate::inline::InlineVec;
use crate::soc::SocSpec;
use crate::units::{Bytes, BytesPerSec, OpsPerByte, OpsPerSec, Seconds, WorkFraction};
use crate::workload::{WorkAssignment, Workload, INLINE_IPS};

/// Which component of the SoC limits attainable performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Bottleneck {
    /// IP\[i\] is the slowest component (either its compute engine or its
    /// bandwidth `Bi` into the interconnect).
    Ip(usize),
    /// The shared off-chip memory interface (`Bpeak`) is the slowest
    /// component.
    Memory,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::Ip(i) => write!(f, "IP[{i}]"),
            Bottleneck::Memory => write!(f, "memory interface"),
        }
    }
}

/// Which of an IP's two limits binds its `TIP[i] = max(Di/Bi, Ci)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IpLimit {
    /// The compute engine (`Ci` dominates): the IP sits on the flat part of
    /// its roofline.
    Compute,
    /// The IP's bandwidth into the interconnect (`Di/Bi` dominates): the IP
    /// sits on the slanted part of its roofline.
    Bandwidth,
    /// The IP has no work assigned for this usecase.
    Idle,
}

impl fmt::Display for IpLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpLimit::Compute => write!(f, "compute-bound"),
            IpLimit::Bandwidth => write!(f, "bandwidth-bound"),
            IpLimit::Idle => write!(f, "idle"),
        }
    }
}

/// Per-IP temporaries of Table II for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IpBreakdown {
    /// Compute time `Ci = fi / (Ai · Ppeak)` (seconds per op of work).
    pub compute_time: Seconds,
    /// Data transferred `Di = fi / Ii` (bytes per op of work).
    pub data: Bytes,
    /// Transfer time through the IP's port, `Di / Bi`.
    pub transfer_time: Seconds,
    /// `TIP[i] = max(Di/Bi, Ci)`.
    pub time: Seconds,
    /// Which of the two limits binds (Equation 9's `max`).
    pub limit: IpLimit,
    /// The dual performance bound `1/TIP[i]` (Equation 12), `None` for an
    /// idle IP — the paper omits the term when `fi = 0` to avoid dividing
    /// by zero.
    pub perf_bound: Option<OpsPerSec>,
}

impl Default for IpBreakdown {
    /// The idle breakdown — exactly what [`evaluate`] records for an IP
    /// with no assigned work.
    fn default() -> Self {
        IpBreakdown {
            compute_time: Seconds::new(0.0),
            data: Bytes::new(0.0),
            transfer_time: Seconds::new(0.0),
            time: Seconds::new(0.0),
            limit: IpLimit::Idle,
            perf_bound: None,
        }
    }
}

/// The result of evaluating a workload on a SoC: `Pattainable` plus every
/// intermediate term needed to understand *why*.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Evaluation {
    attainable: OpsPerSec,
    bottleneck: Bottleneck,
    ips: InlineVec<IpBreakdown, INLINE_IPS>,
    memory_time: Seconds,
    memory_bound: OpsPerSec,
    iavg: Option<OpsPerByte>,
}

impl Evaluation {
    /// The usecase's maximal attainable performance `Pattainable`
    /// (Equation 11).
    pub fn attainable(&self) -> OpsPerSec {
        self.attainable
    }

    /// The component whose time is largest (ties broken toward the
    /// lowest-indexed IP, then memory). Use
    /// [`binding_components`](Self::binding_components) to see ties.
    pub fn bottleneck(&self) -> Bottleneck {
        self.bottleneck
    }

    /// Per-IP breakdowns in IP index order.
    pub fn ips(&self) -> &[IpBreakdown] {
        self.ips.as_slice()
    }

    /// The per-IP breakdown for IP\[i\].
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::IpIndexOutOfBounds`] if `index` is out of
    /// range.
    pub fn ip(&self, index: usize) -> Result<&IpBreakdown, GablesError> {
        self.ips
            .as_slice()
            .get(index)
            .ok_or(GablesError::IpIndexOutOfBounds {
                index,
                len: self.ips.len(),
            })
    }

    /// `Tmemory = Σ Di / Bpeak` (Equation 10).
    pub fn memory_time(&self) -> Seconds {
        self.memory_time
    }

    /// The memory roofline bound `1/Tmemory = Bpeak · Iavg` (Equation 13).
    pub fn memory_bound(&self) -> OpsPerSec {
        self.memory_bound
    }

    /// The workload's average operational intensity (weighted harmonic
    /// mean); `None` when no IP is active.
    pub fn iavg(&self) -> Option<OpsPerByte> {
        self.iavg
    }

    /// All components whose time is within `rel_tol` (relative) of the
    /// maximum — the set of simultaneous bottlenecks. A perfectly balanced
    /// design such as the paper's Figure 6d reports every component here.
    pub fn binding_components(&self, rel_tol: f64) -> Vec<Bottleneck> {
        let max = self.max_time();
        let mut out = Vec::new();
        for (i, ip) in self.ips.as_slice().iter().enumerate() {
            if ip.time.value() >= max * (1.0 - rel_tol) && ip.limit != IpLimit::Idle {
                out.push(Bottleneck::Ip(i));
            }
        }
        if self.memory_time.value() >= max * (1.0 - rel_tol) {
            out.push(Bottleneck::Memory);
        }
        out
    }

    /// Whether every active IP *and* the memory interface are simultaneous
    /// bottlenecks (within `rel_tol`): the "perfectly balanced design" the
    /// paper reaches in Figure 6d.
    pub fn is_balanced(&self, rel_tol: f64) -> bool {
        let binding = self.binding_components(rel_tol);
        let active = self
            .ips
            .as_slice()
            .iter()
            .filter(|ip| ip.limit != IpLimit::Idle)
            .count();
        binding.len() == active + 1
    }

    fn max_time(&self) -> f64 {
        let ip_max = self
            .ips
            .as_slice()
            .iter()
            .map(|ip| ip.time.value())
            .fold(0.0_f64, f64::max);
        ip_max.max(self.memory_time.value())
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Pattainable = ")?;
        crate::decfmt::write_fixed(f, self.attainable.to_gops(), 4)?;
        writeln!(f, " Gops/s (bottleneck: {})", self.bottleneck)?;
        for (i, ip) in self.ips.as_slice().iter().enumerate() {
            match ip.perf_bound {
                Some(bound) => {
                    write!(f, "  IP[{i}]: 1/TIP = ")?;
                    crate::decfmt::write_fixed(f, bound.to_gops(), 4)?;
                    writeln!(f, " Gops/s ({})", ip.limit)?;
                }
                None => writeln!(f, "  IP[{i}]: idle")?,
            }
        }
        f.write_str("  memory: 1/Tmem = ")?;
        crate::decfmt::write_fixed(f, self.memory_bound.to_gops(), 4)?;
        f.write_str(" Gops/s\n")
    }
}

/// Evaluates the base N-IP Gables model (Equations 9–11).
///
/// # Errors
///
/// Returns [`GablesError::IpCountMismatch`] if the workload spans a
/// different number of IPs than the SoC has.
///
/// # Examples
///
/// The paper's Figure 6b: offloading 75% of the work to a GPU with poor
/// data reuse collapses performance to 1.3 Gops/s:
///
/// ```
/// use gables_model::{evaluate, SocSpec, Workload};
/// use gables_model::units::{BytesPerSec, OpsPerSec};
///
/// let soc = SocSpec::builder()
///     .ppeak(OpsPerSec::from_gops(40.0))
///     .bpeak(BytesPerSec::from_gbps(10.0))
///     .cpu("CPU", BytesPerSec::from_gbps(6.0))
///     .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))?
///     .build()?;
/// let workload = Workload::two_ip(0.75, 8.0, 0.1)?;
/// let eval = evaluate(&soc, &workload)?;
/// assert!((eval.attainable().to_gops() - 1.3278).abs() < 1e-3);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn evaluate(soc: &SocSpec, workload: &Workload) -> Result<Evaluation, GablesError> {
    evaluate_at(soc, workload, soc.bpeak())
}

/// [`evaluate`] with `Bpeak` overridden, without cloning the `SocSpec`.
///
/// Bit-identical to `evaluate(&soc.with_bpeak(bpeak)?, workload)` — same
/// validation, same float expressions in the same order — but with zero
/// allocations, which is what makes `bpeak_sweep_with` allocation-free
/// per point.
pub(crate) fn evaluate_with_bpeak(
    soc: &SocSpec,
    workload: &Workload,
    bpeak: BytesPerSec,
) -> Result<Evaluation, GablesError> {
    let bw = bpeak.value();
    if !bw.is_normal() || bw <= 0.0 {
        return Err(GablesError::invalid_parameter(
            "Bpeak",
            bw,
            "must be finite, normal, and > 0",
        ));
    }
    evaluate_at(soc, workload, bpeak)
}

/// The shared evaluation kernel: Equations 9–11 against an explicit
/// `Bpeak`. Builds the per-IP breakdowns in inline storage, so the steady
/// state performs no heap allocations for SoCs of up to
/// [`INLINE_IPS`] IP blocks.
fn evaluate_at(
    soc: &SocSpec,
    workload: &Workload,
    bpeak: BytesPerSec,
) -> Result<Evaluation, GablesError> {
    if soc.ip_count() != workload.ip_count() {
        return Err(GablesError::IpCountMismatch {
            soc_ips: soc.ip_count(),
            workload_ips: workload.ip_count(),
        });
    }

    let mut ips = InlineVec::new();
    let mut total_data = 0.0;
    for (spec, assignment) in soc.ips().iter().zip(workload.assignments()) {
        let f = assignment.fraction().value();
        if f == 0.0 {
            ips.push(IpBreakdown::default());
            continue;
        }
        let peak = (spec.acceleration() * soc.ppeak()).value();
        let compute_time = f / peak;
        let data = f / assignment.intensity().value();
        let transfer_time = data / spec.bandwidth().value();
        let (time, limit) = if compute_time >= transfer_time {
            (compute_time, IpLimit::Compute)
        } else {
            (transfer_time, IpLimit::Bandwidth)
        };
        total_data += data;
        ips.push(IpBreakdown {
            compute_time: Seconds::new(compute_time),
            data: Bytes::new(data),
            transfer_time: Seconds::new(transfer_time),
            time: Seconds::new(time),
            limit,
            perf_bound: Some(OpsPerSec::new(1.0 / time)),
        });
    }

    let memory_time = total_data / bpeak.value();
    let iavg = workload.iavg();
    let memory_bound = match iavg {
        Some(i) => bpeak * i,
        None => OpsPerSec::new(f64::INFINITY),
    };

    let (bottleneck, max_time) = slowest_component(ips.as_slice(), memory_time);
    Ok(Evaluation {
        attainable: OpsPerSec::new(1.0 / max_time),
        bottleneck,
        ips,
        memory_time: Seconds::new(memory_time),
        memory_bound,
        iavg,
    })
}

/// Reusable per-point scratch for sweep hot loops.
///
/// Sweeps evaluate the same workload shape hundreds of times with one
/// knob changed per point. `EvalScratch` owns a mutable copy of the
/// workload and edits it in place between evaluations, so each point
/// costs zero heap allocations (for SoCs within [`INLINE_IPS`]).
///
/// Ownership rules (see DESIGN.md "Scratch and arena ownership"):
/// `EvalScratch` is `pub(crate)` and never stored inside a public type.
/// Each parallel worker constructs its own scratch inside the `par`
/// closure — construction is a stack copy, so per-point construction is
/// free and no `&mut` state is shared across threads.
#[derive(Debug, Clone)]
pub(crate) struct EvalScratch {
    workload: Workload,
}

impl EvalScratch {
    /// A scratch seeded from a template workload (a stack copy — no heap
    /// allocation within the inline capacity).
    pub(crate) fn new(template: &Workload) -> Self {
        Self {
            workload: template.clone(),
        }
    }

    /// Rewrites the first two assignments as the paper's two-IP split:
    /// `1 - f` at IP\[0\] with intensity `i0`, `f` at IP\[1\] with `i1`.
    /// The complement pair keeps the fraction-sum invariant intact.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if an active side has a
    /// non-positive intensity.
    pub(crate) fn set_two_ip(
        &mut self,
        f: WorkFraction,
        i0: OpsPerByte,
        i1: OpsPerByte,
    ) -> Result<(), GablesError> {
        self.workload
            .set_assignment(0, WorkAssignment::new(f.complement(), i0)?);
        self.workload.set_assignment(1, WorkAssignment::new(f, i1)?);
        Ok(())
    }

    /// The current scratch workload, ready to evaluate.
    pub(crate) fn workload(&self) -> &Workload {
        &self.workload
    }
}

/// Finds the slowest component, breaking ties toward the lowest-indexed IP
/// and then memory (so a balanced design reports IP\[0\]).
fn slowest_component(ips: &[IpBreakdown], memory_time: f64) -> (Bottleneck, f64) {
    let mut bottleneck = Bottleneck::Memory;
    let mut max_time = memory_time;
    for (i, ip) in ips.iter().enumerate().rev() {
        if ip.time.value() >= max_time {
            bottleneck = Bottleneck::Ip(i);
            max_time = ip.time.value();
        }
    }
    (bottleneck, max_time)
}

/// The scaled per-IP roofline of Equation 12 evaluated at an arbitrary
/// operational intensity:
/// `1/TIP[i] = min(Bi · I, Ai · Ppeak) / fi`.
///
/// This is what the Gables multi-roofline plots draw for each IP; the IP's
/// own operating point is read off at `I = Ii` (the "drop line").
///
/// # Errors
///
/// * [`GablesError::IpIndexOutOfBounds`] for a bad `index`.
/// * [`GablesError::InvalidParameter`] if `fraction` is zero (the paper
///   removes the term entirely; there is no roofline for an idle IP) or
///   out of `[0, 1]`.
pub fn scaled_ip_roofline(
    soc: &SocSpec,
    index: usize,
    fraction: f64,
    intensity: OpsPerByte,
) -> Result<OpsPerSec, GablesError> {
    if !(fraction.is_finite() && 0.0 < fraction && fraction <= 1.0) {
        return Err(GablesError::invalid_parameter(
            "work fraction",
            fraction,
            "scaled roofline requires 0 < fi <= 1",
        ));
    }
    let ip = soc.ip(index)?;
    let bw_bound = (ip.bandwidth() * intensity).value();
    let compute_bound = (ip.acceleration() * soc.ppeak()).value();
    Ok(OpsPerSec::new(bw_bound.min(compute_bound) / fraction))
}

/// The memory roofline of Equation 13 evaluated at an arbitrary average
/// intensity: `1/Tmemory = Bpeak · Iavg`. A pure bandwidth bound — it has
/// no flat region because memory has no computational limit.
pub fn memory_roofline(soc: &SocSpec, iavg: OpsPerByte) -> OpsPerSec {
    soc.bpeak() * iavg
}

/// The performance-form dual (Equation 14): evaluates every scaled roofline
/// at the workload's own operating points and takes the minimum. Agrees
/// with [`evaluate`]'s time form to floating-point accuracy (verified by
/// property test).
///
/// # Errors
///
/// Returns [`GablesError::IpCountMismatch`] on a workload/SoC shape
/// mismatch.
pub fn attainable_perf_form(soc: &SocSpec, workload: &Workload) -> Result<OpsPerSec, GablesError> {
    if soc.ip_count() != workload.ip_count() {
        return Err(GablesError::IpCountMismatch {
            soc_ips: soc.ip_count(),
            workload_ips: workload.ip_count(),
        });
    }
    let mut min = f64::INFINITY;
    for (i, assignment) in workload.assignments().iter().enumerate() {
        if !assignment.is_active() {
            continue; // Term omitted when fi = 0 (divide-by-zero avoidance).
        }
        let bound = scaled_ip_roofline(
            soc,
            i,
            assignment.fraction().value(),
            assignment.intensity(),
        )?;
        min = min.min(bound.value());
    }
    if let Some(iavg) = workload.iavg() {
        min = min.min(memory_roofline(soc, iavg).value());
    }
    Ok(OpsPerSec::new(min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::BytesPerSec;

    fn figure6_soc(bpeak_gbps: f64) -> SocSpec {
        SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(40.0))
            .bpeak(BytesPerSec::from_gbps(bpeak_gbps))
            .cpu("CPU", BytesPerSec::from_gbps(6.0))
            .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn figure_6a_exact() {
        // f = 0: all work at the CPU; Pattainable = min(40, -, 80) = 40.
        let soc = figure6_soc(10.0);
        let w = Workload::two_ip(0.0, 8.0, 0.1).unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().to_gops() - 40.0).abs() < 1e-9);
        assert_eq!(eval.bottleneck(), Bottleneck::Ip(0));
        assert!((eval.memory_bound().to_gops() - 80.0).abs() < 1e-9);
        assert_eq!(eval.ip(0).unwrap().limit, IpLimit::Compute);
        assert_eq!(eval.ip(1).unwrap().limit, IpLimit::Idle);
        assert_eq!(eval.ip(1).unwrap().perf_bound, None);
    }

    #[test]
    fn figure_6b_exact() {
        // f = 0.75: 1/TIP0 = 160, 1/TIP1 = 2, 1/Tmem = 1.3278 -> 1.3.
        let soc = figure6_soc(10.0);
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().to_gops() - 1.327_800_829).abs() < 1e-6);
        assert_eq!(eval.bottleneck(), Bottleneck::Memory);
        assert!((eval.ip(0).unwrap().perf_bound.unwrap().to_gops() - 160.0).abs() < 1e-9);
        assert!((eval.ip(1).unwrap().perf_bound.unwrap().to_gops() - 2.0).abs() < 1e-9);
        assert!((eval.memory_bound().to_gops() - 1.327_800_829).abs() < 1e-6);
    }

    #[test]
    fn figure_6c_exact() {
        // Bpeak 10 -> 30 GB/s: performance only rises to 2.0 (IP[1] bound).
        let soc = figure6_soc(30.0);
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().to_gops() - 2.0).abs() < 1e-9);
        assert_eq!(eval.bottleneck(), Bottleneck::Ip(1));
        assert_eq!(eval.ip(1).unwrap().limit, IpLimit::Bandwidth);
        assert!((eval.memory_bound().to_gops() - 3.983_402_49).abs() < 1e-6);
    }

    #[test]
    fn figure_6d_exact_balanced() {
        // I1 0.1 -> 8, Bpeak -> 20 GB/s: all three rooflines equal 160.
        let soc = figure6_soc(20.0);
        let w = Workload::two_ip(0.75, 8.0, 8.0).unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().to_gops() - 160.0).abs() < 1e-9);
        assert!((eval.ip(0).unwrap().perf_bound.unwrap().to_gops() - 160.0).abs() < 1e-9);
        assert!((eval.ip(1).unwrap().perf_bound.unwrap().to_gops() - 160.0).abs() < 1e-9);
        assert!((eval.memory_bound().to_gops() - 160.0).abs() < 1e-9);
        assert!(eval.is_balanced(1e-9));
        assert_eq!(
            eval.binding_components(1e-9),
            vec![Bottleneck::Ip(0), Bottleneck::Ip(1), Bottleneck::Memory]
        );
    }

    #[test]
    fn perf_form_agrees_with_time_form_on_figure6() {
        for (bpeak, f, i1) in [
            (10.0, 0.0, 0.1),
            (10.0, 0.75, 0.1),
            (30.0, 0.75, 0.1),
            (20.0, 0.75, 8.0),
        ] {
            let soc = figure6_soc(bpeak);
            let w = Workload::two_ip(f, 8.0, i1).unwrap();
            let time_form = evaluate(&soc, &w).unwrap().attainable();
            let perf_form = attainable_perf_form(&soc, &w).unwrap();
            let rel = (time_form.value() - perf_form.value()).abs() / time_form.value();
            assert!(rel < 1e-12, "forms disagree: {time_form} vs {perf_form}");
        }
    }

    #[test]
    fn all_work_on_accelerator() {
        // f = 1: the CPU term is removed; IP[1] and memory remain.
        let soc = figure6_soc(10.0);
        let w = Workload::two_ip(1.0, 8.0, 8.0).unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        assert_eq!(eval.ip(0).unwrap().limit, IpLimit::Idle);
        // min(15*8, 200)/1 = 120 vs memory 10*8 = 80.
        assert!((eval.attainable().to_gops() - 80.0).abs() < 1e-9);
        assert_eq!(eval.bottleneck(), Bottleneck::Memory);
    }

    #[test]
    fn mismatched_shapes_are_rejected() {
        let soc = figure6_soc(10.0);
        let mut b = Workload::builder();
        b.work(1.0, 8.0).unwrap();
        let w = b.build().unwrap();
        assert_eq!(
            evaluate(&soc, &w).unwrap_err(),
            GablesError::IpCountMismatch {
                soc_ips: 2,
                workload_ips: 1
            }
        );
        assert!(attainable_perf_form(&soc, &w).is_err());
    }

    #[test]
    fn scaled_roofline_rejects_zero_fraction() {
        let soc = figure6_soc(10.0);
        assert!(scaled_ip_roofline(&soc, 0, 0.0, OpsPerByte::new(8.0)).is_err());
        assert!(scaled_ip_roofline(&soc, 0, 1.5, OpsPerByte::new(8.0)).is_err());
        assert!(scaled_ip_roofline(&soc, 7, 0.5, OpsPerByte::new(8.0)).is_err());
    }

    #[test]
    fn scaled_roofline_has_knee_at_ridge_point() {
        let soc = figure6_soc(10.0);
        // CPU ridge point: Ppeak/B0 = 40/6 ops/byte.
        let ridge = 40.0 / 6.0;
        let below = scaled_ip_roofline(&soc, 0, 1.0, OpsPerByte::new(ridge * 0.5)).unwrap();
        let at = scaled_ip_roofline(&soc, 0, 1.0, OpsPerByte::new(ridge)).unwrap();
        let above = scaled_ip_roofline(&soc, 0, 1.0, OpsPerByte::new(ridge * 4.0)).unwrap();
        assert!(below.to_gops() < 40.0);
        assert!((at.to_gops() - 40.0).abs() < 1e-9);
        assert!((above.to_gops() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn memory_roofline_is_linear_in_intensity() {
        let soc = figure6_soc(10.0);
        let p1 = memory_roofline(&soc, OpsPerByte::new(1.0));
        let p8 = memory_roofline(&soc, OpsPerByte::new(8.0));
        assert!((p8.value() / p1.value() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_times_match_component_data() {
        let soc = figure6_soc(10.0);
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        let ip1 = eval.ip(1).unwrap();
        // D1 = f/I1 = 0.75/0.1 = 7.5 bytes per op.
        assert!((ip1.data.value() - 7.5).abs() < 1e-12);
        // C1 = 0.75 / 200 Gops.
        assert!((ip1.compute_time.value() - 0.75 / 200.0e9).abs() < 1e-22);
        // Tmemory = (D0 + D1)/Bpeak.
        let d0 = eval.ip(0).unwrap().data.value();
        assert!((eval.memory_time().value() - (d0 + 7.5) / 10.0e9).abs() < 1e-20);
    }

    #[test]
    fn display_mentions_bottleneck() {
        let soc = figure6_soc(10.0);
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let text = evaluate(&soc, &w).unwrap().to_string();
        assert!(text.contains("bottleneck: memory interface"));
        assert!(text.contains("IP[0]"));
    }

    #[test]
    fn bottleneck_display() {
        assert_eq!(Bottleneck::Ip(3).to_string(), "IP[3]");
        assert_eq!(Bottleneck::Memory.to_string(), "memory interface");
        assert_eq!(IpLimit::Compute.to_string(), "compute-bound");
        assert_eq!(IpLimit::Bandwidth.to_string(), "bandwidth-bound");
        assert_eq!(IpLimit::Idle.to_string(), "idle");
    }

    #[test]
    fn three_ip_evaluation() {
        // CPU + GPU + DSP with the DSP deliberately starved for bandwidth.
        let soc = SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(10.0))
            .bpeak(BytesPerSec::from_gbps(30.0))
            .cpu("CPU", BytesPerSec::from_gbps(15.0))
            .accelerator("GPU", 40.0, BytesPerSec::from_gbps(24.0))
            .unwrap()
            .accelerator("DSP", 0.4, BytesPerSec::from_gbps(0.5))
            .unwrap()
            .build()
            .unwrap();
        let mut b = Workload::builder();
        b.work(0.2, 8.0).unwrap();
        b.work(0.7, 8.0).unwrap();
        b.work(0.1, 8.0).unwrap();
        let w = b.build().unwrap();
        let eval = evaluate(&soc, &w).unwrap();
        // DSP: min(0.5*8, 0.4*10)/0.1 = min(4, 4)/0.1 = 40 Gops/s.
        // CPU: min(15*8, 10)/0.2 = 50. GPU: min(24*8, 400)/0.7 = 274.3.
        // Memory: 30*8 = 240. DSP binds.
        assert_eq!(eval.bottleneck(), Bottleneck::Ip(2));
        assert!((eval.attainable().to_gops() - 40.0).abs() < 1e-9);
    }
}
