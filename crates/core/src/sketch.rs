//! Deterministic streaming latency quantiles with a provable error
//! bound, plus a rolling multi-window ring for windowed SLO math.
//!
//! The centerpiece is [`QuantileSketch`], a DDSketch-style sketch over
//! integer microsecond latencies: values are hashed into γ-indexed
//! geometric buckets where `γ = (1 + α) / (1 − α)` for a configured
//! relative accuracy `α`. Bucket `i` covers `[γ^i, γ^(i+1))` and is
//! estimated by the point `γ^i · 2γ/(γ+1)`, which sits within `±α`
//! relative error of every value in the bucket (see DESIGN.md for the
//! two-line proof). All retained state is integral — bucket indices,
//! counts, and microsecond sums — so [`QuantileSketch::merge`] is an
//! exact bucket-wise addition: merging per-shard sketches yields a
//! sketch *bit-identical* to one fed the union stream, and merge is
//! commutative and associative by construction.
//!
//! [`WindowRing`] stacks sketches into a ring of fixed 10-second slots
//! (one hour of coverage) so callers can ask for p50/p90/p99 and error
//! rates over trailing 1m/5m/1h windows — the windows SLO burn-rate
//! alerting conventionally pairs (fast burn on the short window,
//! sustained burn on the long one). Time is always passed in by the
//! caller as whole seconds, keeping every code path deterministic
//! under test.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// Default relative accuracy: 1% (10_000 parts per million).
pub const DEFAULT_ALPHA_PPM: u32 = 10_000;

/// Seconds covered by one ring slot.
pub const SLOT_SECS: u64 = 10;

/// Number of slots in the ring: one hour of 10-second slots.
pub const RING_SLOTS: usize = 360;

/// The trailing windows the ring answers for, in seconds (1m/5m/1h).
pub const WINDOWS_SECS: [u64; 3] = [60, 300, 3600];

/// Magic prefix for the binary codec (version 1).
const BINARY_MAGIC: &[u8; 4] = b"GSK1";

/// A deterministic DDSketch-style streaming quantile sketch over
/// integer microsecond values.
///
/// State is fully integral so that [`merge`](Self::merge) is exact:
/// `merge(a, b) == merge(b, a)` bit for bit, and a merged fleet of
/// sketches equals a single sketch fed the union of their streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Relative accuracy α in parts per million.
    alpha_ppm: u32,
    /// Count of recorded zero values (index undefined at v = 0).
    zero_count: u64,
    /// Total recorded values, including zeros.
    count: u64,
    /// Sum of recorded values, for mean computation.
    sum_us: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    min_us: u64,
    /// Largest recorded value.
    max_us: u64,
    /// γ-indexed bucket counts, keyed by `floor(ln v / ln γ)`.
    buckets: BTreeMap<u32, u64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_ALPHA_PPM)
    }
}

impl QuantileSketch {
    /// An empty sketch with relative accuracy `alpha_ppm` parts per
    /// million (clamped to `[100, 200_000]`, i.e. 0.01%–20%).
    pub fn new(alpha_ppm: u32) -> Self {
        QuantileSketch {
            alpha_ppm: alpha_ppm.clamp(100, 200_000),
            zero_count: 0,
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// Relative accuracy α as a fraction (e.g. `0.01` for 1%).
    pub fn alpha(&self) -> f64 {
        self.alpha_ppm as f64 / 1_000_000.0
    }

    /// Relative accuracy in parts per million, as configured.
    pub fn alpha_ppm(&self) -> u32 {
        self.alpha_ppm
    }

    /// γ = (1 + α) / (1 − α).
    fn gamma(&self) -> f64 {
        let alpha = self.alpha();
        (1.0 + alpha) / (1.0 - alpha)
    }

    /// Total recorded values, including zeros.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Smallest recorded value, if any.
    pub fn min_us(&self) -> Option<u64> {
        (self.count > 0).then_some(if self.zero_count > 0 { 0 } else { self.min_us })
    }

    /// Largest recorded value, if any.
    pub fn max_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_us)
    }

    /// Number of occupied buckets (excluding the implicit zero bucket).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// The γ-bucket index for a nonzero value: `floor(ln v / ln γ)`.
    pub fn bucket_index(&self, value_us: u64) -> u32 {
        debug_assert!(value_us > 0);
        let idx = (value_us as f64).ln() / self.gamma().ln();
        // floor() of a value ≥ 0 − ulp noise; clamp defensively.
        idx.floor().max(0.0) as u32
    }

    /// The representative point of bucket `i`: `γ^i · 2γ/(γ+1)`,
    /// within ±α relative error of every value in `[γ^i, γ^(i+1))`.
    fn bucket_estimate(&self, index: u32) -> f64 {
        let gamma = self.gamma();
        gamma.powi(index as i32) * (2.0 * gamma / (gamma + 1.0))
    }

    /// Records one value (microseconds).
    pub fn record(&mut self, value_us: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.min_us = self.min_us.min(value_us);
        self.max_us = self.max_us.max(value_us);
        if value_us == 0 {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(self.bucket_index(value_us)).or_insert(0) += 1;
        }
    }

    /// Lossless merge: bucket-wise integer addition. Exact, so it is
    /// commutative and associative, and merging shard sketches equals
    /// sketching the union stream. Sketches must share `alpha_ppm`;
    /// merging mismatched accuracies returns `false` and leaves `self`
    /// untouched.
    #[must_use = "a false return means the sketches were incompatible"]
    pub fn merge(&mut self, other: &QuantileSketch) -> bool {
        if self.alpha_ppm != other.alpha_ppm {
            return false;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        true
    }

    /// Estimated quantile `q ∈ [0, 1]` in microseconds, or `None` when
    /// empty. Uses the nearest-rank rule (1-based rank `⌈q·n⌉`), the
    /// same rule tests apply to the exact sorted stream, so the ±α
    /// guarantee is testable end to end.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank <= self.zero_count {
            return Some(0.0);
        }
        let mut cumulative = self.zero_count;
        for (&index, &n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                let estimate = self.bucket_estimate(index);
                // The true min/max tighten the estimate at the edges
                // without ever loosening the α bound.
                return Some(estimate.clamp(self.min_us as f64, self.max_us as f64));
            }
        }
        Some(self.max_us as f64)
    }

    /// Count of recorded values strictly greater than `threshold_us`,
    /// estimated from whole buckets above the threshold's bucket. Used
    /// for SLO violation rates (`p99 < 2ms` → values above 2ms burn
    /// budget).
    pub fn count_above(&self, threshold_us: u64) -> u64 {
        if threshold_us == 0 {
            return self.count - self.zero_count;
        }
        let boundary = self.bucket_index(threshold_us);
        self.buckets
            .iter()
            .filter(|(&index, _)| index > boundary)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Compact JSON codec: every field integral, so the round trip is
    /// exact and merged decodes equal decoded merges.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.buckets.len() * 16);
        // An empty sketch's `min_us` sentinel (`u64::MAX`) exceeds
        // JSON's exact-integer range; encode it as 0 and restore the
        // sentinel on decode (`count == 0` implies no min exists).
        let min_us = if self.count == 0 { 0 } else { self.min_us };
        let _ = write!(
            out,
            "{{\"alpha_ppm\":{},\"zero\":{},\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"buckets\":[",
            self.alpha_ppm, self.zero_count, self.count, self.sum_us, min_us, self.max_us
        );
        for (i, (&index, &n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{index},{n}]");
        }
        out.push_str("]}");
        out
    }

    /// Decodes [`to_json`](Self::to_json) output (or the same object
    /// embedded in a larger document). Returns `None` on any shape or
    /// consistency violation.
    pub fn from_json(json: &Json) -> Option<QuantileSketch> {
        let int = |key: &str| -> Option<u64> {
            let x = json.get(key)?.as_f64()?;
            (x >= 0.0 && x <= 2f64.powi(53) && x.fract() == 0.0).then_some(x as u64)
        };
        let alpha_ppm = int("alpha_ppm")?;
        if !(100..=200_000).contains(&alpha_ppm) {
            return None;
        }
        let mut sketch = QuantileSketch::new(alpha_ppm as u32);
        sketch.zero_count = int("zero")?;
        sketch.count = int("count")?;
        sketch.sum_us = int("sum_us")?;
        sketch.min_us = int("min_us")?;
        sketch.max_us = int("max_us")?;
        if sketch.count == 0 {
            sketch.min_us = u64::MAX;
        }
        let mut total = sketch.zero_count;
        for pair in json.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let index = pair[0].as_f64()?;
            let n = pair[1].as_f64()?;
            if index < 0.0 || index.fract() != 0.0 || n < 1.0 || n.fract() != 0.0 {
                return None;
            }
            // BTreeMap ordering makes duplicate keys detectable.
            if sketch.buckets.insert(index as u32, n as u64).is_some() {
                return None;
            }
            total += n as u64;
        }
        (total == sketch.count).then_some(sketch)
    }

    /// Parses a sketch from JSON text.
    pub fn parse(text: &str) -> Option<QuantileSketch> {
        QuantileSketch::from_json(&Json::parse(text).ok()?)
    }

    /// Compact little-endian binary codec (`GSK1` magic): fixed header
    /// then `(u32 index, u64 count)` pairs in ascending index order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.buckets.len() * 12);
        out.extend_from_slice(BINARY_MAGIC);
        out.extend_from_slice(&self.alpha_ppm.to_le_bytes());
        out.extend_from_slice(&self.zero_count.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum_us.to_le_bytes());
        out.extend_from_slice(&self.min_us.to_le_bytes());
        out.extend_from_slice(&self.max_us.to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        for (&index, &n) in &self.buckets {
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// Decodes [`to_bytes`](Self::to_bytes) output; `None` on any
    /// truncation, bad magic, disorder, or count mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<QuantileSketch> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = bytes.get(*at..*at + n)?;
            *at += n;
            Some(slice)
        };
        let u32_at = |at: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?))
        };
        let u64_at = |at: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(at, 8)?.try_into().ok()?))
        };
        if take(&mut at, 4)? != BINARY_MAGIC {
            return None;
        }
        let alpha_ppm = u32_at(&mut at)?;
        if !(100..=200_000).contains(&alpha_ppm) {
            return None;
        }
        let mut sketch = QuantileSketch::new(alpha_ppm);
        sketch.zero_count = u64_at(&mut at)?;
        sketch.count = u64_at(&mut at)?;
        sketch.sum_us = u64_at(&mut at)?;
        sketch.min_us = u64_at(&mut at)?;
        sketch.max_us = u64_at(&mut at)?;
        let buckets = u32_at(&mut at)? as usize;
        let mut total = sketch.zero_count;
        let mut last: Option<u32> = None;
        for _ in 0..buckets {
            let index = u32_at(&mut at)?;
            let n = u64_at(&mut at)?;
            if n == 0 || last.is_some_and(|prev| prev >= index) {
                return None;
            }
            last = Some(index);
            sketch.buckets.insert(index, n);
            total += n;
        }
        (at == bytes.len() && total == sketch.count).then_some(sketch)
    }
}

/// One ring slot: a sketch plus error/total counters, stamped with the
/// absolute slot number it covers so stale slots are detected on reuse.
#[derive(Debug, Clone, Default)]
struct WindowSlot {
    /// Absolute slot number (`now_secs / SLOT_SECS`); 0 means unused.
    epoch_slot: u64,
    sketch: QuantileSketch,
    errors: u64,
    total: u64,
}

/// Windowed statistics merged over a trailing window of ring slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// Window length in seconds, as requested.
    pub window_secs: u64,
    /// Merged sketch over the window.
    pub sketch: QuantileSketch,
    /// Requests counted as errors in the window.
    pub errors: u64,
    /// Total requests in the window.
    pub total: u64,
}

impl WindowStats {
    /// Error rate in `[0, 1]`; `0` when the window saw no traffic.
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.errors as f64 / self.total as f64
        }
    }
}

/// A ring of [`RING_SLOTS`] fixed [`SLOT_SECS`]-second slots holding
/// per-slot sketches and error counters, answering merged stats for
/// any trailing window up to one hour. The caller supplies wall time
/// as whole seconds, so tests drive the clock deterministically.
#[derive(Debug, Clone)]
pub struct WindowRing {
    alpha_ppm: u32,
    slots: Vec<WindowSlot>,
}

impl Default for WindowRing {
    fn default() -> Self {
        WindowRing::new(DEFAULT_ALPHA_PPM)
    }
}

impl WindowRing {
    /// An empty ring whose slot sketches use `alpha_ppm` accuracy.
    pub fn new(alpha_ppm: u32) -> Self {
        WindowRing {
            alpha_ppm,
            slots: vec![WindowSlot::default(); RING_SLOTS],
        }
    }

    /// Records one request at wall time `now_secs`.
    pub fn record(&mut self, now_secs: u64, latency_us: u64, is_error: bool) {
        let epoch_slot = now_secs / SLOT_SECS;
        let slot = &mut self.slots[(epoch_slot % RING_SLOTS as u64) as usize];
        if slot.epoch_slot != epoch_slot {
            // The ring lapped: this slot last covered a window at
            // least an hour old. Reset it for the current interval.
            slot.epoch_slot = epoch_slot;
            slot.sketch = QuantileSketch::new(self.alpha_ppm);
            slot.errors = 0;
            slot.total = 0;
        }
        slot.sketch.record(latency_us);
        slot.total += 1;
        if is_error {
            slot.errors += 1;
        }
    }

    /// Merged stats over the trailing `window_secs` ending at
    /// `now_secs` (clamped to the hour the ring covers).
    pub fn window(&self, now_secs: u64, window_secs: u64) -> WindowStats {
        let window_secs = window_secs.clamp(SLOT_SECS, SLOT_SECS * RING_SLOTS as u64);
        let newest = now_secs / SLOT_SECS;
        let span = window_secs / SLOT_SECS;
        let oldest = newest.saturating_sub(span - 1);
        let mut stats = WindowStats {
            window_secs,
            sketch: QuantileSketch::new(self.alpha_ppm),
            errors: 0,
            total: 0,
        };
        for slot in &self.slots {
            if slot.total > 0 && (oldest..=newest).contains(&slot.epoch_slot) {
                let merged = stats.sketch.merge(&slot.sketch);
                debug_assert!(merged, "ring slots share one alpha");
                stats.errors += slot.errors;
                stats.total += slot.total;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// Exact nearest-rank quantile over a sorted slice, matching the
    /// rank rule `quantile()` uses.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    /// A heavy-tailed latency corpus: log-uniform µs values spanning
    /// five orders of magnitude, the regime web latencies live in.
    fn corpus(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let exponent = rng.range_f64(0.0, 5.0);
                10f64.powf(exponent) as u64
            })
            .collect()
    }

    #[test]
    fn quantiles_within_alpha_of_exact_on_ten_thousand_latencies() {
        let values = corpus(0x51E7C4, 10_000);
        let mut sketch = QuantileSketch::default();
        for &v in &values {
            sketch.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let alpha = sketch.alpha();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q) as f64;
            let estimate = sketch.quantile(q).expect("nonempty");
            // Integer truncation at record time can cost up to 1µs on
            // top of the α relative bound.
            let bound = alpha * exact + 1.0;
            assert!(
                (estimate - exact).abs() <= bound,
                "q={q}: estimate {estimate} vs exact {exact} (α={alpha})"
            );
        }
        assert_eq!(sketch.count(), 10_000);
        assert_eq!(sketch.sum_us(), values.iter().sum::<u64>());
    }

    #[test]
    fn merged_shards_are_bit_identical_to_the_union_stream() {
        let values = corpus(0xFEED, 10_001);
        let mut union = QuantileSketch::default();
        let mut shards = [
            QuantileSketch::default(),
            QuantileSketch::default(),
            QuantileSketch::default(),
        ];
        for (i, &v) in values.iter().enumerate() {
            union.record(v);
            shards[i % 3].record(v);
        }
        // merge(a, merge(b, c)) and merge(merge(a, b), c), both == union.
        let mut left = shards[0].clone();
        assert!(left.merge(&shards[1]));
        assert!(left.merge(&shards[2]));
        let mut right_tail = shards[1].clone();
        assert!(right_tail.merge(&shards[2]));
        let mut right = shards[0].clone();
        assert!(right.merge(&right_tail));
        assert_eq!(left, union, "merge must equal the union stream");
        assert_eq!(right, union, "merge must be associative");
        // Commutativity.
        let mut ab = shards[0].clone();
        assert!(ab.merge(&shards[1]));
        let mut ba = shards[1].clone();
        assert!(ba.merge(&shards[0]));
        assert_eq!(ab, ba);
        // And byte-for-byte identical over both codecs.
        assert_eq!(left.to_bytes(), union.to_bytes());
        assert_eq!(left.to_json(), union.to_json());
    }

    #[test]
    fn json_and_binary_codecs_round_trip_exactly() {
        let mut sketch = QuantileSketch::new(25_000);
        for &v in &[0, 0, 1, 7, 93, 12_345, 7_777_777] {
            sketch.record(v);
        }
        let decoded = QuantileSketch::parse(&sketch.to_json()).expect("json round trip");
        assert_eq!(decoded, sketch);
        let decoded = QuantileSketch::from_bytes(&sketch.to_bytes()).expect("binary round trip");
        assert_eq!(decoded, sketch);
        // Empty sketches round-trip too.
        let empty = QuantileSketch::default();
        assert_eq!(QuantileSketch::parse(&empty.to_json()), Some(empty.clone()));
        assert_eq!(QuantileSketch::from_bytes(&empty.to_bytes()), Some(empty));
    }

    #[test]
    fn codecs_reject_malformed_input() {
        let mut sketch = QuantileSketch::default();
        sketch.record(5);
        // Tampered total: bucket counts no longer sum to `count`.
        let tampered = sketch.to_json().replace("\"count\":1", "\"count\":3");
        assert_eq!(QuantileSketch::parse(&tampered), None);
        assert_eq!(QuantileSketch::parse("{\"alpha_ppm\":10000}"), None);
        assert_eq!(QuantileSketch::parse("[1,2]"), None);
        let mut bytes = sketch.to_bytes();
        bytes[0] = b'X';
        assert_eq!(QuantileSketch::from_bytes(&bytes), None);
        let mut truncated = sketch.to_bytes();
        truncated.pop();
        assert_eq!(QuantileSketch::from_bytes(&truncated), None);
        assert_eq!(QuantileSketch::from_bytes(b""), None);
    }

    #[test]
    fn zero_values_and_extremes_are_representable() {
        let mut sketch = QuantileSketch::default();
        sketch.record(0);
        sketch.record(0);
        sketch.record(1_000_000);
        assert_eq!(sketch.quantile(0.5), Some(0.0));
        assert_eq!(sketch.min_us(), Some(0));
        assert_eq!(sketch.max_us(), Some(1_000_000));
        let p100 = sketch.quantile(1.0).expect("nonempty");
        assert!((p100 - 1_000_000.0).abs() <= sketch.alpha() * 1_000_000.0);
        assert_eq!(QuantileSketch::default().quantile(0.5), None);
        // Mismatched accuracies refuse to merge.
        let mut coarse = QuantileSketch::new(50_000);
        assert!(!coarse.merge(&sketch));
        assert_eq!(coarse.count(), 0);
    }

    #[test]
    fn count_above_tracks_threshold_violations() {
        let mut sketch = QuantileSketch::default();
        for v in [100u64, 200, 400, 800, 1_600, 3_200] {
            sketch.record(v);
        }
        // Everything strictly above ~800µs: 1600 and 3200.
        assert_eq!(sketch.count_above(800), 2);
        assert_eq!(sketch.count_above(5_000), 0);
        assert_eq!(sketch.count_above(0), 6);
    }

    #[test]
    fn window_ring_answers_trailing_windows_and_laps_cleanly() {
        let mut ring = WindowRing::default();
        let t0 = 1_700_000_000u64;
        // One request per second for 90 seconds, errors every 10th.
        for s in 0..90u64 {
            ring.record(t0 + s, 1_000 + s, s % 10 == 0);
        }
        let now = t0 + 89;
        let minute = ring.window(now, 60);
        // The 1m window spans 6 slots = 60 one-per-second records.
        assert_eq!(minute.total, 60);
        assert_eq!(minute.errors, 6);
        assert!((minute.error_rate() - 0.1).abs() < 1e-12);
        let hour = ring.window(now, 3600);
        assert_eq!(hour.total, 90);
        assert_eq!(hour.errors, 9);
        // An hour later the ring has lapped: old slots are reset on
        // write and ignored on read.
        let later = t0 + 3_600 + 89;
        ring.record(later, 42, false);
        let fresh = ring.window(later, 60);
        assert_eq!(fresh.total, 1);
        assert_eq!(fresh.errors, 0);
        let stale = ring.window(later, 3600);
        assert_eq!(
            stale.total, 1,
            "slots older than the ring's hour never reappear"
        );
    }

    #[test]
    fn window_stats_merge_matches_direct_recording() {
        // Two shards recording interleaved traffic; the merged window
        // sketch must equal one ring fed everything.
        let mut a = WindowRing::default();
        let mut b = WindowRing::default();
        let mut union = WindowRing::default();
        let mut rng = SplitMix64::new(0xAB);
        let t0 = 1_700_000_000u64;
        for i in 0..500u64 {
            let at = t0 + i % 60;
            let latency = rng.range_u64(1, 100_000);
            let err = rng.chance(0.05);
            union.record(at, latency, err);
            if i % 2 == 0 {
                a.record(at, latency, err);
            } else {
                b.record(at, latency, err);
            }
        }
        let now = t0 + 59;
        let mut merged = a.window(now, 60);
        let from_b = b.window(now, 60);
        assert!(merged.sketch.merge(&from_b.sketch));
        merged.errors += from_b.errors;
        merged.total += from_b.total;
        let direct = union.window(now, 60);
        assert_eq!(merged.sketch, direct.sketch);
        assert_eq!(merged.errors, direct.errors);
        assert_eq!(merged.total, direct.total);
    }
}
