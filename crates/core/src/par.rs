//! Deterministic std-only parallel execution.
//!
//! The Gables model's hottest paths are embarrassingly parallel grids:
//! design-space exploration enumerates (A, B1, Bpeak) candidates,
//! offload/bandwidth sweeps step a single knob, and the ERT harness walks
//! an intensity × working-set lattice. This module gives those loops a
//! shared engine with two hard guarantees:
//!
//! 1. **Bit-identical outputs.** Results land in their original index
//!    order regardless of worker count or scheduling jitter, so a golden
//!    test comparing [`Parallelism::Serial`] against `Threads(8)` passes
//!    byte-for-byte. Work is claimed in contiguous index chunks and each
//!    chunk's results are reassembled by chunk index before flattening.
//! 2. **Deterministic errors.** The serial loop reports the *first*
//!    failing index. The parallel path evaluates every chunk (no
//!    early-exit races) and returns the error with the minimum index, so
//!    callers observe the same error object either way. This requires the
//!    mapped closure to be pure — same index, same outcome.
//!
//! No `unsafe`, no dependencies: scoped threads
//! ([`std::thread::scope`]), an [`AtomicUsize`] chunk cursor, and a
//! [`Mutex`]-guarded result bin.
//!
//! Worker count resolution is centralized in [`Parallelism::resolve`]:
//! `Serial` pins one worker, `Threads(n)` pins `n`, and `Auto` consults
//! the `GABLES_THREADS` environment variable before falling back to
//! [`std::thread::available_parallelism`].

use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many workers a parallelizable operation may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread, exactly like the original serial loop.
    Serial,
    /// `GABLES_THREADS` if set and valid, else
    /// [`std::thread::available_parallelism`], else 1.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// The number of worker threads this policy resolves to, always ≥ 1.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => match std::env::var("GABLES_THREADS") {
                Ok(v) => match v.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => available(),
                },
                Err(_) => available(),
            },
        }
    }

    /// Parses a CLI-style thread-count argument (`"4"`, `"auto"`,
    /// `"serial"`). Returns `None` for anything else.
    pub fn from_arg(arg: &str) -> Option<Self> {
        match arg.trim() {
            "auto" => Some(Parallelism::Auto),
            "serial" | "1" => Some(Parallelism::Serial),
            other => other
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::Threads),
        }
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..len`, preserving index order in the output.
///
/// With one resolved worker this is exactly `(0..len).map(f).collect()`
/// including short-circuit on the first error. With more, indices are
/// claimed in contiguous chunks by a scoped worker pool; outputs are
/// reassembled in index order and, on failure, the error from the
/// *lowest* failing chunk is returned — matching what the serial loop
/// would have reported, provided `f` is pure.
pub fn try_map<T, E, F>(par: Parallelism, len: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    // Snapshot the caller's span context (if any) so worker spans attach
    // to the trace that spawned them. Span IDs are derived from the chunk
    // index, never the thread, so traces stay deterministic at any
    // worker count (see `obs::derive_span_id`).
    let span_ctx = crate::obs::current_context();

    let workers = par.resolve().min(len.max(1));
    if workers <= 1 || len <= 1 {
        let _span = span_ctx
            .as_ref()
            .map(|ctx| crate::obs::span_at(ctx, "worker", 0));
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(f(i)?);
        }
        return Ok(out);
    }

    // Aim for ~4 chunks per worker so stragglers rebalance, but never
    // empty chunks.
    let chunk = len.div_ceil(workers * 4).max(1);
    let n_chunks = len.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    // (chunk index, results) on success; (chunk index, error) on failure.
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let failed: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    return;
                }
                let start = c * chunk;
                let end = (start + chunk).min(len);
                let _span = span_ctx
                    .as_ref()
                    .map(|ctx| crate::obs::span_at(ctx, "worker", c as u64));
                let mut local = Vec::with_capacity(end - start);
                let mut err = None;
                for i in start..end {
                    match f(i) {
                        Ok(v) => local.push(v),
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                match err {
                    None => done.lock().unwrap().push((c, local)),
                    Some(e) => failed.lock().unwrap().push((c, e)),
                }
            });
        }
    });

    let mut failures = failed.into_inner().unwrap();
    if let Some(best) = failures
        .iter()
        .enumerate()
        .min_by_key(|(_, (c, _))| *c)
        .map(|(i, _)| i)
    {
        return Err(failures.swap_remove(best).1);
    }
    let mut bins = done.into_inner().unwrap();
    bins.sort_by_key(|(c, _)| *c);
    let mut out = Vec::with_capacity(len);
    for (_, mut local) in bins {
        out.append(&mut local);
    }
    Ok(out)
}

/// Infallible companion to [`try_map`]: maps `f` over `0..len` with
/// index-ordered output.
pub fn map<T, F>(par: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let res: Result<Vec<T>, Infallible> = try_map(par, len, |i| Ok(f(i)));
    match res {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resolves_to_one() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(0).resolve(), 1);
        assert_eq!(Parallelism::Threads(7).resolve(), 7);
        assert!(Parallelism::Auto.resolve() >= 1);
    }

    #[test]
    fn from_arg_parses_policies() {
        assert_eq!(Parallelism::from_arg("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::from_arg("serial"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::from_arg("1"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::from_arg("4"), Some(Parallelism::Threads(4)));
        assert_eq!(Parallelism::from_arg("0"), None);
        assert_eq!(Parallelism::from_arg("-2"), None);
        assert_eq!(Parallelism::from_arg("fast"), None);
    }

    #[test]
    fn map_preserves_index_order() {
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ] {
            for len in [0, 1, 2, 3, 7, 64, 1000] {
                let got = map(par, len, |i| i * i);
                let want: Vec<usize> = (0..len).map(|i| i * i).collect();
                assert_eq!(got, want, "par={par:?} len={len}");
            }
        }
    }

    #[test]
    fn try_map_matches_serial_results() {
        let f = |i: usize| -> Result<f64, ()> { Ok((i as f64).sqrt().sin()) };
        let serial = try_map(Parallelism::Serial, 513, f).unwrap();
        for n in [2, 3, 8] {
            let par = try_map(Parallelism::Threads(n), 513, f).unwrap();
            assert_eq!(serial, par, "threads={n}");
        }
    }

    #[test]
    fn try_map_reports_the_first_error_like_serial() {
        // Fail at several indices; serial reports the lowest one. The
        // parallel path must report an error from the lowest failing
        // *chunk*, which for pure f is the same error value when every
        // failing index carries its own payload.
        let f = |i: usize| -> Result<usize, usize> {
            if i % 97 == 13 {
                Err(i)
            } else {
                Ok(i)
            }
        };
        let serial_err = try_map(Parallelism::Serial, 1000, f).unwrap_err();
        for n in [2, 8] {
            let par_err = try_map(Parallelism::Threads(n), 1000, f).unwrap_err();
            assert_eq!(serial_err, par_err, "threads={n}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let got: Vec<usize> = map(Parallelism::Threads(8), 0, |i| i);
        assert!(got.is_empty());
        let got = map(Parallelism::Threads(8), 1, |i| i + 41);
        assert_eq!(got, vec![41]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let got = map(Parallelism::Threads(32), 5, |i| i);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn worker_spans_attach_to_the_caller_trace_deterministically() {
        use crate::obs;

        let worker_ids = |par: Parallelism| -> Vec<(u64, u64)> {
            let collector = obs::SpanCollector::new(256);
            {
                let _root = obs::attach_root(&collector, obs::hash64("par-test"), "root");
                let _ = map(par, 100, |i| i * 2);
            }
            let (spans, dropped) = collector.take();
            assert_eq!(dropped, 0);
            let mut ids: Vec<(u64, u64)> = spans
                .iter()
                .filter(|s| s.name == "worker")
                .map(|s| (s.span_id, s.parent_id))
                .collect();
            assert!(!ids.is_empty(), "parallel map must emit worker spans");
            ids.sort_unstable();
            ids
        };

        // Same policy, two runs: identical span identity despite
        // scheduling jitter.
        assert_eq!(
            worker_ids(Parallelism::Threads(4)),
            worker_ids(Parallelism::Threads(4))
        );
        // The serial path still emits a worker span so traces always
        // nest root→…→worker.
        assert_eq!(worker_ids(Parallelism::Serial).len(), 1);
    }
}
