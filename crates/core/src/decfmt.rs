//! Exact fixed-precision decimal formatting for display hot paths.
//!
//! `format!("{x:.3}")` routes every float through the full `core::fmt`
//! machinery (Dragon4 digit generation plus `Formatter` padding), which
//! costs a couple hundred nanoseconds per value and dominates the
//! `Display` side of `gables eval` and the per-point cost of
//! `gables sweep`. This module produces the *same bytes* with 128-bit
//! integer arithmetic instead.
//!
//! Correctness argument: a finite `f64` is exactly `m * 2^e` for integers
//! `m < 2^53` and `e`, so `|x| * 10^p` is the exact rational
//! `(m * 10^p) / 2^s` (or the exact integer `m * 10^p * 2^e` when
//! `e >= 0`). Rounding that rational to the nearest integer with ties to
//! even is precisely the digit sequence std prints for `{x:.p$}` — std
//! rounds the exact decimal expansion, not a scaled double — so
//! comparing quotient remainder against one half reproduces it bit for
//! bit. Magnitudes too large for the 128-bit fast path (|x| >= 2^41,
//! where `m * 10^9 << e` could overflow) fall back to std formatting;
//! every path is differentially tested against std in `fixed_tests`.

use std::fmt;

/// Widest fast-path output: sign + 22 integer digits + '.' + 9 fraction
/// digits fits well within 48 bytes.
const BUF: usize = 48;

/// Highest supported fraction-digit count; larger precisions (and
/// non-finite or huge values) take the std fallback.
const MAX_PRECISION: usize = 9;

/// A stack-formatted fixed-precision decimal, byte-identical to
/// `format!("{x:.precision$}")`. `None` means the value needs the std
/// fallback (non-finite, precision above [`MAX_PRECISION`], or a
/// magnitude past the 128-bit fast path).
#[derive(Debug, Clone, Copy)]
pub struct Fixed {
    buf: [u8; BUF],
    start: usize,
}

impl Fixed {
    /// Formats `x` with exactly `precision` fraction digits, rounding
    /// ties to even on the exact value — the same bytes std produces.
    pub fn format(x: f64, precision: usize) -> Option<Fixed> {
        if !x.is_finite() || precision > MAX_PRECISION {
            return None;
        }
        let bits = x.to_bits();
        let neg = (bits >> 63) == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Value magnitude is exactly m * 2^e.
        let (m, e) = if biased == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        let pow10 = 10u128.pow(precision as u32);
        let n = u128::from(m) * pow10; // < 2^53 * 10^9 < 2^83
        let scaled = if e >= 0 {
            if e > 40 {
                return None; // could overflow u128; |x| >= 2^41 here
            }
            n << e // exact integer, no rounding involved
        } else {
            let s = -e as u32;
            if s >= 128 {
                // |x| * 10^p < 2^83 / 2^128: far below one half.
                0
            } else {
                let q = n >> s;
                let rem = n & ((1u128 << s) - 1);
                let half = 1u128 << (s - 1);
                q + match rem.cmp(&half) {
                    std::cmp::Ordering::Less => 0,
                    std::cmp::Ordering::Greater => 1,
                    std::cmp::Ordering::Equal => q & 1, // ties to even
                }
            }
        };

        // Render right to left: fraction digits, point, integer digits,
        // sign (std keeps the sign of -0.0 and of negatives that round
        // to zero, and so does this).
        let mut buf = [0u8; BUF];
        let mut i = BUF;
        let mut int_part = scaled / pow10;
        if precision > 0 {
            let mut f = scaled % pow10;
            for _ in 0..precision {
                i -= 1;
                buf[i] = b'0' + (f % 10) as u8;
                f /= 10;
            }
            i -= 1;
            buf[i] = b'.';
        }
        loop {
            i -= 1;
            buf[i] = b'0' + (int_part % 10) as u8;
            int_part /= 10;
            if int_part == 0 {
                break;
            }
        }
        if neg {
            i -= 1;
            buf[i] = b'-';
        }
        Some(Fixed { buf, start: i })
    }

    /// The formatted digits.
    pub fn as_str(&self) -> &str {
        // The buffer holds only ASCII digits, '.', and '-'.
        std::str::from_utf8(&self.buf[self.start..]).expect("ascii")
    }
}

/// Writes `{x:.precision$}` through a `Formatter` without the float
/// machinery; falls back to std off the fast path.
pub fn write_fixed(f: &mut fmt::Formatter<'_>, x: f64, precision: usize) -> fmt::Result {
    match Fixed::format(x, precision) {
        Some(d) => f.write_str(d.as_str()),
        None => write!(f, "{x:.precision$}"),
    }
}

/// Appends `{x:.precision$}` to a string.
pub fn push_fixed(out: &mut String, x: f64, precision: usize) {
    use fmt::Write as _;
    match Fixed::format(x, precision) {
        Some(d) => out.push_str(d.as_str()),
        None => {
            let _ = write!(out, "{x:.precision$}");
        }
    }
}

/// Appends `{x:<width$.precision$}` (left-aligned, space-filled).
pub fn push_fixed_left(out: &mut String, x: f64, precision: usize, width: usize) {
    use fmt::Write as _;
    match Fixed::format(x, precision) {
        Some(d) => {
            let s = d.as_str();
            out.push_str(s);
            for _ in s.len()..width {
                out.push(' ');
            }
        }
        None => {
            let _ = write!(out, "{x:<width$.precision$}");
        }
    }
}

/// Appends `{x:>width$.precision$}` (right-aligned, space-filled).
pub fn push_fixed_right(out: &mut String, x: f64, precision: usize, width: usize) {
    use fmt::Write as _;
    match Fixed::format(x, precision) {
        Some(d) => {
            let s = d.as_str();
            for _ in s.len()..width {
                out.push(' ');
            }
            out.push_str(s);
        }
        None => {
            let _ = write!(out, "{x:>width$.precision$}");
        }
    }
}

#[cfg(test)]
mod fixed_tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn check(x: f64, precision: usize) {
        let expected = format!("{x:.precision$}");
        let mut got = String::new();
        push_fixed(&mut got, x, precision);
        assert_eq!(got, expected, "x={x:?} ({:#x}) p={precision}", x.to_bits());
    }

    #[test]
    fn matches_std_on_edge_values() {
        for p in 0..=9 {
            for &x in &[
                0.0,
                -0.0,
                1.0,
                -1.0,
                0.5,
                1.5,
                2.5,
                -2.5,
                0.00005,
                0.000049999999,
                0.15,
                0.25,
                0.35,
                1.0 / 3.0,
                2.0 / 3.0,
                0.1,
                0.2,
                0.3,
                f64::MIN_POSITIVE,
                5e-324, // smallest subnormal
                1e-300,
                -1e-300,
                1e15,
                123_456_789.123_456_78,
                (1u64 << 40) as f64,
                (1u64 << 41) as f64, // just past the fast path
                f64::MAX,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
            ] {
                check(x, p);
            }
        }
    }

    #[test]
    fn matches_std_on_random_bit_patterns() {
        // Raw bit patterns cover subnormals, huge exponents, and both
        // fallback paths; the deterministic seed keeps failures
        // reproducible.
        let mut rng = SplitMix64::new(0x5eed_f0c5);
        for _ in 0..20_000 {
            let x = f64::from_bits(rng.next_u64());
            for p in [0, 2, 3, 4, 9] {
                check(x, p);
            }
        }
    }

    #[test]
    fn matches_std_on_model_scale_values() {
        // The magnitudes the model actually prints: Gops/s and GB/s
        // values spanning [1e-6, 1e6), where rounding boundaries are
        // densest relative to the printed precision.
        let mut rng = SplitMix64::new(0x600d_cafe);
        for _ in 0..20_000 {
            let mag = rng.range_f64(-6.0, 6.0);
            let x = rng.range_f64(-1.0, 1.0) * 10f64.powf(mag);
            for p in [2, 3, 4] {
                check(x, p);
            }
        }
    }

    #[test]
    fn padding_matches_std() {
        let mut rng = SplitMix64::new(0x0dec_fa07);
        for _ in 0..5_000 {
            let x = f64::from_bits(rng.next_u64() >> 2); // bias to finite
            let mut left = String::new();
            push_fixed_left(&mut left, x, 4, 8);
            assert_eq!(left, format!("{x:<8.4}"), "left x={x:?}");
            let mut right = String::new();
            push_fixed_right(&mut right, x, 4, 10);
            assert_eq!(right, format!("{x:>10.4}"), "right x={x:?}");
        }
    }
}
