//! A tiny fixed-capacity small-vector for the evaluation hot path.
//!
//! Mobile SoCs in the paper have 2–5 IP blocks, so per-IP collections
//! ([`crate::workload::Workload`] assignments, [`crate::model::Evaluation`]
//! breakdowns) almost never need the heap. `InlineVec` stores up to `N`
//! elements inline and spills to a `Vec` only beyond that, which makes
//! cloning and building these collections allocation-free in the steady
//! state — the property the allocation-budget trajectory rungs pin.
//!
//! This type is deliberately `pub(crate)`: it is a storage detail, not
//! part of the API surface. Public accessors keep returning `&[T]`.

use core::fmt;

/// A vector of up to `N` inline elements, spilling to the heap past `N`.
///
/// `T: Copy + Default` keeps construction trivial (`[T::default(); N]`)
/// and clone a bitwise copy in the inline case.
#[derive(Clone)]
pub(crate) enum InlineVec<T: Copy + Default, const N: usize> {
    /// Up to `N` elements stored inline; only `buf[..len]` is meaningful.
    Inline {
        /// Inline storage; slots past `len` hold `T::default()` filler.
        buf: [T; N],
        /// Number of live elements.
        len: usize,
    },
    /// Spilled storage for more than `N` elements.
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub(crate) fn new() -> Self {
        InlineVec::Inline {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Copies a slice in; allocates only when `items.len() > N`.
    pub(crate) fn from_slice(items: &[T]) -> Self {
        if items.len() <= N {
            let mut buf = [T::default(); N];
            buf[..items.len()].copy_from_slice(items);
            InlineVec::Inline {
                buf,
                len: items.len(),
            }
        } else {
            InlineVec::Heap(items.to_vec())
        }
    }

    /// Appends an element, spilling to the heap on overflow.
    pub(crate) fn push(&mut self, item: T) {
        match self {
            InlineVec::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = item;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N + 1);
                    v.extend_from_slice(&buf[..*len]);
                    v.push(item);
                    *self = InlineVec::Heap(v);
                }
            }
            InlineVec::Heap(v) => v.push(item),
        }
    }

    /// Number of live elements.
    pub(crate) fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len,
            InlineVec::Heap(v) => v.len(),
        }
    }

    /// The live elements as a slice.
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { buf, len } => &buf[..*len],
            InlineVec::Heap(v) => v,
        }
    }

    /// The live elements as a mutable slice.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            InlineVec::Inline { buf, len } => &mut buf[..*len],
            InlineVec::Heap(v) => v,
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

// Manual impls: the derives would compare/print the `buf` filler past
// `len`, which is not part of the value.
impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_stays_inline() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Inline { .. }));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn push_past_capacity_spills_and_preserves_order() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        for i in 0..9 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Heap(_)));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(v.len(), 9);
        // Clones of spilled vectors still compare by contents.
        assert_eq!(v.clone(), v);
    }

    #[test]
    fn from_slice_picks_representation_by_length() {
        let small = InlineVec::<u8, 4>::from_slice(&[1, 2]);
        assert!(matches!(small, InlineVec::Inline { .. }));
        let big = InlineVec::<u8, 4>::from_slice(&[1, 2, 3, 4, 5]);
        assert!(matches!(big, InlineVec::Heap(_)));
        assert_eq!(small.as_slice(), &[1, 2]);
        assert_eq!(big.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn equality_ignores_filler_and_representation() {
        let mut a = InlineVec::<u8, 4>::new();
        a.push(7);
        // Different lengths differ even though the filler matches.
        assert_ne!(a, InlineVec::from_slice(&[7, 0]));
        assert_eq!(a, InlineVec::from_slice(&[7]));
        // Inline vs spilled with the same contents compare equal slices.
        let spilled = InlineVec::<u8, 1>::from_slice(&[7, 8]);
        let inline = InlineVec::<u8, 4>::from_slice(&[7, 8]);
        assert_eq!(spilled.as_slice(), inline.as_slice());
    }

    #[test]
    fn debug_prints_only_live_elements() {
        let mut v: InlineVec<u8, 4> = InlineVec::new();
        v.push(3);
        v.push(5);
        assert_eq!(format!("{v:?}"), "[3, 5]");
    }
}
