//! Amdahl's Law (1967) and Gustafson's reevaluation (1988).
//!
//! Section VI of the paper places Gables in the tradition of adapting
//! Amdahl's Law to new architectures. These closed forms are used by the
//! analysis module to contrast serialized-work intuition with Gables'
//! concurrent-work model.

use crate::error::GablesError;

/// Amdahl's Law: the speedup of a computation when a fraction `f` of it is
/// sped up by a factor `s`:
///
/// ```text
/// speedup = 1 / ((1 - f) + f / s)
/// ```
///
/// # Errors
///
/// Returns [`GablesError::InvalidParameter`] if `f` is outside `[0, 1]` or
/// `s` is not finite and positive.
///
/// # Examples
///
/// ```
/// use gables_model::baselines::amdahl::amdahl_speedup;
///
/// // Accelerating 75% of the work by 5x yields only 2.5x overall.
/// let s = amdahl_speedup(0.75, 5.0)?;
/// assert!((s - 2.5).abs() < 1e-12);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn amdahl_speedup(f: f64, s: f64) -> Result<f64, GablesError> {
    validate_fraction(f)?;
    validate_speedup(s)?;
    Ok(1.0 / ((1.0 - f) + f / s))
}

/// The asymptotic limit of Amdahl's Law as the accelerated part becomes
/// infinitely fast: `1 / (1 - f)`.
///
/// # Errors
///
/// Returns [`GablesError::InvalidParameter`] if `f` is outside `[0, 1]`.
pub fn amdahl_limit(f: f64) -> Result<f64, GablesError> {
    validate_fraction(f)?;
    Ok(1.0 / (1.0 - f))
}

/// Gustafson's Law (scaled speedup): when the problem grows to fill `n`
/// processors with serial fraction `alpha` (measured on the parallel
/// system), speedup is `n - alpha · (n - 1)`.
///
/// # Errors
///
/// Returns [`GablesError::InvalidParameter`] if `alpha` is outside `[0, 1]`
/// or `n` is not finite and >= 1.
///
/// # Examples
///
/// ```
/// use gables_model::baselines::amdahl::gustafson_speedup;
///
/// let s = gustafson_speedup(0.1, 100.0)?;
/// assert!((s - 90.1).abs() < 1e-9);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn gustafson_speedup(alpha: f64, n: f64) -> Result<f64, GablesError> {
    if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
        return Err(GablesError::invalid_parameter(
            "serial fraction",
            alpha,
            "must be finite and within [0, 1]",
        ));
    }
    if !n.is_finite() || n < 1.0 {
        return Err(GablesError::invalid_parameter(
            "processor count",
            n,
            "must be finite and >= 1",
        ));
    }
    Ok(n - alpha * (n - 1.0))
}

fn validate_fraction(f: f64) -> Result<(), GablesError> {
    if !f.is_finite() || !(0.0..=1.0).contains(&f) {
        return Err(GablesError::invalid_parameter(
            "accelerated fraction",
            f,
            "must be finite and within [0, 1]",
        ));
    }
    Ok(())
}

fn validate_speedup(s: f64) -> Result<(), GablesError> {
    if !s.is_finite() || s <= 0.0 {
        return Err(GablesError::invalid_parameter(
            "speedup factor",
            s,
            "must be finite and > 0",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_classic_values() {
        assert!((amdahl_speedup(0.5, 2.0).unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert!((amdahl_speedup(0.75, 5.0).unwrap() - 2.5).abs() < 1e-12);
        // Nothing accelerated: no speedup, regardless of s.
        assert_eq!(amdahl_speedup(0.0, 1000.0).unwrap(), 1.0);
        // Everything accelerated: full s.
        assert!((amdahl_speedup(1.0, 7.0).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_approaches_its_limit() {
        let f = 0.9;
        let limit = amdahl_limit(f).unwrap();
        assert!((limit - 10.0).abs() < 1e-12);
        let almost = amdahl_speedup(f, 1.0e12).unwrap();
        assert!((almost - limit).abs() < 1e-6);
        // And the limit always upper-bounds finite speedups.
        for s in [1.0, 2.0, 10.0, 100.0] {
            assert!(amdahl_speedup(f, s).unwrap() <= limit + 1e-12);
        }
    }

    #[test]
    fn slowdown_factor_below_one_slows_down() {
        let s = amdahl_speedup(0.5, 0.5).unwrap();
        assert!(s < 1.0);
    }

    #[test]
    fn gustafson_values() {
        assert_eq!(gustafson_speedup(0.0, 64.0).unwrap(), 64.0);
        assert_eq!(gustafson_speedup(1.0, 64.0).unwrap(), 1.0);
        assert!((gustafson_speedup(0.1, 100.0).unwrap() - 90.1).abs() < 1e-9);
    }

    #[test]
    fn gustafson_exceeds_amdahl_for_scaled_problems() {
        // The famous contrast: with 10% serial work, Amdahl caps at 10x
        // while Gustafson keeps climbing with n.
        let amdahl_cap = amdahl_limit(0.9).unwrap();
        let gustafson = gustafson_speedup(0.1, 1024.0).unwrap();
        assert!(gustafson > amdahl_cap);
    }

    #[test]
    fn validation() {
        assert!(amdahl_speedup(-0.1, 2.0).is_err());
        assert!(amdahl_speedup(1.1, 2.0).is_err());
        assert!(amdahl_speedup(0.5, 0.0).is_err());
        assert!(amdahl_speedup(0.5, f64::NAN).is_err());
        assert!(amdahl_limit(2.0).is_err());
        assert!(gustafson_speedup(-0.1, 4.0).is_err());
        assert!(gustafson_speedup(0.5, 0.5).is_err());
    }
}
