//! Baseline and prior models that Gables builds on or compares against
//! (Section VI of the paper).
//!
//! * [`roofline`] — the classic single-chip Roofline model of Williams,
//!   Waterman, and Patterson (Figure 1).
//! * [`amdahl`] — Amdahl's Law and Gustafson's reevaluation.
//! * [`multiamdahl`] — MultiAmdahl: serialized work over N IPs with a
//!   resource-allocation optimizer, the model most closely related to
//!   Gables.
//! * [`bottleneck`] — the series/parallel throughput combinators of
//!   bottleneck analysis (Lazowska et al.), of which both Roofline and
//!   Gables are special cases.

pub mod amdahl;
pub mod bottleneck;
pub mod iron_law;
pub mod multiamdahl;
pub mod roofline;
