//! MultiAmdahl (Keslassy, Weiser, Zidenberg; IEEE CAL 2012).
//!
//! Section VI identifies MultiAmdahl as the model most closely related to
//! Gables: it also targets an N-IP SoC, but divides work *sequentially*
//! among IPs, models each IP's performance as a function of the resources
//! (e.g. area) allotted to it, and computes the optimal resource
//! allocation. Crucially it models no bandwidth bounds — the key
//! difference Gables adds.
//!
//! This module implements the serialized execution-time objective
//!
//! ```text
//! T(a) = Σ fi / pi(ai)     subject to    Σ ai = A_total
//! ```
//!
//! and an optimizer based on Lagrangian water-filling: for concave
//! performance functions `pi`, the marginal time reduction
//! `gi(a) = fi · pi'(a) / pi(a)²` is decreasing, so for each multiplier λ
//! the per-task allocation solving `gi(ai) = λ` is unique and `Σ ai(λ)` is
//! decreasing in λ; bisection on λ meets the budget.

use core::fmt;

use crate::error::GablesError;

/// An IP's performance as a function of the resources allocated to it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PerfFn {
    /// `p(a) = k · a` — performance linear in resources (e.g. lane count).
    Linear {
        /// Performance per unit resource.
        k: f64,
    },
    /// `p(a) = k · √a` — Pollack's rule, the canonical MultiAmdahl choice
    /// for general-purpose cores.
    Pollack {
        /// Performance at one unit of resource.
        k: f64,
    },
    /// `p(a) = k · a^e` with `0 < e <= 1` — generalized diminishing
    /// returns.
    Power {
        /// Performance at one unit of resource.
        k: f64,
        /// The (concavity-preserving) exponent.
        e: f64,
    },
}

impl PerfFn {
    /// Performance delivered with `a` units of resource.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `a` is negative.
    pub fn perf(&self, a: f64) -> f64 {
        debug_assert!(a >= 0.0, "resource allocation must be non-negative");
        match *self {
            PerfFn::Linear { k } => k * a,
            PerfFn::Pollack { k } => k * a.sqrt(),
            PerfFn::Power { k, e } => k * a.powf(e),
        }
    }

    /// First derivative `p'(a)`.
    fn derivative(&self, a: f64) -> f64 {
        match *self {
            PerfFn::Linear { k } => k,
            PerfFn::Pollack { k } => 0.5 * k / a.sqrt(),
            PerfFn::Power { k, e } => k * e * a.powf(e - 1.0),
        }
    }

    fn validate(&self) -> Result<(), GablesError> {
        let (k, e) = match *self {
            PerfFn::Linear { k } => (k, 1.0),
            PerfFn::Pollack { k } => (k, 0.5),
            PerfFn::Power { k, e } => (k, e),
        };
        if !k.is_finite() || k <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "performance coefficient",
                k,
                "must be finite and > 0",
            ));
        }
        if !e.is_finite() || e <= 0.0 || e > 1.0 {
            return Err(GablesError::invalid_parameter(
                "performance exponent",
                e,
                "must be within (0, 1]",
            ));
        }
        Ok(())
    }
}

impl fmt::Display for PerfFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PerfFn::Linear { k } => write!(f, "{k}·a"),
            PerfFn::Pollack { k } => write!(f, "{k}·sqrt(a)"),
            PerfFn::Power { k, e } => write!(f, "{k}·a^{e}"),
        }
    }
}

/// One serialized task: a fraction of total work plus the performance
/// function of the IP that runs it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    /// Fraction of total work, `fi` (non-negative; fractions sum to 1).
    pub work_fraction: f64,
    /// The IP's performance as a function of allocated resources.
    pub perf: PerfFn,
}

/// A MultiAmdahl problem instance: N serialized tasks sharing a resource
/// budget.
///
/// # Examples
///
/// ```
/// use gables_model::baselines::multiamdahl::{MultiAmdahl, PerfFn, Task};
///
/// let problem = MultiAmdahl::new(vec![
///     Task { work_fraction: 0.5, perf: PerfFn::Pollack { k: 1.0 } },
///     Task { work_fraction: 0.5, perf: PerfFn::Pollack { k: 4.0 } },
/// ])?;
/// let alloc = problem.optimize(1.0)?;
/// // The slower IP earns more area.
/// assert!(alloc.allocations[0] > alloc.allocations[1]);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiAmdahl {
    tasks: Vec<Task>,
}

/// The result of optimizing a [`MultiAmdahl`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-task resource allocations, summing to the budget.
    pub allocations: Vec<f64>,
    /// The serialized execution time at this allocation.
    pub execution_time: f64,
}

impl MultiAmdahl {
    /// Creates a problem instance.
    ///
    /// # Errors
    ///
    /// * [`GablesError::NoIps`] for an empty task list.
    /// * [`GablesError::WorkFractionSum`] if fractions do not sum to 1.
    /// * [`GablesError::InvalidParameter`] for invalid fractions or
    ///   performance functions.
    pub fn new(tasks: Vec<Task>) -> Result<Self, GablesError> {
        if tasks.is_empty() {
            return Err(GablesError::NoIps);
        }
        let mut sum = 0.0;
        for t in &tasks {
            if !t.work_fraction.is_finite() || t.work_fraction < 0.0 {
                return Err(GablesError::invalid_parameter(
                    "work fraction",
                    t.work_fraction,
                    "must be finite and >= 0",
                ));
            }
            t.perf.validate()?;
            sum += t.work_fraction;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(GablesError::WorkFractionSum { sum });
        }
        Ok(Self { tasks })
    }

    /// The tasks in order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Serialized execution time `Σ fi / pi(ai)` for a given allocation.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::IpCountMismatch`] if `allocations` has the
    /// wrong length, or [`GablesError::InvalidParameter`] if a task with
    /// work receives a non-positive allocation.
    pub fn execution_time(&self, allocations: &[f64]) -> Result<f64, GablesError> {
        if allocations.len() != self.tasks.len() {
            return Err(GablesError::IpCountMismatch {
                soc_ips: self.tasks.len(),
                workload_ips: allocations.len(),
            });
        }
        let mut total = 0.0;
        for (t, &a) in self.tasks.iter().zip(allocations) {
            if t.work_fraction == 0.0 {
                continue;
            }
            if !a.is_finite() || a <= 0.0 {
                return Err(GablesError::invalid_parameter(
                    "resource allocation",
                    a,
                    "must be finite and > 0 for a task with work",
                ));
            }
            total += t.work_fraction / t.perf.perf(a);
        }
        Ok(total)
    }

    /// Finds the resource allocation minimizing serialized execution time
    /// subject to `Σ ai = budget`, by Lagrangian water-filling.
    ///
    /// Tasks with zero work receive zero resources.
    ///
    /// # Errors
    ///
    /// * [`GablesError::InvalidParameter`] for a non-positive budget.
    /// * [`GablesError::NoConvergence`] if bisection fails (does not occur
    ///   for the concave [`PerfFn`] family, but the error is kept total).
    pub fn optimize(&self, budget: f64) -> Result<Allocation, GablesError> {
        if !budget.is_finite() || budget <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "resource budget",
                budget,
                "must be finite and > 0",
            ));
        }
        let active: Vec<usize> = (0..self.tasks.len())
            .filter(|&i| self.tasks[i].work_fraction > 0.0)
            .collect();
        if active.is_empty() {
            return Err(GablesError::NoConvergence {
                what: "allocation with no active tasks",
            });
        }
        if active.len() == 1 {
            let mut allocations = vec![0.0; self.tasks.len()];
            allocations[active[0]] = budget;
            let execution_time = self.execution_time_sparse(&allocations);
            return Ok(Allocation {
                allocations,
                execution_time,
            });
        }

        // Marginal time reduction gi(a) = fi·pi'(a)/pi(a)^2, strictly
        // decreasing in a for the concave PerfFn family.
        let marginal = |i: usize, a: f64| -> f64 {
            let t = &self.tasks[i];
            t.work_fraction * t.perf.derivative(a) / t.perf.perf(a).powi(2)
        };
        // Per-λ allocation: solve gi(a) = λ by bisection on a ∈ (lo, budget].
        let a_lo = budget * 1e-12;
        let solve_a = |i: usize, lambda: f64| -> f64 {
            if marginal(i, budget) >= lambda {
                return budget; // even the full budget leaves marginal above λ
            }
            if marginal(i, a_lo) <= lambda {
                return a_lo;
            }
            let (mut lo, mut hi) = (a_lo, budget);
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if marginal(i, mid) > lambda {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        // Σ ai(λ) is decreasing in λ; bracket then bisect λ.
        let sum_for = |lambda: f64| -> f64 { active.iter().map(|&i| solve_a(i, lambda)).sum() };
        let (mut lam_lo, mut lam_hi) = (1e-300_f64, 1e300_f64);
        if sum_for(lam_lo) < budget || sum_for(lam_hi) > budget {
            return Err(GablesError::NoConvergence {
                what: "lagrange multiplier bracket",
            });
        }
        for _ in 0..500 {
            let mid = (lam_lo * lam_hi).sqrt(); // geometric: λ spans decades
            if sum_for(mid) > budget {
                lam_lo = mid;
            } else {
                lam_hi = mid;
            }
        }
        let lambda = (lam_lo * lam_hi).sqrt();
        let mut allocations = vec![0.0; self.tasks.len()];
        let mut sum = 0.0;
        for &i in &active {
            allocations[i] = solve_a(i, lambda);
            sum += allocations[i];
        }
        // Normalize residual bisection error exactly onto the budget.
        for &i in &active {
            allocations[i] *= budget / sum;
        }
        let execution_time = self.execution_time_sparse(&allocations);
        Ok(Allocation {
            allocations,
            execution_time,
        })
    }

    fn execution_time_sparse(&self, allocations: &[f64]) -> f64 {
        self.tasks
            .iter()
            .zip(allocations)
            .filter(|(t, _)| t.work_fraction > 0.0)
            .map(|(t, &a)| t.work_fraction / t.perf.perf(a))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pollack_closed_form() {
        // For p = k√a the Lagrange condition gives ai ∝ (fi/ki)^(2/3).
        let tasks = vec![
            Task {
                work_fraction: 0.6,
                perf: PerfFn::Pollack { k: 1.0 },
            },
            Task {
                work_fraction: 0.4,
                perf: PerfFn::Pollack { k: 3.0 },
            },
        ];
        let problem = MultiAmdahl::new(tasks).unwrap();
        let alloc = problem.optimize(2.0).unwrap();
        let w0 = (0.6_f64 / 1.0).powf(2.0 / 3.0);
        let w1 = (0.4_f64 / 3.0).powf(2.0 / 3.0);
        let expect0 = 2.0 * w0 / (w0 + w1);
        let expect1 = 2.0 * w1 / (w0 + w1);
        assert!((alloc.allocations[0] - expect0).abs() < 1e-6);
        assert!((alloc.allocations[1] - expect1).abs() < 1e-6);
        assert!((alloc.allocations.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_closed_form() {
        // For p = k·a the condition gives ai ∝ sqrt(fi/ki).
        let tasks = vec![
            Task {
                work_fraction: 0.5,
                perf: PerfFn::Linear { k: 1.0 },
            },
            Task {
                work_fraction: 0.5,
                perf: PerfFn::Linear { k: 4.0 },
            },
        ];
        let problem = MultiAmdahl::new(tasks).unwrap();
        let alloc = problem.optimize(1.0).unwrap();
        let w0 = (0.5_f64 / 1.0).sqrt();
        let w1 = (0.5_f64 / 4.0).sqrt();
        assert!((alloc.allocations[0] - w0 / (w0 + w1)).abs() < 1e-6);
        assert!((alloc.allocations[1] - w1 / (w0 + w1)).abs() < 1e-6);
    }

    #[test]
    fn optimum_beats_perturbations() {
        let problem = MultiAmdahl::new(vec![
            Task {
                work_fraction: 0.3,
                perf: PerfFn::Pollack { k: 2.0 },
            },
            Task {
                work_fraction: 0.5,
                perf: PerfFn::Power { k: 1.0, e: 0.8 },
            },
            Task {
                work_fraction: 0.2,
                perf: PerfFn::Linear { k: 0.5 },
            },
        ])
        .unwrap();
        let opt = problem.optimize(3.0).unwrap();
        for (i, j) in [(0, 1), (1, 2), (0, 2)] {
            for eps in [0.01, 0.1] {
                let mut perturbed = opt.allocations.clone();
                if perturbed[i] > eps {
                    perturbed[i] -= eps;
                    perturbed[j] += eps;
                    let t = problem.execution_time(&perturbed).unwrap();
                    assert!(
                        t >= opt.execution_time - 1e-9,
                        "perturbation improved the optimum"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_work_tasks_get_nothing() {
        let problem = MultiAmdahl::new(vec![
            Task {
                work_fraction: 1.0,
                perf: PerfFn::Pollack { k: 1.0 },
            },
            Task {
                work_fraction: 0.0,
                perf: PerfFn::Pollack { k: 100.0 },
            },
        ])
        .unwrap();
        let alloc = problem.optimize(4.0).unwrap();
        assert_eq!(alloc.allocations[1], 0.0);
        assert!((alloc.allocations[0] - 4.0).abs() < 1e-12);
        assert!((alloc.execution_time - 1.0 / 2.0).abs() < 1e-12); // 1/(1·√4)
    }

    #[test]
    fn execution_time_validates() {
        let problem = MultiAmdahl::new(vec![Task {
            work_fraction: 1.0,
            perf: PerfFn::Linear { k: 1.0 },
        }])
        .unwrap();
        assert!(problem.execution_time(&[1.0, 2.0]).is_err());
        assert!(problem.execution_time(&[0.0]).is_err());
        assert!((problem.execution_time(&[2.0]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constructor_validates() {
        assert!(MultiAmdahl::new(vec![]).is_err());
        assert!(MultiAmdahl::new(vec![Task {
            work_fraction: 0.5,
            perf: PerfFn::Linear { k: 1.0 }
        }])
        .is_err()); // sum != 1
        assert!(MultiAmdahl::new(vec![Task {
            work_fraction: 1.0,
            perf: PerfFn::Linear { k: 0.0 }
        }])
        .is_err());
        assert!(MultiAmdahl::new(vec![Task {
            work_fraction: 1.0,
            perf: PerfFn::Power { k: 1.0, e: 1.5 }
        }])
        .is_err());
        assert!(MultiAmdahl::new(vec![Task {
            work_fraction: -0.5,
            perf: PerfFn::Linear { k: 1.0 }
        }])
        .is_err());
    }

    #[test]
    fn optimize_validates_budget() {
        let problem = MultiAmdahl::new(vec![Task {
            work_fraction: 1.0,
            perf: PerfFn::Linear { k: 1.0 },
        }])
        .unwrap();
        assert!(problem.optimize(0.0).is_err());
        assert!(problem.optimize(-1.0).is_err());
        assert!(problem.optimize(f64::NAN).is_err());
    }

    #[test]
    fn perf_fn_display() {
        assert_eq!(PerfFn::Linear { k: 2.0 }.to_string(), "2·a");
        assert_eq!(PerfFn::Pollack { k: 2.0 }.to_string(), "2·sqrt(a)");
        assert_eq!(PerfFn::Power { k: 2.0, e: 0.7 }.to_string(), "2·a^0.7");
    }

    #[test]
    fn gables_serialized_extension_generalizes_multiamdahl() {
        // With bandwidths set so high they never bind, the Gables
        // serialized extension's time equals the MultiAmdahl objective for
        // fixed allocations (perf = Ai·Ppeak).
        use crate::soc::SocSpec;
        use crate::units::{BytesPerSec, OpsPerSec};
        use crate::workload::Workload;

        let soc = SocSpec::builder()
            .ppeak(OpsPerSec::new(10.0))
            .bpeak(BytesPerSec::new(1.0e30))
            .cpu("CPU", BytesPerSec::new(1.0e30))
            .accelerator("ACC", 4.0, BytesPerSec::new(1.0e30))
            .unwrap()
            .build()
            .unwrap();
        let w = Workload::two_ip(0.5, 1.0, 1.0).unwrap();
        let gables = crate::ext::serialized::evaluate_serialized(&soc, &w).unwrap();
        // MultiAmdahl objective: 0.5/10 + 0.5/40.
        let expected = 0.5 / 10.0 + 0.5 / 40.0;
        assert!((gables.total_time().value() - expected).abs() < 1e-15);
    }
}
