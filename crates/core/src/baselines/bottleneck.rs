//! Bottleneck-analysis throughput combinators (Lazowska et al., 1984).
//!
//! Section VI notes that Roofline and Gables are both special cases of
//! bottleneck analysis, which computes a system's maximum throughput by
//! recursively combining component throughputs with two rules:
//!
//! 1. components in *parallel*: throughputs **sum**;
//! 2. components in *series*: throughputs take the **minimum**.
//!
//! [`ThroughputExpr`] is that recursion reified as a tree, so prior models
//! can be written down and checked against their closed forms. For
//! example, a classic roofline is `Series[Leaf(Ppeak), Leaf(Bpeak · I)]`.

use core::fmt;

/// A bottleneck-analysis expression tree over component throughputs (in
/// any consistent unit, e.g. ops/sec).
///
/// # Examples
///
/// ```
/// use gables_model::baselines::bottleneck::ThroughputExpr;
///
/// // Two 5-unit pipes in parallel feeding a 7-unit stage in series.
/// let expr = ThroughputExpr::series(vec![
///     ThroughputExpr::parallel(vec![
///         ThroughputExpr::leaf("pipe A", 5.0),
///         ThroughputExpr::leaf("pipe B", 5.0),
///     ]),
///     ThroughputExpr::leaf("stage", 7.0),
/// ]);
/// assert_eq!(expr.throughput(), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ThroughputExpr {
    /// A primitive component with a fixed throughput.
    Leaf {
        /// Component label, used for bottleneck reporting.
        label: String,
        /// The component's standalone throughput.
        throughput: f64,
    },
    /// Components operating concurrently: throughputs sum.
    Parallel(Vec<ThroughputExpr>),
    /// Components that all data must pass through: throughputs take the
    /// minimum.
    Series(Vec<ThroughputExpr>),
}

impl ThroughputExpr {
    /// Creates a leaf component.
    pub fn leaf(label: impl Into<String>, throughput: f64) -> Self {
        ThroughputExpr::Leaf {
            label: label.into(),
            throughput,
        }
    }

    /// Creates a parallel composition.
    pub fn parallel(children: Vec<ThroughputExpr>) -> Self {
        ThroughputExpr::Parallel(children)
    }

    /// Creates a series composition.
    pub fn series(children: Vec<ThroughputExpr>) -> Self {
        ThroughputExpr::Series(children)
    }

    /// Evaluates the tree to the system's maximum throughput.
    ///
    /// Empty `Parallel` nodes contribute 0 (nothing flows); empty `Series`
    /// nodes contribute +∞ (no restriction).
    pub fn throughput(&self) -> f64 {
        match self {
            ThroughputExpr::Leaf { throughput, .. } => *throughput,
            ThroughputExpr::Parallel(children) => {
                children.iter().map(ThroughputExpr::throughput).sum()
            }
            ThroughputExpr::Series(children) => children
                .iter()
                .map(ThroughputExpr::throughput)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// The label of the leaf that binds the series minimum along the
    /// critical path, if any. In parallel sections every branch
    /// contributes, so the search descends the slowest series child only.
    pub fn bottleneck_label(&self) -> Option<&str> {
        match self {
            ThroughputExpr::Leaf { label, .. } => Some(label),
            ThroughputExpr::Parallel(children) => {
                // All branches contribute; report the weakest contributor
                // as the most profitable upgrade target.
                children
                    .iter()
                    .min_by(|a, b| a.throughput().total_cmp(&b.throughput()))
                    .and_then(ThroughputExpr::bottleneck_label)
            }
            ThroughputExpr::Series(children) => children
                .iter()
                .min_by(|a, b| a.throughput().total_cmp(&b.throughput()))
                .and_then(ThroughputExpr::bottleneck_label),
        }
    }
}

impl fmt::Display for ThroughputExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThroughputExpr::Leaf { label, throughput } => write!(f, "{label}={throughput}"),
            ThroughputExpr::Parallel(children) => {
                write!(f, "par(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            ThroughputExpr::Series(children) => {
                write!(f, "ser(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " , ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Expresses the classic Roofline model as a bottleneck tree:
/// compute in series with the memory pipe at intensity `i`.
pub fn roofline_as_bottleneck(ppeak: f64, bpeak: f64, i: f64) -> ThroughputExpr {
    ThroughputExpr::series(vec![
        ThroughputExpr::leaf("compute", ppeak),
        ThroughputExpr::leaf("memory", bpeak * i),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_takes_minimum() {
        let e = ThroughputExpr::series(vec![
            ThroughputExpr::leaf("a", 3.0),
            ThroughputExpr::leaf("b", 7.0),
        ]);
        assert_eq!(e.throughput(), 3.0);
        assert_eq!(e.bottleneck_label(), Some("a"));
    }

    #[test]
    fn parallel_sums() {
        let e = ThroughputExpr::parallel(vec![
            ThroughputExpr::leaf("a", 3.0),
            ThroughputExpr::leaf("b", 7.0),
        ]);
        assert_eq!(e.throughput(), 10.0);
    }

    #[test]
    fn empty_nodes_are_identities() {
        assert_eq!(ThroughputExpr::parallel(vec![]).throughput(), 0.0);
        assert_eq!(ThroughputExpr::series(vec![]).throughput(), f64::INFINITY);
    }

    #[test]
    fn nested_composition() {
        let e = ThroughputExpr::series(vec![
            ThroughputExpr::parallel(vec![
                ThroughputExpr::leaf("pipe A", 5.0),
                ThroughputExpr::leaf("pipe B", 5.0),
            ]),
            ThroughputExpr::leaf("stage", 7.0),
        ]);
        assert_eq!(e.throughput(), 7.0);
        assert_eq!(e.bottleneck_label(), Some("stage"));
    }

    #[test]
    fn roofline_special_case_matches_closed_form() {
        use crate::baselines::roofline::Roofline;
        use crate::units::{BytesPerSec, OpsPerByte, OpsPerSec};

        let r = Roofline::new(OpsPerSec::new(7.5), BytesPerSec::new(15.1)).unwrap();
        for i in [0.01, 0.1, 0.5, 1.0, 8.0, 100.0] {
            let tree = roofline_as_bottleneck(7.5, 15.1, i);
            let closed = r.attainable(OpsPerByte::new(i)).value();
            assert!((tree.throughput() - closed).abs() < 1e-12);
        }
    }

    #[test]
    fn display_renders_structure() {
        let e = ThroughputExpr::series(vec![
            ThroughputExpr::parallel(vec![
                ThroughputExpr::leaf("a", 1.0),
                ThroughputExpr::leaf("b", 2.0),
            ]),
            ThroughputExpr::leaf("c", 3.0),
        ]);
        let s = e.to_string();
        assert!(s.contains("par(a=1 + b=2)"));
        assert!(s.contains("ser("));
    }
}
