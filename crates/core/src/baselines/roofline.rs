//! The classic Roofline model (Williams, Waterman, Patterson; CACM 2009).
//!
//! Models a single chip with a peak computation performance `Ppeak` and a
//! peak off-chip bandwidth `Bpeak`; software is characterized by one
//! operational intensity `I`. Attainable performance is
//! `min(Ppeak, Bpeak · I)` — Figure 1 of the Gables paper. Optional
//! *ceilings* model lesser bounds (e.g. no SIMD, no NUMA-aware placement).

use core::fmt;

use crate::error::GablesError;
use crate::units::{BytesPerSec, OpsPerByte, OpsPerSec};

/// A lesser bound below the roof: either a compute ceiling (horizontal) or
/// a bandwidth ceiling (slanted).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Ceiling {
    /// A reduced compute bound (e.g. "without SIMD").
    Compute {
        /// Ceiling label for plots.
        label: String,
        /// The reduced peak.
        peak: OpsPerSec,
    },
    /// A reduced bandwidth bound (e.g. "without prefetching").
    Bandwidth {
        /// Ceiling label for plots.
        label: String,
        /// The reduced bandwidth.
        bandwidth: BytesPerSec,
    },
}

/// The classic Roofline model of a single (multicore) chip.
///
/// # Examples
///
/// ```
/// use gables_model::baselines::roofline::Roofline;
/// use gables_model::units::{BytesPerSec, OpsPerByte, OpsPerSec};
///
/// // The paper's empirically-derived Snapdragon 835 CPU roofline (Fig 7a).
/// let cpu = Roofline::new(OpsPerSec::from_gops(7.5), BytesPerSec::from_gbps(15.1))?;
/// let at_low = cpu.attainable(OpsPerByte::new(0.125));
/// assert!((at_low.to_gops() - 15.1 * 0.125).abs() < 1e-9);
/// let at_high = cpu.attainable(OpsPerByte::new(100.0));
/// assert_eq!(at_high.to_gops(), 7.5);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Roofline {
    peak: OpsPerSec,
    bandwidth: BytesPerSec,
    ceilings: Vec<Ceiling>,
}

impl Roofline {
    /// Creates a roofline from peak performance and peak bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if either peak is not
    /// finite and positive.
    pub fn new(peak: OpsPerSec, bandwidth: BytesPerSec) -> Result<Self, GablesError> {
        if !peak.value().is_finite() || peak.value() <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "peak performance",
                peak.value(),
                "must be finite and > 0",
            ));
        }
        if !bandwidth.value().is_finite() || bandwidth.value() <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "peak bandwidth",
                bandwidth.value(),
                "must be finite and > 0",
            ));
        }
        Ok(Self {
            peak,
            bandwidth,
            ceilings: Vec::new(),
        })
    }

    /// Adds a ceiling (a lesser bound drawn under the roof).
    pub fn with_ceiling(mut self, ceiling: Ceiling) -> Self {
        self.ceilings.push(ceiling);
        self
    }

    /// Peak computation performance (the flat roof).
    pub fn peak(&self) -> OpsPerSec {
        self.peak
    }

    /// Peak bandwidth (the slanted roof).
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }

    /// The ceilings, in insertion order.
    pub fn ceilings(&self) -> &[Ceiling] {
        &self.ceilings
    }

    /// Maximum attainable performance at operational intensity `i`:
    /// `min(Ppeak, Bpeak · I)`.
    pub fn attainable(&self, i: OpsPerByte) -> OpsPerSec {
        let bw_bound = (self.bandwidth * i).value();
        OpsPerSec::new(bw_bound.min(self.peak.value()))
    }

    /// Attainable performance under a specific ceiling instead of the roof.
    pub fn attainable_under(&self, ceiling: &Ceiling, i: OpsPerByte) -> OpsPerSec {
        match ceiling {
            Ceiling::Compute { peak, .. } => {
                OpsPerSec::new((self.bandwidth * i).value().min(peak.value()))
            }
            Ceiling::Bandwidth { bandwidth, .. } => {
                OpsPerSec::new((*bandwidth * i).value().min(self.peak.value()))
            }
        }
    }

    /// The ridge point: the operational intensity `Ppeak / Bpeak` at which
    /// the slanted and flat roofs meet. Software to the left is
    /// bandwidth-bound; to the right, compute-bound.
    pub fn ridge_point(&self) -> OpsPerByte {
        self.peak / self.bandwidth
    }

    /// Whether software at intensity `i` is bandwidth-bound (left of the
    /// ridge point).
    pub fn is_bandwidth_bound(&self, i: OpsPerByte) -> bool {
        i.value() < self.ridge_point().value()
    }
}

impl fmt::Display for Roofline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Roofline(peak = {:.3} Gops/s, bw = {:.3} GB/s, ridge = {:.3} ops/byte)",
            self.peak.to_gops(),
            self.bandwidth.to_gbps(),
            self.ridge_point().value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Roofline {
        Roofline::new(OpsPerSec::from_gops(7.5), BytesPerSec::from_gbps(15.1)).unwrap()
    }

    #[test]
    fn attainable_is_min_of_two_bounds() {
        let r = cpu();
        // Far left: bandwidth-bound.
        let low = r.attainable(OpsPerByte::new(0.01));
        assert!((low.to_gops() - 0.151).abs() < 1e-12);
        // Far right: compute-bound.
        let high = r.attainable(OpsPerByte::new(1000.0));
        assert_eq!(high.to_gops(), 7.5);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let r = cpu();
        let ridge = r.ridge_point().value();
        assert!((ridge - 7.5 / 15.1).abs() < 1e-12);
        assert!(r.is_bandwidth_bound(OpsPerByte::new(ridge * 0.9)));
        assert!(!r.is_bandwidth_bound(OpsPerByte::new(ridge * 1.1)));
        // At the ridge the two bounds coincide.
        let at = r.attainable(OpsPerByte::new(ridge));
        assert!((at.to_gops() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn attainable_is_monotone_in_intensity() {
        let r = cpu();
        let mut last = 0.0;
        for exp in -8..8 {
            let i = OpsPerByte::new(2.0_f64.powi(exp));
            let p = r.attainable(i).value();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn ceilings_bound_below_the_roof() {
        let r = cpu().with_ceiling(Ceiling::Compute {
            label: "no SIMD".into(),
            peak: OpsPerSec::from_gops(2.0),
        });
        let i = OpsPerByte::new(100.0);
        let under = r.attainable_under(&r.ceilings()[0].clone(), i);
        assert_eq!(under.to_gops(), 2.0);
        assert!(under.value() <= r.attainable(i).value());

        let r2 = cpu().with_ceiling(Ceiling::Bandwidth {
            label: "no prefetch".into(),
            bandwidth: BytesPerSec::from_gbps(5.0),
        });
        let low = OpsPerByte::new(0.1);
        let under2 = r2.attainable_under(&r2.ceilings()[0].clone(), low);
        assert!((under2.to_gops() - 0.5).abs() < 1e-12);
        assert!(under2.value() <= r2.attainable(low).value());
    }

    #[test]
    fn validation() {
        assert!(Roofline::new(OpsPerSec::from_gops(0.0), BytesPerSec::from_gbps(1.0)).is_err());
        assert!(Roofline::new(OpsPerSec::from_gops(1.0), BytesPerSec::from_gbps(-1.0)).is_err());
    }

    #[test]
    fn display_mentions_ridge() {
        assert!(cpu().to_string().contains("ridge"));
    }
}
