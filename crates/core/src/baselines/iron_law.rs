//! The Iron Law of processor performance (Section VI).
//!
//! Execution time = (instructions / program) × (cycles / instruction) ×
//! (time / cycle). The paper cites it as the reminder "to focus on the
//! product of all three terms rather than a subset, e.g., clock
//! frequency only" — which this module's comparison helpers make
//! checkable.

use core::fmt;

use crate::error::GablesError;

/// One design point under the Iron Law.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IronLaw {
    /// Dynamic instruction count of the program.
    pub instructions: f64,
    /// Average cycles per instruction.
    pub cpi: f64,
    /// Clock frequency in Hz (time/cycle is its reciprocal).
    pub frequency_hz: f64,
}

impl IronLaw {
    /// Creates a validated design point.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if any term is not
    /// finite and positive.
    pub fn new(instructions: f64, cpi: f64, frequency_hz: f64) -> Result<Self, GablesError> {
        for (name, v) in [
            ("instruction count", instructions),
            ("CPI", cpi),
            ("frequency", frequency_hz),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(GablesError::invalid_parameter(
                    name,
                    v,
                    "must be finite and > 0",
                ));
            }
        }
        Ok(Self {
            instructions,
            cpi,
            frequency_hz,
        })
    }

    /// Execution time in seconds: `I × CPI / f`.
    pub fn execution_time(&self) -> f64 {
        self.instructions * self.cpi / self.frequency_hz
    }

    /// Instructions per second (MIPS × 10^6): `f / CPI`.
    pub fn instructions_per_sec(&self) -> f64 {
        self.frequency_hz / self.cpi
    }

    /// The speedup of `self` over `other` on their respective programs.
    pub fn speedup_over(&self, other: &IronLaw) -> f64 {
        other.execution_time() / self.execution_time()
    }
}

impl fmt::Display for IronLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} insts x {:.2} CPI / {:.3} GHz = {:.4e} s",
            self.instructions,
            self.cpi,
            self.frequency_hz / 1e9,
            self.execution_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_is_the_three_term_product() {
        let p = IronLaw::new(1.0e9, 2.0, 1.0e9).unwrap();
        assert!((p.execution_time() - 2.0).abs() < 1e-12);
        assert!((p.instructions_per_sec() - 0.5e9).abs() < 1e-3);
    }

    #[test]
    fn frequency_alone_is_not_performance() {
        // The paper's lesson: a 2x clock with 3x the CPI is a slowdown.
        let base = IronLaw::new(1.0e9, 1.0, 1.0e9).unwrap();
        let clocked = IronLaw::new(1.0e9, 3.0, 2.0e9).unwrap();
        assert!(clocked.speedup_over(&base) < 1.0);
    }

    #[test]
    fn better_isa_fewer_instructions_wins() {
        let cisc = IronLaw::new(0.7e9, 1.5, 1.0e9).unwrap();
        let risc = IronLaw::new(1.0e9, 1.0, 1.0e9).unwrap();
        assert!((cisc.speedup_over(&risc) - 1.0 / 1.05).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(IronLaw::new(0.0, 1.0, 1.0).is_err());
        assert!(IronLaw::new(1.0, -1.0, 1.0).is_err());
        assert!(IronLaw::new(1.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn display_shows_all_terms() {
        let p = IronLaw::new(1.0e9, 2.0, 1.9e9).unwrap();
        let s = p.to_string();
        assert!(s.contains("CPI"));
        assert!(s.contains("GHz"));
    }
}
