//! Design-space exploration helpers built on the base model.
//!
//! These capture the early-stage questions the paper poses — "which IPs
//! and roughly how big?", "is the memory system over-provisioned?" — as
//! reusable sweeps, balance solvers, and sensitivity analyses.

use crate::error::GablesError;
use crate::model::{evaluate, evaluate_with_bpeak, EvalScratch, Evaluation};
use crate::par::{self, Parallelism};
use crate::soc::SocSpec;
use crate::units::{BytesPerSec, OpsPerByte, OpsPerSec, WorkFraction};
use crate::workload::Workload;

/// One point of an offload sweep: the fraction `f` of work moved to the
/// accelerator and the resulting evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadPoint {
    /// Fraction of work at IP\[1\].
    pub f: f64,
    /// Model evaluation at this fraction.
    pub evaluation: Evaluation,
    /// Performance normalized to the `f = 0` (all-CPU) baseline, the
    /// y-axis of the paper's Figure 8.
    pub normalized: f64,
}

/// Sweeps the accelerator work fraction `f` from 0 to 1 in `steps` even
/// increments on a two-IP SoC — the model-side analog of the paper's
/// Figure 8 experiment.
///
/// # Errors
///
/// * [`GablesError::InvalidParameter`] if `steps == 0`, an intensity is
///   invalid, or the SoC has fewer than two IPs.
///
/// # Examples
///
/// ```
/// use gables_model::analysis::offload_sweep;
/// use gables_model::two_ip::TwoIpModel;
///
/// let soc = TwoIpModel::figure_6a().soc()?;
/// let sweep = offload_sweep(&soc, 1024.0, 1024.0, 8)?;
/// // High intensity: offloading to the 5x accelerator helps.
/// assert!(sweep.last().unwrap().normalized > 1.0);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn offload_sweep(
    soc: &SocSpec,
    i0: f64,
    i1: f64,
    steps: usize,
) -> Result<Vec<OffloadPoint>, GablesError> {
    offload_sweep_with(soc, i0, i1, steps, Parallelism::Auto)
}

/// [`offload_sweep`] with an explicit [`Parallelism`] policy. The `f = 0`
/// baseline is computed up front on the calling thread; the sweep points
/// then fan out and come back in `f` order with serial-identical bits.
///
/// # Errors
///
/// Same as [`offload_sweep`].
pub fn offload_sweep_with(
    soc: &SocSpec,
    i0: f64,
    i1: f64,
    steps: usize,
    parallelism: Parallelism,
) -> Result<Vec<OffloadPoint>, GablesError> {
    if steps == 0 {
        return Err(GablesError::invalid_parameter(
            "sweep steps",
            0.0,
            "must be >= 1",
        ));
    }
    if soc.ip_count() < 2 {
        return Err(GablesError::IpIndexOutOfBounds {
            index: 1,
            len: soc.ip_count(),
        });
    }
    // The f = 0 workload doubles as the scratch template: every sweep
    // point only rewrites the two leading assignments in place, so the
    // per-point work is allocation-free (the scratch is a stack copy).
    let template = pad_two_ip(soc, 0.0, i0, i1)?;
    let baseline = evaluate(soc, &template)?.attainable().value();
    let i0 = OpsPerByte::try_new(i0)?;
    let i1 = OpsPerByte::try_new(i1)?;
    par::try_map(parallelism, steps + 1, |step| {
        let f = step as f64 / steps as f64;
        let mut scratch = EvalScratch::new(&template);
        scratch.set_two_ip(WorkFraction::new(f)?, i0, i1)?;
        let evaluation = evaluate(soc, scratch.workload())?;
        let normalized = evaluation.attainable().value() / baseline;
        Ok(OffloadPoint {
            f,
            evaluation,
            normalized,
        })
    })
}

/// Builds a workload placing `1-f` work at IP\[0\] and `f` at IP\[1\],
/// padding any further IPs of the SoC as idle.
fn pad_two_ip(soc: &SocSpec, f: f64, i0: f64, i1: f64) -> Result<Workload, GablesError> {
    let mut b = Workload::builder();
    b.work(1.0 - f, i0)?;
    b.work(f, i1)?;
    for _ in 2..soc.ip_count() {
        b.idle();
    }
    b.build()
}

/// One point of a `Bpeak` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BpeakPoint {
    /// Off-chip bandwidth in GB/s.
    pub bpeak_gbps: f64,
    /// Model evaluation at this bandwidth.
    pub evaluation: Evaluation,
}

/// Sweeps off-chip bandwidth over `[lo_gbps, hi_gbps]` in `steps`
/// log-spaced points — the Figure 6b→6c question ("is more DRAM bandwidth
/// worth it?") asked systematically.
///
/// # Errors
///
/// Returns [`GablesError::InvalidParameter`] for a non-positive or empty
/// range or zero steps, and propagates model errors.
pub fn bpeak_sweep(
    soc: &SocSpec,
    workload: &Workload,
    lo_gbps: f64,
    hi_gbps: f64,
    steps: usize,
) -> Result<Vec<BpeakPoint>, GablesError> {
    bpeak_sweep_with(soc, workload, lo_gbps, hi_gbps, steps, Parallelism::Auto)
}

/// [`bpeak_sweep`] with an explicit [`Parallelism`] policy. Points come
/// back in ascending-bandwidth order with serial-identical bits.
///
/// # Errors
///
/// Same as [`bpeak_sweep`].
pub fn bpeak_sweep_with(
    soc: &SocSpec,
    workload: &Workload,
    lo_gbps: f64,
    hi_gbps: f64,
    steps: usize,
    parallelism: Parallelism,
) -> Result<Vec<BpeakPoint>, GablesError> {
    if steps == 0
        || !lo_gbps.is_finite()
        || lo_gbps <= 0.0
        || !hi_gbps.is_finite()
        || hi_gbps < lo_gbps
    {
        return Err(GablesError::invalid_parameter(
            "bpeak sweep range",
            lo_gbps,
            "requires 0 < lo <= hi and steps >= 1",
        ));
    }
    let ratio = (hi_gbps / lo_gbps).ln();
    par::try_map(parallelism, steps + 1, |step| {
        let t = step as f64 / steps as f64;
        let gbps = lo_gbps * (ratio * t).exp();
        // Overrides Bpeak without cloning the SoC: bit-identical to
        // evaluating `soc.with_bpeak(..)` but allocation-free per point.
        Ok(BpeakPoint {
            bpeak_gbps: gbps,
            evaluation: evaluate_with_bpeak(soc, workload, BytesPerSec::from_gbps(gbps))?,
        })
    })
}

/// The smallest `Bpeak` at which memory stops being the binding bound for
/// this workload: `Bpeak* = min-IP-bound / Iavg`. Provisioning above this
/// is the "additional expense without benefit" the paper calls out in
/// Figure 6c; below it, memory throttles the IPs.
///
/// # Errors
///
/// Propagates model errors; returns [`GablesError::NoConvergence`] if no
/// IP is active (no finite IP bound to balance against).
pub fn sufficient_bpeak(soc: &SocSpec, workload: &Workload) -> Result<BytesPerSec, GablesError> {
    let eval = evaluate(soc, workload)?;
    let min_ip_bound = eval
        .ips()
        .iter()
        .filter_map(|ip| ip.perf_bound)
        .map(OpsPerSec::value)
        .fold(f64::INFINITY, f64::min);
    if !min_ip_bound.is_finite() {
        return Err(GablesError::NoConvergence {
            what: "sufficient Bpeak with no active IP",
        });
    }
    let iavg = workload
        .iavg()
        .expect("workload with an active IP has an Iavg");
    Ok(OpsPerSec::new(min_ip_bound) / iavg)
}

/// The elasticity (log-log sensitivity) of `Pattainable` to one model
/// parameter, estimated by central finite differences: `d ln P / d ln x`.
/// 1.0 means performance scales proportionally with the parameter; 0.0
/// means the parameter is currently off the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter label (e.g. `"Bpeak"`, `"B1"`, `"I1"`).
    pub parameter: String,
    /// Estimated elasticity.
    pub elasticity: f64,
}

/// Estimates the elasticity of attainable performance to `Bpeak`, `Ppeak`,
/// and every per-IP `Bi`, `Ai` (accelerators only), and `Ii` (active IPs
/// only).
///
/// # Errors
///
/// Propagates model and parameter-validation errors.
pub fn sensitivities(soc: &SocSpec, workload: &Workload) -> Result<Vec<Sensitivity>, GablesError> {
    const REL: f64 = 1e-4;
    let mut out = Vec::new();

    let perf = |soc: &SocSpec, w: &Workload| -> Result<f64, GablesError> {
        Ok(evaluate(soc, w)?.attainable().value())
    };

    // Bpeak.
    {
        let hi = soc.with_bpeak(soc.bpeak() * (1.0 + REL))?;
        let lo = soc.with_bpeak(soc.bpeak() * (1.0 - REL))?;
        out.push(Sensitivity {
            parameter: "Bpeak".into(),
            elasticity: elasticity(perf(&lo, workload)?, perf(&hi, workload)?, REL),
        });
    }
    // Ppeak.
    {
        let hi = rebuild(soc, |b| {
            b.ppeak(soc.ppeak() * (1.0 + REL));
        })?;
        let lo = rebuild(soc, |b| {
            b.ppeak(soc.ppeak() * (1.0 - REL));
        })?;
        out.push(Sensitivity {
            parameter: "Ppeak".into(),
            elasticity: elasticity(perf(&lo, workload)?, perf(&hi, workload)?, REL),
        });
    }
    // Per-IP Bi and Ai.
    for i in 0..soc.ip_count() {
        let hi = rebuild_ip(soc, i, 1.0 + REL, 1.0)?;
        let lo = rebuild_ip(soc, i, 1.0 - REL, 1.0)?;
        out.push(Sensitivity {
            parameter: format!("B{i}"),
            elasticity: elasticity(perf(&lo, workload)?, perf(&hi, workload)?, REL),
        });
        if i > 0 {
            let hi = rebuild_ip(soc, i, 1.0, 1.0 + REL)?;
            let lo = rebuild_ip(soc, i, 1.0, 1.0 - REL)?;
            out.push(Sensitivity {
                parameter: format!("A{i}"),
                elasticity: elasticity(perf(&lo, workload)?, perf(&hi, workload)?, REL),
            });
        }
    }
    // Per-IP Ii (active IPs only).
    for i in workload.active_ips().collect::<Vec<_>>() {
        let base_i = workload.assignment(i)?.intensity().value();
        let hi = workload.with_intensity(i, base_i * (1.0 + REL))?;
        let lo = workload.with_intensity(i, base_i * (1.0 - REL))?;
        out.push(Sensitivity {
            parameter: format!("I{i}"),
            elasticity: elasticity(perf(soc, &lo)?, perf(soc, &hi)?, REL),
        });
    }
    Ok(out)
}

fn elasticity(p_lo: f64, p_hi: f64, rel: f64) -> f64 {
    ((p_hi / p_lo).ln()) / (((1.0 + rel) / (1.0 - rel)).ln())
}

/// Rebuilds a SoC with an arbitrary builder edit, keeping IPs intact.
fn rebuild(
    soc: &SocSpec,
    edit: impl FnOnce(&mut crate::soc::SocSpecBuilder),
) -> Result<SocSpec, GablesError> {
    let mut b = SocSpec::builder();
    b.ppeak(soc.ppeak()).bpeak(soc.bpeak());
    b.cpu(soc.ip(0)?.name(), soc.ip(0)?.bandwidth());
    for ip in &soc.ips()[1..] {
        b.accelerator(ip.name(), ip.acceleration().value(), ip.bandwidth())?;
    }
    edit(&mut b);
    b.build()
}

/// Rebuilds a SoC scaling IP `index`'s bandwidth by `b_scale` and (for
/// accelerators) acceleration by `a_scale`.
fn rebuild_ip(
    soc: &SocSpec,
    index: usize,
    b_scale: f64,
    a_scale: f64,
) -> Result<SocSpec, GablesError> {
    let mut b = SocSpec::builder();
    b.ppeak(soc.ppeak()).bpeak(soc.bpeak());
    let cpu = soc.ip(0)?;
    let cpu_bw = if index == 0 {
        cpu.bandwidth() * b_scale
    } else {
        cpu.bandwidth()
    };
    b.cpu(cpu.name(), cpu_bw);
    for (i, ip) in soc.ips().iter().enumerate().skip(1) {
        let (bw, a) = if i == index {
            (
                ip.bandwidth() * b_scale,
                ip.acceleration().value() * a_scale,
            )
        } else {
            (ip.bandwidth(), ip.acceleration().value())
        };
        b.accelerator(ip.name(), a, bw)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Bottleneck;
    use crate::two_ip::TwoIpModel;

    fn soc() -> SocSpec {
        TwoIpModel::figure_6a().soc().unwrap()
    }

    #[test]
    fn offload_sweep_low_intensity_disappoints() {
        // Paper finding 1: at low operational intensity, offloading to the
        // accelerator is memory-bound and captures almost none of the 5x
        // acceleration.
        let sweep = offload_sweep(&soc(), 1.0, 1.0, 8).unwrap();
        assert_eq!(sweep.len(), 9);
        assert!((sweep[0].normalized - 1.0).abs() < 1e-12);
        let last = sweep.last().unwrap();
        // Memory (Bpeak·I = 10 Gops/s) binds, so the best case is 10/6 —
        // nowhere near the accelerator's 5x.
        assert!(last.normalized < 2.0, "got {}", last.normalized);
        assert_eq!(last.evaluation.bottleneck(), Bottleneck::Memory);
    }

    #[test]
    fn offload_sweep_poor_reuse_slows_down() {
        // Figure 6b in sweep form: offloading work whose intensity drops
        // from 8 to 0.1 ops/byte at the GPU is a large slowdown.
        let sweep = offload_sweep(&soc(), 8.0, 0.1, 8).unwrap();
        let at_three_quarters = &sweep[6];
        assert!((at_three_quarters.f - 0.75).abs() < 1e-12);
        assert!(
            at_three_quarters.normalized < 0.05,
            "got {}",
            at_three_quarters.normalized
        );
    }

    #[test]
    fn offload_sweep_high_intensity_speeds_up() {
        // Paper finding 2: high-intensity offload approaches acceleration A.
        let sweep = offload_sweep(&soc(), 1024.0, 1024.0, 8).unwrap();
        let last = sweep.last().unwrap();
        assert!((last.f - 1.0).abs() < 1e-12);
        assert!(
            (last.normalized - 5.0).abs() < 1e-9,
            "got {}",
            last.normalized
        );
    }

    #[test]
    fn offload_sweep_validates() {
        assert!(offload_sweep(&soc(), 1.0, 1.0, 0).is_err());
        let one_ip = SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(1.0))
            .bpeak(BytesPerSec::from_gbps(1.0))
            .cpu("CPU", BytesPerSec::from_gbps(1.0))
            .build()
            .unwrap();
        assert!(offload_sweep(&one_ip, 1.0, 1.0, 4).is_err());
    }

    #[test]
    fn bpeak_sweep_is_monotone_and_saturates() {
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let sweep = bpeak_sweep(&soc(), &w, 1.0, 1000.0, 16).unwrap();
        let mut last = 0.0;
        for p in &sweep {
            let v = p.evaluation.attainable().value();
            assert!(v >= last - 1e-6);
            last = v;
        }
        // Saturates at IP[1]'s 2 Gops/s bound (Figure 6c's lesson).
        assert!((sweep.last().unwrap().evaluation.attainable().to_gops() - 2.0).abs() < 1e-9);
        assert!(bpeak_sweep(&soc(), &w, 0.0, 10.0, 4).is_err());
        assert!(bpeak_sweep(&soc(), &w, 10.0, 1.0, 4).is_err());
        assert!(bpeak_sweep(&soc(), &w, 1.0, 10.0, 0).is_err());
    }

    #[test]
    fn sufficient_bpeak_matches_figure_6d() {
        // For the balanced Figure 6d workload (I0 = I1 = 8, f = 0.75) the
        // sufficient Bpeak is exactly the paper's 20 GB/s.
        let m = TwoIpModel::figure_6d();
        let b = sufficient_bpeak(&m.soc().unwrap(), &m.workload().unwrap()).unwrap();
        assert!((b.to_gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sufficient_bpeak_removes_memory_bottleneck() {
        let m = TwoIpModel::figure_6b();
        let (soc, w) = (m.soc().unwrap(), m.workload().unwrap());
        assert_eq!(evaluate(&soc, &w).unwrap().bottleneck(), Bottleneck::Memory);
        let b = sufficient_bpeak(&soc, &w).unwrap();
        let fixed = soc.with_bpeak(b).unwrap();
        let eval = evaluate(&fixed, &w).unwrap();
        // Memory no longer strictly binds (it may tie).
        assert!(eval.memory_bound().value() >= eval.attainable().value() - 1e-6);
    }

    #[test]
    fn sensitivities_identify_the_bottleneck_parameter() {
        // Figure 6b is memory-bound: Bpeak elasticity ~1, CPU params ~0.
        let m = TwoIpModel::figure_6b();
        let sens = sensitivities(&m.soc().unwrap(), &m.workload().unwrap()).unwrap();
        let get = |name: &str| {
            sens.iter()
                .find(|s| s.parameter == name)
                .map(|s| s.elasticity)
                .unwrap()
        };
        assert!((get("Bpeak") - 1.0).abs() < 1e-3);
        assert!(get("Ppeak").abs() < 1e-3);
        assert!(get("B0").abs() < 1e-3);
        // I1 dominates Iavg, so raising it helps nearly 1:1.
        assert!(get("I1") > 0.9);
    }

    #[test]
    fn sensitivities_on_compute_bound_design() {
        // Figure 6a is CPU-compute-bound: Ppeak elasticity 1, rest ~0.
        let m = TwoIpModel::figure_6a();
        let sens = sensitivities(&m.soc().unwrap(), &m.workload().unwrap()).unwrap();
        let get = |name: &str| {
            sens.iter()
                .find(|s| s.parameter == name)
                .map(|s| s.elasticity)
                .unwrap()
        };
        assert!((get("Ppeak") - 1.0).abs() < 1e-3);
        assert!(get("Bpeak").abs() < 1e-3);
        // Idle GPU contributes no I1 sensitivity entry.
        assert!(sens.iter().all(|s| s.parameter != "I1"));
    }
}
