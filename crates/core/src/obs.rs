//! Unified observability: leveled structured logging, hierarchical
//! spans with deterministic IDs, and span-context propagation across
//! threads — all on `std` only.
//!
//! The Gables model attributes a workload's performance to the component
//! that binds it; this module does the same for the software stack that
//! serves the model. Three pieces:
//!
//! 1. **Leveled logging** ([`log`], [`Level`], [`LogFormat`]): one line
//!    per event on stderr, JSON or text, filtered by the `GABLES_LOG`
//!    environment variable (`error|warn|info|debug|trace|off`) or an
//!    explicit [`set_level`] (the CLI's `--log` flag). Library crates
//!    never print to stdout — stdout belongs to command output.
//! 2. **Spans** ([`span`], [`SpanGuard`], [`SpanCollector`]): scoped
//!    timers forming a tree per trace. A span only costs anything when a
//!    collector is installed on the current thread (servers install one
//!    per request); otherwise [`span`] is a no-op returning an inert
//!    guard. Finished spans land in the bounded collector and can be
//!    exported as Chrome trace-event JSON ([`chrome_trace_for_spans`]).
//! 3. **Propagation** ([`current_context`], [`span_at`]): a
//!    [`SpanContext`] snapshot is `Send + Sync` and can be captured
//!    before fanning work out to worker threads (see
//!    [`par::try_map`](crate::par::try_map)), so worker spans attach to
//!    the request that spawned them.
//!
//! ## Deterministic span IDs
//!
//! Span IDs are **derived, not drawn**: a child's ID is a hash of
//! `(parent span ID, span name, child index)` ([`derive_span_id`]).
//! Under `Parallelism::Threads(N)` the parallel map claims work in
//! contiguous chunk order, and each chunk span's index is its *chunk
//! number*, not its thread or completion order — so the same request
//! produces the same span IDs at any thread count for a fixed chunking,
//! and re-running a request reproduces its IDs exactly. Timing fields
//! (`start_us`, `dur_us`) are wall-clock observations and naturally
//! vary; identity never does.
//!
//! Observation must never perturb results: nothing in this module feeds
//! back into evaluation, and the differential/parallel-determinism
//! suites run with `GABLES_LOG=debug` to enforce that.

use std::cell::RefCell;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// Log severity, ordered from quietest to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Unexpected but survivable conditions.
    Warn = 2,
    /// Operational milestones (startup, shutdown, access logs).
    Info = 3,
    /// Per-request internals.
    Debug = 4,
    /// Per-span / per-chunk firehose.
    Trace = 5,
}

impl Level {
    /// Parses `error|warn|info|debug|trace` (case-insensitive). `off`
    /// and `none` map to `None` (log nothing); anything else is `Err`.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            "off" | "none" => Ok(None),
            other => Err(format!(
                "unknown log level {other:?} (use error, warn, info, debug, trace, or off)"
            )),
        }
    }

    /// The stable lowercase label (`"info"`, …).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

/// How log lines are rendered on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-readable single line: timestamp, level, target, message,
    /// `key=value` fields.
    #[default]
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses `json` or `text` (case-insensitive).
    pub fn parse(s: &str) -> Result<LogFormat, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "json" => Ok(LogFormat::Json),
            "text" => Ok(LogFormat::Text),
            other => Err(format!("unknown log format {other:?} (use json or text)")),
        }
    }
}

// Explicit overrides (the CLI's --log / --log-format flags). `u8::MAX`
// means "not set": fall back to the environment, then the default.
static LEVEL_OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);
static FORMAT_OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);
const LEVEL_OFF: u8 = 0;

fn env_level() -> Option<Level> {
    static ENV: OnceLock<Option<Level>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("GABLES_LOG") {
        Ok(v) => Level::parse(&v).unwrap_or(Some(Level::Warn)),
        Err(_) => Some(Level::Warn),
    })
}

fn env_format() -> LogFormat {
    static ENV: OnceLock<LogFormat> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("GABLES_LOG_FORMAT") {
        Ok(v) => LogFormat::parse(&v).unwrap_or_default(),
        Err(_) => LogFormat::Text,
    })
}

/// The process-wide monotonic origin all log timestamps are relative to.
pub fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`origin`].
pub fn now_us() -> u64 {
    origin().elapsed().as_micros() as u64
}

/// Overrides the log level (e.g. from the CLI `--log` flag). `None`
/// silences logging entirely. Wins over `GABLES_LOG`.
pub fn set_level(level: Option<Level>) {
    LEVEL_OVERRIDE.store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// Whether [`set_level`] has been called (the environment default is in
/// effect otherwise). Lets a long-running command raise its own default
/// without clobbering an explicit user choice.
pub fn level_is_explicit() -> bool {
    LEVEL_OVERRIDE.load(Ordering::Relaxed) != u8::MAX
}

/// Overrides the log format (e.g. from the CLI `--log-format` flag).
pub fn set_format(format: LogFormat) {
    FORMAT_OVERRIDE.store(format as u8, Ordering::Relaxed);
}

/// The effective log level: the [`set_level`] override if present, else
/// `GABLES_LOG`, else [`Level::Warn`]. `None` means logging is off.
pub fn level() -> Option<Level> {
    match LEVEL_OVERRIDE.load(Ordering::Relaxed) {
        u8::MAX => env_level(),
        v => Level::from_u8(v),
    }
}

/// The effective log format.
pub fn format() -> LogFormat {
    match FORMAT_OVERRIDE.load(Ordering::Relaxed) {
        0 => LogFormat::Text,
        1 => LogFormat::Json,
        _ => env_format(),
    }
}

/// Whether a record at `at` would currently be emitted.
pub fn enabled(at: Level) -> bool {
    level().is_some_and(|l| at <= l)
}

/// A typed structured-log field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field.
    Str(String),
    /// A signed integer field.
    Int(i64),
    /// An unsigned integer field.
    UInt(u64),
    /// A float field (non-finite renders as JSON `null`).
    Float(f64),
    /// A boolean field.
    Bool(bool),
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", json::escape(s)),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) if f.is_finite() => f.to_string(),
            Value::Float(_) => "null".to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }

    fn to_text(&self) -> String {
        match self {
            Value::Str(s) => {
                if s.chars().any(|c| c.is_whitespace() || c == '"') {
                    format!("{s:?}")
                } else {
                    s.clone()
                }
            }
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(u64::from(v))
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::UInt(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Emits one structured log record to stderr if `level` is enabled.
///
/// `target` names the subsystem (`"serve.access"`, `"cli"`, …); `fields`
/// are appended as structured key/value pairs. If the calling thread is
/// inside a span, the trace and span IDs are attached automatically.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let ts_us = now_us();
    let ctx = CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|state| (state.trace_id, state.span_id))
    });
    let line = match format() {
        LogFormat::Json => {
            let mut s = format!(
                "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
                level.label(),
                json::escape(target),
                json::escape(msg)
            );
            if let Some((trace, span)) = ctx {
                s.push_str(&format!(
                    ",\"trace\":\"{trace:016x}\",\"span\":\"{span:016x}\""
                ));
            }
            for (k, v) in fields {
                s.push_str(&format!(",\"{}\":{}", json::escape(k), v.to_json()));
            }
            s.push_str("}\n");
            s
        }
        LogFormat::Text => {
            let mut s = format!(
                "{:>12.3}ms {:<5} {target} {msg}",
                ts_us as f64 / 1e3,
                level.label().to_ascii_uppercase(),
            );
            for (k, v) in fields {
                s.push_str(&format!(" {k}={}", v.to_text()));
            }
            if let Some((trace, span)) = ctx {
                s.push_str(&format!(" trace={trace:016x} span={span:016x}"));
            }
            s.push('\n');
            s
        }
    };
    // One locked write per line keeps concurrent records unscrambled.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a string to a 64-bit ID (FNV-1a, then mixed). Used to derive
/// trace IDs from request IDs so the same request ID always maps to the
/// same trace.
pub fn hash64(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(h)
}

/// Derives a child span ID from `(parent, name, index)`. Pure and
/// collision-resistant in practice; never returns 0 (reserved for "no
/// parent"). This is what keeps span identity deterministic across
/// worker counts: the inputs are structural, never temporal.
pub fn derive_span_id(parent: u64, name: &str, index: u64) -> u64 {
    mix(parent ^ hash64(name) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's name (e.g. `"server.request"`, `"worker"`).
    pub name: String,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's derived ID (see [`derive_span_id`]).
    pub span_id: u64,
    /// The parent span's ID, or 0 for a trace root.
    pub parent_id: u64,
    /// Start, microseconds since the collector's origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// A bounded sink for finished spans, shared across the threads serving
/// one trace (typically one HTTP request). Spans beyond `capacity` are
/// counted as dropped rather than growing without bound — a hostile
/// 100k-step sweep cannot balloon a request's trace.
#[derive(Debug)]
pub struct SpanCollector {
    origin: Instant,
    capacity: usize,
    inner: Mutex<CollectorInner>,
}

#[derive(Debug, Default)]
struct CollectorInner {
    spans: Vec<SpanRecord>,
    dropped: u64,
}

impl SpanCollector {
    /// A fresh collector whose clock starts now.
    pub fn new(capacity: usize) -> Arc<SpanCollector> {
        Arc::new(SpanCollector {
            origin: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(CollectorInner::default()),
        })
    }

    /// Microseconds since this collector was created.
    pub fn elapsed_us(&self) -> f64 {
        self.origin.elapsed().as_nanos() as f64 / 1e3
    }

    /// Appends a finished span, or counts it as dropped at capacity.
    pub fn push(&self, record: SpanRecord) {
        let mut inner = self.inner.lock().expect("span collector poisoned");
        if inner.spans.len() >= self.capacity {
            inner.dropped += 1;
        } else {
            inner.spans.push(record);
        }
    }

    /// Removes and returns every collected span plus the dropped count.
    pub fn take(&self) -> (Vec<SpanRecord>, u64) {
        let mut inner = self.inner.lock().expect("span collector poisoned");
        (std::mem::take(&mut inner.spans), inner.dropped)
    }

    /// The number of spans currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("span collector poisoned")
            .spans
            .len()
    }

    /// Whether no spans have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-thread active span state.
#[derive(Clone)]
struct TlsState {
    trace_id: u64,
    span_id: u64,
    /// Next child index for spans opened under the current span.
    child_seq: u64,
    /// Semicolon-joined name path from the trace root to this span
    /// (`main;dispatch;sweep`), published to [`crate::prof`] so the
    /// sampling profiler can fold stacks without unwinding.
    path: Arc<str>,
    collector: Arc<SpanCollector>,
}

thread_local! {
    static CURRENT: RefCell<Option<TlsState>> = const { RefCell::new(None) };
}

/// A `Send + Sync` snapshot of the current span context, suitable for
/// handing to worker threads (see [`span_at`]).
#[derive(Debug, Clone)]
pub struct SpanContext {
    trace_id: u64,
    span_id: u64,
    path: Arc<str>,
    collector: Arc<SpanCollector>,
}

impl SpanContext {
    /// The trace ID this context belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The span ID worker spans will attach to.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The semicolon-joined name path of the context's span, which
    /// worker spans extend so cross-thread profiles keep full ancestry.
    pub fn path(&self) -> &str {
        &self.path
    }
}

/// Snapshots the calling thread's span context, or `None` when no span
/// is active (the common, zero-cost case).
pub fn current_context() -> Option<SpanContext> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|state| SpanContext {
            trace_id: state.trace_id,
            span_id: state.span_id,
            path: Arc::clone(&state.path),
            collector: Arc::clone(&state.collector),
        })
    })
}

/// An RAII guard for an open span. Dropping it records the span into its
/// collector and restores the previous thread-local context. Inert (all
/// no-ops) when created outside any span context.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
    // Guards manipulate thread-local state and must drop on the thread
    // that created them.
    _not_send: std::marker::PhantomData<*const ()>,
}

struct ActiveSpan {
    name: String,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_us: f64,
    collector: Arc<SpanCollector>,
    prev: Option<TlsState>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(a) => f
                .debug_struct("SpanGuard")
                .field("name", &a.name)
                .field("span_id", &format_args!("{:016x}", a.span_id))
                .finish_non_exhaustive(),
            None => f.write_str("SpanGuard(inert)"),
        }
    }
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard {
        inner: None,
        _not_send: std::marker::PhantomData,
    };

    /// Whether this guard is actually recording (a collector is
    /// installed).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's ID, if active.
    pub fn span_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.span_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let end_us = active.collector.elapsed_us();
        crate::prof::on_span_exit(active.prev.as_ref().map(|p| &p.path));
        CURRENT.with(|c| *c.borrow_mut() = active.prev.clone());
        if enabled(Level::Trace) {
            log(
                Level::Trace,
                "obs.span",
                &active.name,
                &[("dur_us", Value::Float(end_us - active.start_us))],
            );
        }
        active.collector.push(SpanRecord {
            name: active.name,
            trace_id: active.trace_id,
            span_id: active.span_id,
            parent_id: active.parent_id,
            start_us: active.start_us,
            dur_us: end_us - active.start_us,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn install(
    name: &str,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_us: f64,
    path: Arc<str>,
    collector: Arc<SpanCollector>,
    prev: Option<TlsState>,
) -> SpanGuard {
    crate::prof::on_span_enter(&path);
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(TlsState {
            trace_id,
            span_id,
            child_seq: 0,
            path,
            collector: Arc::clone(&collector),
        });
    });
    SpanGuard {
        inner: Some(ActiveSpan {
            name: name.to_string(),
            trace_id,
            span_id,
            parent_id,
            start_us,
            collector,
            prev,
        }),
        _not_send: std::marker::PhantomData,
    }
}

/// Opens a child span of the calling thread's current span. A no-op
/// (inert guard) when no span context is installed, so library code can
/// instrument hot paths unconditionally.
pub fn span(name: &str) -> SpanGuard {
    let Some(parent) = CURRENT.with(|c| c.borrow().clone()) else {
        return SpanGuard::INERT;
    };
    let index = parent.child_seq;
    let id = derive_span_id(parent.span_id, name, index);
    let start_us = parent.collector.elapsed_us();
    let collector = Arc::clone(&parent.collector);
    let path: Arc<str> = format!("{};{}", parent.path, name).into();
    let mut prev = parent;
    prev.child_seq += 1;
    install(
        name,
        prev.trace_id,
        id,
        prev.span_id,
        start_us,
        path,
        collector,
        Some(prev),
    )
}

/// Opens a span under a propagated [`SpanContext`] with an explicit
/// child `index` — the worker-thread entry point. The span's ID depends
/// only on `(parent span, name, index)`, so chunk `c` of a parallel map
/// gets the same ID whichever thread claims it.
pub fn span_at(ctx: &SpanContext, name: &str, index: u64) -> SpanGuard {
    let id = derive_span_id(ctx.span_id, name, index);
    let prev = CURRENT.with(|c| c.borrow().clone());
    let start_us = ctx.collector.elapsed_us();
    let path: Arc<str> = format!("{};{}", ctx.path, name).into();
    install(
        name,
        ctx.trace_id,
        id,
        ctx.span_id,
        start_us,
        path,
        Arc::clone(&ctx.collector),
        prev,
    )
}

/// Opens a trace root span directly on a collector: the server's
/// per-request entry point. The root's `start_us` is pinned to the
/// collector's origin (0), so the root always covers the full trace.
pub fn attach_root(collector: &Arc<SpanCollector>, trace_id: u64, name: &str) -> SpanGuard {
    let id = derive_span_id(trace_id, name, 0);
    let prev = CURRENT.with(|c| c.borrow().clone());
    install(
        name,
        trace_id,
        id,
        0,
        0.0,
        Arc::from(name),
        Arc::clone(collector),
        prev,
    )
}

/// Renders finished spans as Chrome trace-event JSON (load in
/// `chrome://tracing` or <https://ui.perfetto.dev>) — the same format
/// `gables-soc-sim`'s epoch exporter emits, so a served request and a
/// simulator run open in the same tooling. Timestamps are microseconds
/// since the trace origin.
pub fn chrome_trace_for_spans(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    // Parents before children: earlier start first, longer span first on
    // ties, so nesting renders correctly.
    ordered.sort_by(|a, b| {
        a.start_us
            .partial_cmp(&b.start_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.dur_us
                    .partial_cmp(&a.dur_us)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut events: Vec<String> = Vec::with_capacity(ordered.len() + 1);
    events.push(
        r#"{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{"name":"gables-request"}}"#
            .to_string(),
    );
    let num = |x: f64| if x.is_finite() { x } else { 0.0 };
    for s in ordered {
        events.push(format!(
            r#"{{"name":"{}","cat":"span","ph":"X","pid":1,"tid":1,"ts":{},"dur":{},"args":{{"trace":"{:016x}","span":"{:016x}","parent":"{:016x}"}}}}"#,
            json::escape(&s.name),
            num(s.start_us),
            num(s.dur_us),
            s.trace_id,
            s.span_id,
            s.parent_id,
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("info").unwrap(), Some(Level::Info));
        assert_eq!(Level::parse("WARN").unwrap(), Some(Level::Warn));
        assert_eq!(Level::parse("off").unwrap(), None);
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!(LogFormat::parse("json").unwrap(), LogFormat::Json);
        assert!(LogFormat::parse("yaml").is_err());
    }

    #[test]
    fn derived_ids_are_deterministic_and_distinct() {
        let a = derive_span_id(7, "worker", 0);
        assert_eq!(a, derive_span_id(7, "worker", 0));
        assert_ne!(a, derive_span_id(7, "worker", 1));
        assert_ne!(a, derive_span_id(8, "worker", 0));
        assert_ne!(a, derive_span_id(7, "chunk", 0));
        assert_ne!(a, 0, "0 is reserved for no-parent");
        assert_eq!(hash64("req-1"), hash64("req-1"));
        assert_ne!(hash64("req-1"), hash64("req-2"));
    }

    #[test]
    fn spans_nest_and_record_into_the_collector() {
        let collector = SpanCollector::new(16);
        {
            let root = attach_root(&collector, hash64("t"), "root");
            assert!(root.is_active());
            {
                let child = span("child");
                assert!(child.is_active());
                let _grand = span("grandchild");
            }
            let _second = span("second-child");
        }
        let (spans, dropped) = collector.take();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        // Children close before parents.
        assert_eq!(names, ["grandchild", "child", "second-child", "root"]);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("root");
        let child = by_name("child");
        let grand = by_name("grandchild");
        assert_eq!(root.parent_id, 0);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(grand.parent_id, child.span_id);
        assert_eq!(root.start_us, 0.0);
        assert!(root.dur_us >= child.dur_us);
        // Sibling IDs differ (distinct child indices).
        assert_ne!(child.span_id, by_name("second-child").span_id);
        // The context is fully popped.
        assert!(current_context().is_none());
    }

    #[test]
    fn span_outside_any_context_is_inert() {
        let g = span("nothing");
        assert!(!g.is_active());
        assert!(g.span_id().is_none());
        drop(g);
        assert!(current_context().is_none());
    }

    #[test]
    fn span_at_reproduces_ids_across_threads() {
        let run = || {
            let collector = SpanCollector::new(64);
            let _root = attach_root(&collector, hash64("det"), "root");
            let ctx = current_context().unwrap();
            let mut handles = Vec::new();
            for i in 0..4u64 {
                let ctx = ctx.clone();
                handles.push(std::thread::spawn(move || {
                    let g = span_at(&ctx, "worker", i);
                    g.span_id().unwrap()
                }));
            }
            let mut ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(run(), run(), "worker span IDs must be reproducible");
    }

    #[test]
    fn collector_is_bounded() {
        let collector = SpanCollector::new(2);
        let trace = hash64("cap");
        for i in 0..5 {
            let _s = span_at(
                &SpanContext {
                    trace_id: trace,
                    span_id: 1,
                    path: Arc::from("root"),
                    collector: Arc::clone(&collector),
                },
                "s",
                i,
            );
        }
        let (spans, dropped) = collector.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_spans() {
        let collector = SpanCollector::new(16);
        {
            let _root = attach_root(&collector, hash64("x"), "server.request");
            let _child = span("eval");
        }
        let (spans, _) = collector.take();
        let trace = chrome_trace_for_spans(&spans);
        let doc = json::Json::parse(&trace).expect("valid chrome trace JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata + 2 spans, root ordered before its child.
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[1].get("name").and_then(json::Json::as_str),
            Some("server.request")
        );
        assert_eq!(
            events[2].get("name").and_then(json::Json::as_str),
            Some("eval")
        );
    }

    #[test]
    fn value_rendering() {
        assert_eq!(Value::from("plain").to_json(), "\"plain\"");
        assert_eq!(Value::from("a b").to_text(), "\"a b\"");
        assert_eq!(Value::from(3u64).to_json(), "3");
        assert_eq!(Value::from(true).to_json(), "true");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::from(1.5).to_text(), "1.5");
    }
}
