//! Cache-aware roofline model (CARM): an ordered ladder of per-level
//! bandwidth ceilings instead of the single DRAM roof.
//!
//! Gables (the paper) models one `Bpeak` and folds the memory hierarchy
//! into the per-IP miss fraction `mi` (Section V-A): only `mi` of an
//! IP's traffic reaches DRAM. The cache-aware roofline generalizes that
//! one knob into a *profile*: a fraction of traffic served at every
//! level of the hierarchy, each level with its own measured effective
//! bandwidth. For a workload with operational intensity `I` (ops per
//! requested byte) and per-level traffic fractions `phi_l`, level `l`
//! serves `phi_l` of the bytes at `B_l`, so its ceiling on performance
//! is `B_l * I / phi_l` — the *per-level effective intensity* `I / phi_l`
//! times the level's bandwidth. Attainable performance is the minimum of
//! the compute roof and every per-level ceiling:
//!
//! ```text
//! P = min( Ppeak,  min over levels l with phi_l > 0 of  B_l * I / phi_l )
//! ```
//!
//! With a two-rung ladder (SRAM, DRAM) and `phi_dram = mi` this reduces
//! exactly to the paper's SRAM extension, which is the consistency test
//! at the bottom of this module.
//!
//! The ladders themselves come from measurement, not hand entry: see
//! `gables_soc_sim::cache_sim::measure_bandwidth_ladder`.

use crate::error::GablesError;
use crate::units::{BytesPerSec, OpsPerByte, OpsPerSec};

/// One rung of the ceiling ladder: a named cache level (or DRAM) with
/// its measured effective bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Ceiling {
    name: String,
    bandwidth: BytesPerSec,
}

impl Ceiling {
    /// The level name (`l1`, `slc`, `dram`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level's effective bandwidth.
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }
}

/// Which constraint binds at a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarmBinding {
    /// The compute roof `Ppeak` binds.
    Compute,
    /// The ceiling of the ladder rung at this index binds.
    Level(usize),
}

/// One evaluated point of an intensity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CarmPoint {
    /// Operational intensity (ops per requested byte).
    pub intensity: f64,
    /// Attainable performance in Gops/s.
    pub attainable_gops: f64,
    /// The binding constraint at this intensity.
    pub binding: CarmBinding,
}

/// Per-rung traffic fractions: what share of the workload's requested
/// bytes each ladder level serves. Sums to 1 by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficProfile {
    fractions: Vec<f64>,
}

impl TrafficProfile {
    /// Builds a profile from per-level served byte counts (a hit/miss
    /// profile), normalizing to fractions.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidCacheConfig`] for an empty profile,
    /// a negative or non-finite byte count, or zero total traffic.
    pub fn from_bytes(per_level_bytes: &[f64]) -> Result<Self, GablesError> {
        if per_level_bytes.is_empty() {
            return Err(GablesError::InvalidCacheConfig {
                what: "traffic profile has no levels".into(),
            });
        }
        for (i, &b) in per_level_bytes.iter().enumerate() {
            if !b.is_finite() || b < 0.0 {
                return Err(GablesError::InvalidCacheConfig {
                    what: format!("traffic profile level {i} has invalid byte count {b}"),
                });
            }
        }
        let total: f64 = per_level_bytes.iter().sum();
        if total <= 0.0 {
            return Err(GablesError::InvalidCacheConfig {
                what: "traffic profile has zero total traffic".into(),
            });
        }
        Ok(Self {
            fractions: per_level_bytes.iter().map(|&b| b / total).collect(),
        })
    }

    /// Number of rungs the profile covers.
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Whether the profile covers no rungs (never true for a
    /// successfully constructed profile).
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// The traffic fraction of rung `level`.
    pub fn fraction(&self, level: usize) -> f64 {
        self.fractions[level]
    }
}

/// A roofline with one compute roof and an ordered ladder of per-level
/// bandwidth ceilings, fastest rung first.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheAwareRoofline {
    ppeak: OpsPerSec,
    ceilings: Vec<Ceiling>,
}

impl CacheAwareRoofline {
    /// Builds a roofline from a peak performance and a ladder of
    /// `(name, effective bandwidth)` rungs ordered nearest-first.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] for a non-finite or
    /// non-positive `ppeak`, and [`GablesError::InvalidCacheConfig`] for
    /// an empty ladder, an invalid rung bandwidth, or a rung that is not
    /// strictly slower than the one before it (level ordering violation).
    pub fn new(ppeak: OpsPerSec, ladder: Vec<(String, BytesPerSec)>) -> Result<Self, GablesError> {
        if !ppeak.is_finite() || ppeak.value() <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "Ppeak",
                ppeak.to_gops(),
                "must be finite and positive",
            ));
        }
        if ladder.is_empty() {
            return Err(GablesError::InvalidCacheConfig {
                what: "ceiling ladder has no levels".into(),
            });
        }
        let mut prev: Option<(&str, f64)> = None;
        for (name, bw) in &ladder {
            if !bw.is_finite() || bw.value() <= 0.0 {
                return Err(GablesError::InvalidCacheConfig {
                    what: format!(
                        "level {name} bandwidth {} GB/s must be finite and positive",
                        bw.to_gbps()
                    ),
                });
            }
            if let Some((prev_name, prev_bw)) = prev {
                if bw.to_gbps() >= prev_bw {
                    return Err(GablesError::InvalidCacheConfig {
                        what: format!(
                            "level ordering violation: {name} ({} GB/s) must be slower \
                             than {prev_name} ({prev_bw} GB/s)",
                            bw.to_gbps()
                        ),
                    });
                }
            }
            prev = Some((name, bw.to_gbps()));
        }
        Ok(Self {
            ppeak,
            ceilings: ladder
                .into_iter()
                .map(|(name, bandwidth)| Ceiling { name, bandwidth })
                .collect(),
        })
    }

    /// The compute roof.
    pub fn ppeak(&self) -> OpsPerSec {
        self.ppeak
    }

    /// The ceiling ladder, fastest rung first.
    pub fn ceilings(&self) -> &[Ceiling] {
        &self.ceilings
    }

    /// The knee intensity of rung `level`: the operational intensity at
    /// which that rung's ceiling meets the compute roof (`Ppeak / B_l`).
    pub fn knee(&self, level: usize) -> OpsPerByte {
        OpsPerByte::new(self.ppeak.value() / self.ceilings[level].bandwidth.value())
    }

    /// Rung `level`'s roofline at intensity `i`, ignoring the traffic
    /// profile: `min(Ppeak, B_l * i)`. This is what the multi-ceiling
    /// chart draws, one curve per rung.
    pub fn ceiling_at(&self, level: usize, i: OpsPerByte) -> OpsPerSec {
        let memory = self.ceilings[level].bandwidth * i;
        if memory.value() < self.ppeak.value() {
            memory
        } else {
            self.ppeak
        }
    }

    /// The per-level effective intensity of a workload: total intensity
    /// divided by the rung's traffic fraction (`I / phi_l`), or `None`
    /// when the rung serves no traffic (its ceiling cannot bind).
    pub fn effective_intensity(
        profile: &TrafficProfile,
        level: usize,
        i: OpsPerByte,
    ) -> Option<OpsPerByte> {
        let phi = profile.fraction(level);
        if phi <= 0.0 {
            None
        } else {
            Some(OpsPerByte::new(i.value() / phi))
        }
    }

    /// Attainable performance at intensity `i` for a workload with the
    /// given traffic profile, and the constraint that binds there.
    ///
    /// Ties between a memory ceiling and the compute roof resolve to the
    /// memory level (the knee belongs to the ceiling that creates it);
    /// ties between memory levels resolve to the nearest level.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidCacheConfig`] when the profile does
    /// not cover exactly one fraction per ladder rung, and
    /// [`GablesError::InvalidParameter`] for a non-finite or
    /// non-positive intensity.
    pub fn attainable(
        &self,
        profile: &TrafficProfile,
        i: OpsPerByte,
    ) -> Result<(OpsPerSec, CarmBinding), GablesError> {
        if profile.len() != self.ceilings.len() {
            return Err(GablesError::InvalidCacheConfig {
                what: format!(
                    "traffic profile covers {} levels but the ladder has {}",
                    profile.len(),
                    self.ceilings.len()
                ),
            });
        }
        if !i.is_finite() || i.value() <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "operational intensity",
                i.value(),
                "must be finite and positive",
            ));
        }
        let mut best = self.ppeak.value();
        let mut binding = CarmBinding::Compute;
        // Reverse order so a nearer level wins ties with a farther one.
        for level in (0..self.ceilings.len()).rev() {
            if let Some(eff) = Self::effective_intensity(profile, level, i) {
                let p = self.ceilings[level].bandwidth.value() * eff.value();
                if p <= best {
                    best = p;
                    binding = CarmBinding::Level(level);
                }
            }
        }
        Ok((OpsPerSec::new(best), binding))
    }

    /// Evaluates an intensity sweep, returning one [`CarmPoint`] per
    /// input intensity.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`attainable`](Self::attainable).
    pub fn sweep(
        &self,
        profile: &TrafficProfile,
        intensities: &[f64],
    ) -> Result<Vec<CarmPoint>, GablesError> {
        intensities
            .iter()
            .map(|&x| {
                let (p, binding) = self.attainable(profile, OpsPerByte::new(x))?;
                Ok(CarmPoint {
                    intensity: x,
                    attainable_gops: p.to_gops(),
                    binding,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    fn ladder() -> Vec<(String, BytesPerSec)> {
        vec![
            ("l1".to_string(), BytesPerSec::from_gbps(100.0)),
            ("slc".to_string(), BytesPerSec::from_gbps(40.0)),
            ("dram".to_string(), BytesPerSec::from_gbps(10.0)),
        ]
    }

    fn roofline() -> CacheAwareRoofline {
        CacheAwareRoofline::new(OpsPerSec::from_gops(40.0), ladder()).unwrap()
    }

    #[test]
    fn ladder_validation_is_fallible_and_closed_coded() {
        let empty = CacheAwareRoofline::new(OpsPerSec::from_gops(40.0), vec![]).unwrap_err();
        assert_eq!(empty.code(), "invalid_cache_config");

        let mut inverted = ladder();
        inverted[2].1 = BytesPerSec::from_gbps(50.0); // dram faster than slc
        let err = CacheAwareRoofline::new(OpsPerSec::from_gops(40.0), inverted).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidCacheConfig);
        assert!(err.to_string().contains("ordering"), "{err}");

        // (A non-finite rung bandwidth cannot even be constructed in
        // debug builds — units debug_assert finiteness — but the ladder
        // check remains as the release-mode backstop.)
        let bad_peak = CacheAwareRoofline::new(OpsPerSec::from_gops(0.0), ladder());
        assert_eq!(bad_peak.unwrap_err().code(), "invalid_parameter");
    }

    #[test]
    fn knees_and_ceilings() {
        let r = roofline();
        assert!((r.knee(0).value() - 0.4).abs() < 1e-12); // 40 / 100
        assert!((r.knee(2).value() - 4.0).abs() < 1e-12); // 40 / 10
                                                          // Below the knee the rung's line is bandwidth-sloped; above it
                                                          // the roof is flat.
        assert!((r.ceiling_at(2, OpsPerByte::new(1.0)).to_gops() - 10.0).abs() < 1e-12);
        assert!((r.ceiling_at(2, OpsPerByte::new(100.0)).to_gops() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn binding_level_tracks_the_traffic_profile() {
        let r = roofline();
        // 90% of traffic served by l1, 8% by slc, 2% by DRAM.
        let p = TrafficProfile::from_bytes(&[90.0, 8.0, 2.0]).unwrap();
        // Per-level ceilings at I=0.1: l1 100*0.1/0.9=11.1, slc
        // 40*0.1/0.08=50, dram 10*0.1/0.02=50 — l1 binds despite being
        // the fastest level, because it serves nearly all the traffic.
        let (perf, binding) = r.attainable(&p, OpsPerByte::new(0.1)).unwrap();
        assert_eq!(binding, CarmBinding::Level(0));
        assert!((perf.to_gops() - 100.0 * 0.1 / 0.9).abs() < 1e-9);

        // Mostly-DRAM traffic: DRAM binds.
        let p = TrafficProfile::from_bytes(&[10.0, 10.0, 80.0]).unwrap();
        let (_, binding) = r.attainable(&p, OpsPerByte::new(0.1)).unwrap();
        assert_eq!(binding, CarmBinding::Level(2));

        // Far above every knee the compute roof binds.
        let (perf, binding) = r.attainable(&p, OpsPerByte::new(1000.0)).unwrap();
        assert_eq!(binding, CarmBinding::Compute);
        assert!((perf.to_gops() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_levels_cannot_bind() {
        let r = roofline();
        let p = TrafficProfile::from_bytes(&[0.0, 0.0, 5.0]).unwrap();
        assert_eq!(
            CacheAwareRoofline::effective_intensity(&p, 0, OpsPerByte::new(1.0)),
            None
        );
        let (_, binding) = r.attainable(&p, OpsPerByte::new(0.1)).unwrap();
        assert_eq!(binding, CarmBinding::Level(2));
    }

    #[test]
    fn profile_validation() {
        assert!(TrafficProfile::from_bytes(&[]).is_err());
        assert!(TrafficProfile::from_bytes(&[1.0, -2.0]).is_err());
        assert!(TrafficProfile::from_bytes(&[0.0, 0.0]).is_err());
        assert!(TrafficProfile::from_bytes(&[1.0, f64::NAN]).is_err());
        let p = TrafficProfile::from_bytes(&[3.0, 1.0]).unwrap();
        assert!((p.fraction(0) - 0.75).abs() < 1e-12);
        assert!((p.fraction(1) - 0.25).abs() < 1e-12);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());

        let mismatched = TrafficProfile::from_bytes(&[1.0]).unwrap();
        let err = roofline()
            .attainable(&mismatched, OpsPerByte::new(1.0))
            .unwrap_err();
        assert_eq!(err.code(), "invalid_cache_config");
        assert!(roofline()
            .attainable(
                &TrafficProfile::from_bytes(&[1.0, 1.0, 1.0]).unwrap(),
                OpsPerByte::new(f64::INFINITY)
            )
            .is_err());
    }

    #[test]
    fn sweep_orders_bindings_from_memory_to_compute() {
        let r = roofline();
        let p = TrafficProfile::from_bytes(&[0.5, 0.3, 0.2]).unwrap();
        let xs: Vec<f64> = (0..20).map(|i| 0.01 * 2f64.powi(i)).collect();
        let pts = r.sweep(&p, &xs).unwrap();
        assert_eq!(pts.len(), xs.len());
        // Attainable is nondecreasing in intensity, and once compute
        // binds it stays bound.
        let mut saw_compute = false;
        for pair in pts.windows(2) {
            assert!(pair[1].attainable_gops >= pair[0].attainable_gops - 1e-12);
        }
        for pt in &pts {
            if saw_compute {
                assert_eq!(pt.binding, CarmBinding::Compute);
            }
            saw_compute |= pt.binding == CarmBinding::Compute;
        }
        assert!(saw_compute, "sweep must reach the compute roof");
        assert_eq!(pts[0].binding, CarmBinding::Level(2), "DRAM binds at low I");
    }

    /// With a two-rung ladder (SRAM, DRAM) and `phi_dram = mi` the CARM
    /// attainability reduces to the paper's SRAM-extension bound
    /// `min(Ppeak, Bsram * I, Bdram * I / mi)`.
    #[test]
    fn two_rung_ladder_recovers_the_sram_extension() {
        let ppeak = 40.0;
        let bsram = 25.0;
        let bdram = 10.0;
        let mi = 0.3;
        let r = CacheAwareRoofline::new(
            OpsPerSec::from_gops(ppeak),
            vec![
                ("sram".to_string(), BytesPerSec::from_gbps(bsram)),
                ("dram".to_string(), BytesPerSec::from_gbps(bdram)),
            ],
        )
        .unwrap();
        let p = TrafficProfile::from_bytes(&[1.0 - mi, mi]).unwrap();
        for i in [0.05, 0.5, 2.0, 8.0] {
            let (perf, _) = r.attainable(&p, OpsPerByte::new(i)).unwrap();
            let expected = (bsram * i / (1.0 - mi)).min(bdram * i / mi).min(ppeak);
            assert!(
                (perf.to_gops() - expected).abs() < 1e-9,
                "I={i}: {} vs {expected}",
                perf.to_gops()
            );
        }
    }
}
