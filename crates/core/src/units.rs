//! Strongly-typed quantities used throughout the Gables model.
//!
//! Every hardware and software parameter in Table II of the paper gets a
//! dedicated newtype so that, for example, a bandwidth can never be passed
//! where an operational intensity is expected (C-NEWTYPE). All quantities
//! wrap `f64` and are cheap `Copy` values.
//!
//! The internal canonical units are *ops/second*, *bytes/second*,
//! *ops/byte*, and *seconds*. Giga-scaled constructors and accessors are
//! provided because the paper quotes everything in Gops/s and GB/s.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

use crate::error::GablesError;

/// One giga (10^9), the scale factor used by the paper's units.
pub const GIGA: f64 = 1.0e9;

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $human:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// Creates a new quantity from a raw value in canonical units.
            ///
            /// This is the *trusted* constructor for values computed inside
            /// the model, where infinity is meaningful (e.g. the reciprocal
            /// performance of a zero time). External inputs must come in
            /// through [`Self::try_new`] or [`Self::try_positive`], which
            /// validate in every build profile.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `value` is NaN.
            #[inline]
            pub fn new(value: f64) -> Self {
                debug_assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(value)
            }

            /// Creates a quantity from an untrusted raw value, rejecting
            /// NaN and ±∞ in **all** build profiles (unlike the
            /// `debug_assert!` in [`Self::new`], which vanishes in release
            /// builds).
            ///
            /// # Errors
            ///
            /// Returns [`GablesError::InvalidParameter`] with code
            /// `invalid_parameter` if `value` is NaN or infinite.
            #[inline]
            pub fn try_new(value: f64) -> Result<Self, GablesError> {
                if !value.is_finite() {
                    return Err(GablesError::invalid_parameter(
                        $human,
                        value,
                        "must be finite",
                    ));
                }
                Ok(Self(value))
            }

            /// Creates a quantity from an untrusted raw value that must be
            /// strictly positive, rejecting NaN, ±∞, zeros, negatives, and
            /// subnormals in **all** build profiles.
            ///
            /// Subnormals are rejected because dividing by one overflows to
            /// infinity and silently breaks the model's finiteness
            /// guarantees downstream.
            ///
            /// # Errors
            ///
            /// Returns [`GablesError::InvalidParameter`] with code
            /// `invalid_parameter` if `value` is outside the domain.
            #[inline]
            pub fn try_positive(value: f64) -> Result<Self, GablesError> {
                if !value.is_normal() || value <= 0.0 {
                    return Err(GablesError::invalid_parameter(
                        $human,
                        value,
                        "must be finite, normal, and > 0",
                    ));
                }
                Ok(Self(value))
            }

            /// Returns the raw value in canonical units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

quantity! {
    /// Computational performance in operations per second (`Ppeak` and
    /// `Pattainable` in Table II).
    ///
    /// # Examples
    ///
    /// ```
    /// use gables_model::units::OpsPerSec;
    ///
    /// let p = OpsPerSec::from_gops(40.0);
    /// assert_eq!(p.to_gops(), 40.0);
    /// ```
    OpsPerSec, "ops/s", "performance"
}

quantity! {
    /// Data bandwidth in bytes per second (`Bpeak` and the per-IP `Bi` in
    /// Table II).
    ///
    /// # Examples
    ///
    /// ```
    /// use gables_model::units::BytesPerSec;
    ///
    /// let b = BytesPerSec::from_gbps(15.1);
    /// assert!((b.to_gbps() - 15.1).abs() < 1e-12);
    /// ```
    BytesPerSec, "bytes/s", "bandwidth"
}

quantity! {
    /// Operational intensity in operations per byte transferred (`Ii` in
    /// Table II). The paper notes a double-precision multiply-accumulate
    /// without reuse can be as low as 1/16 ops/byte.
    ///
    /// # Examples
    ///
    /// ```
    /// use gables_model::units::OpsPerByte;
    ///
    /// let i = OpsPerByte::new(8.0);
    /// assert_eq!(i.value(), 8.0);
    /// ```
    OpsPerByte, "ops/byte", "operational intensity"
}

quantity! {
    /// A duration in seconds (the `Ci`, `Di/Bi`, `TIP[i]`, `Tmemory`
    /// temporaries of Table II). Because the model normalizes total usecase
    /// work to one operation, times carry units of seconds *per op of
    /// usecase work*; their reciprocal is an [`OpsPerSec`] performance.
    Seconds, "s", "time"
}

quantity! {
    /// A quantity of data in bytes (the `Di` temporaries of Table II,
    /// normalized per op of usecase work).
    Bytes, "bytes", "data size"
}

impl OpsPerSec {
    /// Creates a performance from a value in Gops/s, the unit the paper
    /// quotes (e.g. `Ppeak` = 40 Gops/s in Figure 6).
    #[inline]
    pub fn from_gops(gops: f64) -> Self {
        Self::new(gops * GIGA)
    }

    /// Returns the performance in Gops/s.
    #[inline]
    pub fn to_gops(self) -> f64 {
        self.value() / GIGA
    }

    /// Validated counterpart of [`Self::from_gops`] for untrusted input:
    /// both the Gops/s value and its canonical ops/s scaling must be
    /// finite, normal, and strictly positive, in every build profile.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `gops` (or `gops`
    /// × 10⁹, which can overflow to ∞ for huge finite inputs) is outside
    /// the domain.
    pub fn try_from_gops(gops: f64) -> Result<Self, GablesError> {
        Self::try_positive(gops)?;
        Self::try_positive(gops * GIGA)
    }
}

impl BytesPerSec {
    /// Creates a bandwidth from a value in GB/s, the unit the paper quotes
    /// (e.g. `Bpeak` = 10 GB/s in Figure 6a).
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Self::new(gbps * GIGA)
    }

    /// Returns the bandwidth in GB/s.
    #[inline]
    pub fn to_gbps(self) -> f64 {
        self.value() / GIGA
    }

    /// Validated counterpart of [`Self::from_gbps`] for untrusted input:
    /// both the GB/s value and its canonical bytes/s scaling must be
    /// finite, normal, and strictly positive, in every build profile.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `gbps` (or `gbps`
    /// × 10⁹, which can overflow to ∞ for huge finite inputs) is outside
    /// the domain.
    pub fn try_from_gbps(gbps: f64) -> Result<Self, GablesError> {
        Self::try_positive(gbps)?;
        Self::try_positive(gbps * GIGA)
    }
}

impl Bytes {
    /// Creates a byte count from gigabytes.
    #[inline]
    pub fn from_gb(gb: f64) -> Self {
        Self::new(gb * GIGA)
    }
}

impl Seconds {
    /// The reciprocal performance of this (per-op) time.
    ///
    /// A zero time maps to infinite performance, mirroring the paper's
    /// convention of dropping terms with no work assigned.
    #[inline]
    pub fn reciprocal_perf(self) -> OpsPerSec {
        OpsPerSec::new(1.0 / self.value())
    }
}

// Dimensioned cross-type arithmetic: bandwidth × intensity = performance,
// the identity underlying every slanted roofline in the paper.
impl Mul<OpsPerByte> for BytesPerSec {
    type Output = OpsPerSec;
    #[inline]
    fn mul(self, rhs: OpsPerByte) -> OpsPerSec {
        OpsPerSec::new(self.value() * rhs.value())
    }
}

impl Mul<BytesPerSec> for OpsPerByte {
    type Output = OpsPerSec;
    #[inline]
    fn mul(self, rhs: BytesPerSec) -> OpsPerSec {
        rhs * self
    }
}

impl Div<OpsPerByte> for OpsPerSec {
    /// Performance divided by intensity is the bandwidth needed to sustain it.
    type Output = BytesPerSec;
    #[inline]
    fn div(self, rhs: OpsPerByte) -> BytesPerSec {
        BytesPerSec::new(self.value() / rhs.value())
    }
}

impl Div<BytesPerSec> for OpsPerSec {
    /// Performance divided by bandwidth is the intensity needed to sustain it.
    type Output = OpsPerByte;
    #[inline]
    fn div(self, rhs: BytesPerSec) -> OpsPerByte {
        OpsPerByte::new(self.value() / rhs.value())
    }
}

impl Div<BytesPerSec> for Bytes {
    /// Data divided by bandwidth is transfer time.
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: BytesPerSec) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

/// The fraction of usecase work assigned to an IP (`fi` in Table II).
///
/// Validated to lie in `[0, 1]`; the per-IP fractions of a
/// [`Workload`](crate::workload::Workload) must additionally sum to 1.
///
/// # Examples
///
/// ```
/// use gables_model::units::WorkFraction;
///
/// let f = WorkFraction::new(0.75)?;
/// assert_eq!(f.value(), 0.75);
/// assert!(WorkFraction::new(1.5).is_err());
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkFraction(f64);

impl WorkFraction {
    /// The zero fraction (no work at this IP).
    pub const ZERO: WorkFraction = WorkFraction(0.0);
    /// The unit fraction (all work at this IP).
    pub const ONE: WorkFraction = WorkFraction(1.0);

    /// Creates a validated work fraction.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `value` is not in
    /// `[0, 1]` or is not finite.
    pub fn new(value: f64) -> Result<Self, GablesError> {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(GablesError::invalid_parameter(
                "work fraction",
                value,
                "must be finite and within [0, 1]",
            ));
        }
        Ok(Self(value))
    }

    /// Returns the fraction as a plain `f64` in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the complementary fraction `1 - f`.
    #[inline]
    pub fn complement(self) -> WorkFraction {
        WorkFraction(1.0 - self.0)
    }

    /// Returns `true` if the fraction is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for WorkFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<WorkFraction> for f64 {
    #[inline]
    fn from(f: WorkFraction) -> f64 {
        f.0
    }
}

/// The acceleration of an IP relative to the CPU complex (`Ai` in Table II,
/// unitless). The paper requires `A0 = 1` for IP\[0\].
///
/// # Examples
///
/// ```
/// use gables_model::units::Acceleration;
///
/// let a = Acceleration::new(5.0)?;
/// assert_eq!(a.value(), 5.0);
/// assert!(Acceleration::new(0.0).is_err());
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Acceleration(f64);

impl Acceleration {
    /// The identity acceleration required of IP\[0\] (the CPU complex).
    pub const UNITY: Acceleration = Acceleration(1.0);

    /// Creates a validated acceleration factor.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `value` is not finite
    /// and strictly positive.
    pub fn new(value: f64) -> Result<Self, GablesError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "acceleration",
                value,
                "must be finite and > 0",
            ));
        }
        Ok(Self(value))
    }

    /// Returns the acceleration as a plain `f64`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for Acceleration {
    fn default() -> Self {
        Self::UNITY
    }
}

impl fmt::Display for Acceleration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x", self.0)
    }
}

impl Mul<OpsPerSec> for Acceleration {
    type Output = OpsPerSec;
    #[inline]
    fn mul(self, rhs: OpsPerSec) -> OpsPerSec {
        OpsPerSec::new(self.0 * rhs.value())
    }
}

/// The probability that an IP's memory reference misses the memory-side
/// SRAM and goes to DRAM (`mi` in the Section V-A extension).
///
/// `MissRatio::CERTAIN` (1.0) degenerates the extension to the base model;
/// good reuse has `mi ≪ 1`.
///
/// # Examples
///
/// ```
/// use gables_model::units::MissRatio;
///
/// let m = MissRatio::new(0.1)?;
/// assert_eq!(m.value(), 0.1);
/// assert!(MissRatio::new(-0.5).is_err());
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MissRatio(f64);

impl MissRatio {
    /// Every reference goes to DRAM (no memory-side reuse at all).
    pub const CERTAIN: MissRatio = MissRatio(1.0);
    /// Every reference hits the memory-side SRAM (perfect reuse).
    pub const NEVER: MissRatio = MissRatio(0.0);

    /// Creates a validated miss ratio.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `value` is not in
    /// `[0, 1]` or is not finite.
    pub fn new(value: f64) -> Result<Self, GablesError> {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(GablesError::invalid_parameter(
                "miss ratio",
                value,
                "must be finite and within [0, 1]",
            ));
        }
        Ok(Self(value))
    }

    /// Returns the miss ratio as a plain `f64` in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the hit ratio `1 - mi` (reuse probability).
    #[inline]
    pub fn hit_ratio(self) -> f64 {
        1.0 - self.0
    }
}

impl Default for MissRatio {
    fn default() -> Self {
        Self::CERTAIN
    }
}

impl fmt::Display for MissRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gops_round_trip() {
        let p = OpsPerSec::from_gops(40.0);
        assert_eq!(p.value(), 40.0e9);
        assert_eq!(p.to_gops(), 40.0);
    }

    #[test]
    fn gbps_round_trip() {
        let b = BytesPerSec::from_gbps(15.1);
        assert!((b.to_gbps() - 15.1).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_times_intensity_is_performance() {
        let b = BytesPerSec::from_gbps(6.0);
        let i = OpsPerByte::new(8.0);
        let p: OpsPerSec = b * i;
        assert_eq!(p.to_gops(), 48.0);
        // And commuted.
        let p2: OpsPerSec = i * b;
        assert_eq!(p2, p);
    }

    #[test]
    fn performance_over_intensity_is_bandwidth() {
        let p = OpsPerSec::from_gops(160.0);
        let i = OpsPerByte::new(8.0);
        let b: BytesPerSec = p / i;
        assert_eq!(b.to_gbps(), 20.0);
    }

    #[test]
    fn performance_over_bandwidth_is_intensity() {
        let p = OpsPerSec::from_gops(160.0);
        let b = BytesPerSec::from_gbps(20.0);
        let i: OpsPerByte = p / b;
        assert_eq!(i.value(), 8.0);
    }

    #[test]
    fn data_over_bandwidth_is_time() {
        let d = Bytes::from_gb(2.0);
        let b = BytesPerSec::from_gbps(4.0);
        let t: Seconds = d / b;
        assert_eq!(t.value(), 0.5);
    }

    #[test]
    fn reciprocal_perf_of_time() {
        let t = Seconds::new(0.025e-9);
        assert!((t.reciprocal_perf().to_gops() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn work_fraction_validates_range() {
        assert!(WorkFraction::new(0.0).is_ok());
        assert!(WorkFraction::new(1.0).is_ok());
        assert!(WorkFraction::new(0.75).is_ok());
        assert!(WorkFraction::new(-0.01).is_err());
        assert!(WorkFraction::new(1.01).is_err());
        assert!(WorkFraction::new(f64::NAN).is_err());
        assert!(WorkFraction::new(f64::INFINITY).is_err());
    }

    #[test]
    fn work_fraction_complement() {
        let f = WorkFraction::new(0.75).unwrap();
        assert!((f.complement().value() - 0.25).abs() < 1e-15);
        assert!(WorkFraction::ZERO.is_zero());
        assert!(!WorkFraction::ONE.is_zero());
    }

    #[test]
    fn acceleration_validates_positive() {
        assert!(Acceleration::new(5.0).is_ok());
        assert!(Acceleration::new(0.0).is_err());
        assert!(Acceleration::new(-1.0).is_err());
        assert!(Acceleration::new(f64::NAN).is_err());
        assert_eq!(Acceleration::default(), Acceleration::UNITY);
    }

    #[test]
    fn acceleration_scales_performance() {
        let a = Acceleration::new(5.0).unwrap();
        let p = a * OpsPerSec::from_gops(40.0);
        assert_eq!(p.to_gops(), 200.0);
    }

    #[test]
    fn miss_ratio_validates_range() {
        assert!(MissRatio::new(0.0).is_ok());
        assert!(MissRatio::new(1.0).is_ok());
        assert!(MissRatio::new(2.0).is_err());
        assert!(MissRatio::new(-0.1).is_err());
        let m = MissRatio::new(0.2).unwrap();
        assert!((m.hit_ratio() - 0.8).abs() < 1e-15);
        assert_eq!(MissRatio::default(), MissRatio::CERTAIN);
    }

    #[test]
    fn display_formats_include_units() {
        assert_eq!(format!("{}", OpsPerSec::new(5.0)), "5 ops/s");
        assert_eq!(format!("{}", BytesPerSec::new(3.0)), "3 bytes/s");
        assert_eq!(format!("{}", OpsPerByte::new(8.0)), "8 ops/byte");
        assert_eq!(format!("{}", Acceleration::UNITY), "1x");
    }

    #[test]
    fn try_new_rejects_non_finite_in_every_profile() {
        // These checks are real branches, not debug_assert!, so they hold
        // in release builds too (scripts/check.sh runs them with
        // `cargo test --release`).
        assert!(OpsPerSec::try_new(40.0e9).is_ok());
        assert!(OpsPerSec::try_new(0.0).is_ok());
        assert!(OpsPerSec::try_new(f64::NAN).is_err());
        assert!(OpsPerSec::try_new(f64::INFINITY).is_err());
        assert!(OpsPerSec::try_new(f64::NEG_INFINITY).is_err());
        assert!(BytesPerSec::try_new(f64::NAN).is_err());
        assert!(OpsPerByte::try_new(f64::INFINITY).is_err());
        assert!(Seconds::try_new(f64::NAN).is_err());
        assert!(Bytes::try_new(f64::NAN).is_err());
    }

    #[test]
    fn try_positive_rejects_degenerate_values() {
        assert!(OpsPerSec::try_positive(40.0e9).is_ok());
        assert!(OpsPerSec::try_positive(0.0).is_err());
        assert!(OpsPerSec::try_positive(-0.0).is_err());
        assert!(OpsPerSec::try_positive(-1.0).is_err());
        assert!(OpsPerSec::try_positive(f64::NAN).is_err());
        assert!(OpsPerSec::try_positive(f64::INFINITY).is_err());
        // Subnormals are rejected: 1/x overflows to infinity.
        assert!(OpsPerSec::try_positive(1.0e-310).is_err());
        assert!(OpsPerSec::try_positive(f64::MIN_POSITIVE).is_ok());
        let err = BytesPerSec::try_positive(f64::NAN).unwrap_err();
        assert!(err.to_string().contains("bandwidth"), "{err}");
        assert_eq!(err.code(), "invalid_parameter");
    }

    #[test]
    fn try_giga_constructors_catch_scaling_overflow() {
        assert!(OpsPerSec::try_from_gops(40.0).is_ok());
        assert!(BytesPerSec::try_from_gbps(10.0).is_ok());
        // Finite in Gops/s but infinite once scaled by 1e9.
        assert!(OpsPerSec::try_from_gops(1.0e308).is_err());
        assert!(BytesPerSec::try_from_gbps(1.0e308).is_err());
        assert!(OpsPerSec::try_from_gops(f64::NAN).is_err());
        assert!(BytesPerSec::try_from_gbps(0.0).is_err());
        assert!(BytesPerSec::try_from_gbps(-10.0).is_err());
    }

    #[test]
    fn quantity_arithmetic() {
        let a = OpsPerSec::new(3.0) + OpsPerSec::new(4.0);
        assert_eq!(a.value(), 7.0);
        let s = OpsPerSec::new(4.0) - OpsPerSec::new(3.0);
        assert_eq!(s.value(), 1.0);
        let m = OpsPerSec::new(4.0) * 2.0;
        assert_eq!(m.value(), 8.0);
        let m2 = 2.0 * OpsPerSec::new(4.0);
        assert_eq!(m2.value(), 8.0);
        let d = OpsPerSec::new(4.0) / 2.0;
        assert_eq!(d.value(), 2.0);
        let r: f64 = OpsPerSec::new(8.0) / OpsPerSec::new(2.0);
        assert_eq!(r, 4.0);
    }
}
