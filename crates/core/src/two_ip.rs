//! The two-IP primer model of Section III-B.
//!
//! [`TwoIpModel`] is an ergonomic facade over the N-IP model for the common
//! teaching case of a CPU complex (IP\[0\]) plus one accelerator (IP\[1\]),
//! exposing the paper's scalar parameters (`Ppeak`, `Bpeak`, `A`, `B0`,
//! `B1`, `f`, `I0`, `I1`) directly. The appendix's Figure 6a–6d scenarios
//! are provided as constructors so that tests, examples, and the figure
//! regeneration harness share one source of truth.

use crate::error::GablesError;
use crate::model::{evaluate, Evaluation};
use crate::soc::SocSpec;
use crate::units::{BytesPerSec, OpsPerSec};
use crate::workload::Workload;

/// A two-IP SoC plus usecase, in the paper's Section III-B notation.
///
/// # Examples
///
/// ```
/// use gables_model::two_ip::TwoIpModel;
///
/// // Figure 6d: the balanced design reaching 160 Gops/s.
/// let model = TwoIpModel::figure_6d();
/// let eval = model.evaluate()?;
/// assert!((eval.attainable().to_gops() - 160.0).abs() < 1e-9);
/// assert!(eval.is_balanced(1e-9));
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoIpModel {
    /// CPU-complex peak performance `Ppeak` in Gops/s.
    pub ppeak_gops: f64,
    /// Off-chip memory bandwidth `Bpeak` in GB/s.
    pub bpeak_gbps: f64,
    /// Accelerator peak acceleration `A` (IP\[1\] peaks at `A · Ppeak`).
    pub acceleration: f64,
    /// CPU bandwidth `B0` in GB/s.
    pub b0_gbps: f64,
    /// Accelerator bandwidth `B1` in GB/s.
    pub b1_gbps: f64,
    /// Fraction of work `f` at the accelerator (`1 - f` stays on the CPU).
    pub f: f64,
    /// Operational intensity `I0` of the CPU's work, ops/byte.
    pub i0: f64,
    /// Operational intensity `I1` of the accelerator's work, ops/byte.
    pub i1: f64,
}

impl TwoIpModel {
    /// The initial parameters of the paper's Figure 6 walkthrough
    /// (Ppeak = 40 Gops/s, Bpeak = 10 GB/s, A = 5, B0 = 6, B1 = 15,
    /// I0 = 8, I1 = 0.1, f = 0). Expected `Pattainable`: **40 Gops/s**.
    pub fn figure_6a() -> Self {
        TwoIpModel {
            ppeak_gops: 40.0,
            bpeak_gbps: 10.0,
            acceleration: 5.0,
            b0_gbps: 6.0,
            b1_gbps: 15.0,
            f: 0.0,
            i0: 8.0,
            i1: 0.1,
        }
    }

    /// Figure 6b: `f` raised to 0.75 — performance collapses to
    /// **1.3 Gops/s** because the accelerator's poor reuse (I1 = 0.1)
    /// overwhelms memory bandwidth.
    pub fn figure_6b() -> Self {
        TwoIpModel {
            f: 0.75,
            ..Self::figure_6a()
        }
    }

    /// Figure 6c: `Bpeak` raised from 10 to 30 GB/s — performance only
    /// reaches **2.0 Gops/s**; IP\[1\]'s own bandwidth now binds.
    pub fn figure_6c() -> Self {
        TwoIpModel {
            bpeak_gbps: 30.0,
            ..Self::figure_6b()
        }
    }

    /// Figure 6d: `I1` raised to 8 (adding IP-local memory and reusing it)
    /// and `Bpeak` trimmed to a sufficient 20 GB/s — the balanced design
    /// reaching **160 Gops/s** with all three rooflines equal at I = 8.
    pub fn figure_6d() -> Self {
        TwoIpModel {
            bpeak_gbps: 20.0,
            i1: 8.0,
            ..Self::figure_6c()
        }
    }

    /// All four appendix scenarios in order, with their expected
    /// `Pattainable` in Gops/s as printed in the paper's appendix.
    pub fn figure_6_progression() -> [(&'static str, Self, f64); 4] {
        [
            ("6a", Self::figure_6a(), 40.0),
            ("6b", Self::figure_6b(), 1.327_800_829_875_518_7),
            ("6c", Self::figure_6c(), 2.0),
            ("6d", Self::figure_6d(), 160.0),
        ]
    }

    /// The hardware half as an N-IP [`SocSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if any hardware parameter
    /// is non-positive or non-finite.
    pub fn soc(&self) -> Result<SocSpec, GablesError> {
        SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(self.ppeak_gops))
            .bpeak(BytesPerSec::from_gbps(self.bpeak_gbps))
            .cpu("CPU", BytesPerSec::from_gbps(self.b0_gbps))
            .accelerator(
                "Accelerator",
                self.acceleration,
                BytesPerSec::from_gbps(self.b1_gbps),
            )?
            .build()
    }

    /// The software half as an N-IP [`Workload`].
    ///
    /// # Errors
    ///
    /// Returns an error if `f` is outside `[0, 1]` or an active IP's
    /// intensity is non-positive.
    pub fn workload(&self) -> Result<Workload, GablesError> {
        Workload::two_ip(self.f, self.i0, self.i1)
    }

    /// Evaluates the model: Equations 1–4 (equivalently 5–8).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from [`soc`](Self::soc) and
    /// [`workload`](Self::workload).
    pub fn evaluate(&self) -> Result<Evaluation, GablesError> {
        evaluate(&self.soc()?, &self.workload()?)
    }

    /// `Pattainable` in Gops/s — shorthand for `evaluate()?.attainable()`.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`](Self::evaluate).
    pub fn attainable_gops(&self) -> Result<f64, GablesError> {
        Ok(self.evaluate()?.attainable().to_gops())
    }
}

impl Default for TwoIpModel {
    /// Defaults to the paper's Figure 6a starting point.
    fn default() -> Self {
        Self::figure_6a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Bottleneck;

    #[test]
    fn appendix_progression_is_exact() {
        for (name, model, expected_gops) in TwoIpModel::figure_6_progression() {
            let got = model.attainable_gops().unwrap();
            assert!(
                (got - expected_gops).abs() < 1e-9,
                "figure {name}: expected {expected_gops} Gops/s, got {got}"
            );
        }
    }

    #[test]
    fn appendix_intermediate_terms_6b() {
        // Appendix Figure 6b: 1/TIP0 = 160, 1/TIP1 = 2, 1/Tmem = 1.3.
        let eval = TwoIpModel::figure_6b().evaluate().unwrap();
        assert!((eval.ip(0).unwrap().perf_bound.unwrap().to_gops() - 160.0).abs() < 1e-9);
        assert!((eval.ip(1).unwrap().perf_bound.unwrap().to_gops() - 2.0).abs() < 1e-9);
        assert!((eval.memory_bound().to_gops() - 1.327_800_829).abs() < 1e-6);
        assert_eq!(eval.bottleneck(), Bottleneck::Memory);
    }

    #[test]
    fn appendix_intermediate_terms_6c() {
        // Appendix Figure 6c: 1/Tmem = 30 * 0.13278 = 3.98; IP[1] binds at 2.
        let eval = TwoIpModel::figure_6c().evaluate().unwrap();
        assert!((eval.memory_bound().to_gops() - 3.983_402_49).abs() < 1e-6);
        assert_eq!(eval.bottleneck(), Bottleneck::Ip(1));
    }

    #[test]
    fn figure_6a_memory_headroom() {
        // Appendix Figure 6a: memory could sustain 80 Gops/s; CPU binds at 40.
        let eval = TwoIpModel::figure_6a().evaluate().unwrap();
        assert!((eval.memory_bound().to_gops() - 80.0).abs() < 1e-9);
        assert_eq!(eval.bottleneck(), Bottleneck::Ip(0));
    }

    #[test]
    fn default_is_figure_6a() {
        assert_eq!(TwoIpModel::default(), TwoIpModel::figure_6a());
    }

    #[test]
    fn soc_and_workload_round_trip() {
        let m = TwoIpModel::figure_6d();
        let soc = m.soc().unwrap();
        assert_eq!(soc.ip_count(), 2);
        assert_eq!(soc.bpeak().to_gbps(), 20.0);
        let w = m.workload().unwrap();
        assert_eq!(w.assignment(1).unwrap().intensity().value(), 8.0);
    }

    #[test]
    fn invalid_parameters_propagate() {
        let mut m = TwoIpModel::figure_6a();
        m.acceleration = -5.0;
        assert!(m.evaluate().is_err());
        let mut m = TwoIpModel::figure_6a();
        m.f = 1.5;
        assert!(m.evaluate().is_err());
        let mut m = TwoIpModel::figure_6b();
        m.i1 = 0.0;
        assert!(m.evaluate().is_err());
    }

    #[test]
    fn unused_ip_is_free() {
        // With f = 0, the accelerator's parameters are irrelevant.
        let mut base = TwoIpModel::figure_6a();
        base.i1 = 123.0;
        assert_eq!(
            base.attainable_gops().unwrap(),
            TwoIpModel::figure_6a().attainable_gops().unwrap()
        );
    }
}
