//! Structured what-if analysis.
//!
//! The paper's Figure 6 walkthrough is a chain of what-ifs: *assign work
//! to the GPU* → *buy more DRAM bandwidth* → *fix the reuse instead*.
//! This module reifies such edits as data ([`Edit`]) so a scenario chain
//! can be applied, explained, and diffed mechanically — each step
//! reporting the performance delta and any bottleneck migration.

use core::fmt;

use crate::error::GablesError;
use crate::model::{evaluate, Bottleneck, Evaluation};
use crate::soc::SocSpec;
use crate::units::{BytesPerSec, OpsPerSec, WorkFraction};
use crate::workload::{WorkAssignment, Workload};

/// One edit to a SoC/workload scenario.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Edit {
    /// Set the off-chip bandwidth `Bpeak` (GB/s) — Figures 6c/6d's knob.
    SetBpeakGbps(f64),
    /// Set the CPU-complex peak `Ppeak` (Gops/s).
    SetPpeakGops(f64),
    /// Scale IP\[i\]'s port bandwidth `Bi` by a factor.
    ScaleIpBandwidth {
        /// IP index.
        ip: usize,
        /// Multiplicative factor (> 0).
        factor: f64,
    },
    /// Set IP\[i\]'s operational intensity `Ii` (ops/byte) — Figure 6d's
    /// "add memory and ensure the usecase reuses it".
    SetIntensity {
        /// IP index.
        ip: usize,
        /// New intensity, ops/byte.
        ops_per_byte: f64,
    },
    /// Move a fraction of total work from one IP to another.
    MoveWork {
        /// Source IP index.
        from: usize,
        /// Destination IP index.
        to: usize,
        /// Fraction of *total* work to move (clamped to what `from` has).
        fraction: f64,
    },
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::SetBpeakGbps(v) => write!(f, "set Bpeak = {v} GB/s"),
            Edit::SetPpeakGops(v) => write!(f, "set Ppeak = {v} Gops/s"),
            Edit::ScaleIpBandwidth { ip, factor } => {
                write!(f, "scale B{ip} by {factor}x")
            }
            Edit::SetIntensity { ip, ops_per_byte } => {
                write!(f, "set I{ip} = {ops_per_byte} ops/byte")
            }
            Edit::MoveWork { from, to, fraction } => {
                write!(f, "move {fraction} of work from IP[{from}] to IP[{to}]")
            }
        }
    }
}

/// One applied step of a what-if chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The edit applied.
    pub edit: Edit,
    /// Evaluation after the edit.
    pub after: Evaluation,
    /// `after / before` attainable-performance ratio.
    pub speedup: f64,
    /// The bottleneck before the edit.
    pub bottleneck_before: Bottleneck,
}

impl Step {
    /// Whether the edit moved the bottleneck to a different component.
    pub fn bottleneck_moved(&self) -> bool {
        self.after.bottleneck() != self.bottleneck_before
    }
}

/// The result of applying a chain of edits.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReport {
    /// The starting evaluation.
    pub baseline: Evaluation,
    /// Each applied step in order.
    pub steps: Vec<Step>,
    /// The final SoC.
    pub soc: SocSpec,
    /// The final workload.
    pub workload: Workload,
}

impl WhatIfReport {
    /// Total speedup from baseline to the final step.
    pub fn total_speedup(&self) -> f64 {
        match self.steps.last() {
            Some(last) => last.after.attainable().value() / self.baseline.attainable().value(),
            None => 1.0,
        }
    }
}

impl fmt::Display for WhatIfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "baseline: {:.4} Gops/s ({})",
            self.baseline.attainable().to_gops(),
            self.baseline.bottleneck()
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "  {}: -> {:.4} Gops/s ({:.2}x){}",
                s.edit,
                s.after.attainable().to_gops(),
                s.speedup,
                if s.bottleneck_moved() {
                    format!(
                        ", bottleneck {} -> {}",
                        s.bottleneck_before,
                        s.after.bottleneck()
                    )
                } else {
                    String::new()
                }
            )?;
        }
        writeln!(f, "total: {:.2}x", self.total_speedup())
    }
}

/// Applies a chain of edits, re-evaluating after each.
///
/// # Errors
///
/// Propagates model/parameter errors; edits referencing out-of-range IPs
/// return [`GablesError::IpIndexOutOfBounds`].
pub fn apply(
    soc: &SocSpec,
    workload: &Workload,
    edits: &[Edit],
) -> Result<WhatIfReport, GablesError> {
    let baseline = evaluate(soc, workload)?;
    let mut soc = soc.clone();
    let mut workload = workload.clone();
    let mut steps = Vec::with_capacity(edits.len());
    let mut prev = baseline.attainable().value();
    let mut prev_bottleneck = baseline.bottleneck();

    for edit in edits {
        match *edit {
            Edit::SetBpeakGbps(gbps) => {
                soc = soc.with_bpeak(BytesPerSec::from_gbps(gbps))?;
            }
            Edit::SetPpeakGops(gops) => {
                soc = rebuild_soc(&soc, Some(OpsPerSec::from_gops(gops)), None, 1.0)?;
            }
            Edit::ScaleIpBandwidth { ip, factor } => {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(GablesError::invalid_parameter(
                        "bandwidth factor",
                        factor,
                        "must be finite and > 0",
                    ));
                }
                soc = rebuild_soc(&soc, None, Some(ip), factor)?;
            }
            Edit::SetIntensity { ip, ops_per_byte } => {
                workload = workload.with_intensity(ip, ops_per_byte)?;
            }
            Edit::MoveWork { from, to, fraction } => {
                workload = move_work(&workload, from, to, fraction)?;
            }
        }
        let after = evaluate(&soc, &workload)?;
        let speedup = after.attainable().value() / prev;
        prev = after.attainable().value();
        let bottleneck_before = prev_bottleneck;
        prev_bottleneck = after.bottleneck();
        steps.push(Step {
            edit: edit.clone(),
            after,
            speedup,
            bottleneck_before,
        });
    }
    Ok(WhatIfReport {
        baseline,
        steps,
        soc,
        workload,
    })
}

fn rebuild_soc(
    soc: &SocSpec,
    ppeak: Option<OpsPerSec>,
    scale_ip: Option<usize>,
    factor: f64,
) -> Result<SocSpec, GablesError> {
    if let Some(ip) = scale_ip {
        // Validate the index up front for a precise error.
        soc.ip(ip)?;
    }
    let mut b = SocSpec::builder();
    b.ppeak(ppeak.unwrap_or_else(|| soc.ppeak()))
        .bpeak(soc.bpeak());
    let cpu = soc.ip(0)?;
    let cpu_bw = if scale_ip == Some(0) {
        cpu.bandwidth() * factor
    } else {
        cpu.bandwidth()
    };
    b.cpu(cpu.name(), cpu_bw);
    for (i, ip) in soc.ips().iter().enumerate().skip(1) {
        let bw = if scale_ip == Some(i) {
            ip.bandwidth() * factor
        } else {
            ip.bandwidth()
        };
        b.accelerator(ip.name(), ip.acceleration().value(), bw)?;
    }
    b.build()
}

fn move_work(
    workload: &Workload,
    from: usize,
    to: usize,
    fraction: f64,
) -> Result<Workload, GablesError> {
    if !(fraction.is_finite() && fraction >= 0.0) {
        return Err(GablesError::invalid_parameter(
            "moved fraction",
            fraction,
            "must be finite and >= 0",
        ));
    }
    let src = *workload.assignment(from)?;
    let dst = *workload.assignment(to)?;
    let moved = fraction.min(src.fraction().value());
    let mut assignments: Vec<WorkAssignment> = workload.assignments().to_vec();
    assignments[from] = WorkAssignment::new(
        WorkFraction::new(src.fraction().value() - moved)?,
        src.intensity(),
    )?;
    assignments[to] = WorkAssignment::new(
        WorkFraction::new(dst.fraction().value() + moved)?,
        dst.intensity(),
    )?;
    Workload::from_assignments(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_ip::TwoIpModel;

    #[test]
    fn figure_6_walkthrough_as_a_what_if_chain() {
        // Start at Figure 6a and replay the paper's exact edits.
        let m = TwoIpModel::figure_6a();
        let soc = m.soc().unwrap();
        let w = m.workload().unwrap();
        let report = apply(
            &soc,
            &w,
            &[
                Edit::MoveWork {
                    from: 0,
                    to: 1,
                    fraction: 0.75,
                }, // -> 6b
                Edit::SetBpeakGbps(30.0), // -> 6c
                Edit::SetIntensity {
                    ip: 1,
                    ops_per_byte: 8.0,
                },
                Edit::SetBpeakGbps(20.0), // -> 6d
            ],
        )
        .unwrap();
        assert!((report.baseline.attainable().to_gops() - 40.0).abs() < 1e-9);
        let gops: Vec<f64> = report
            .steps
            .iter()
            .map(|s| s.after.attainable().to_gops())
            .collect();
        assert!((gops[0] - 1.327_800_829).abs() < 1e-6);
        assert!((gops[1] - 2.0).abs() < 1e-9);
        assert!((gops[3] - 160.0).abs() < 1e-9);
        assert!((report.total_speedup() - 4.0).abs() < 1e-9);
        // The first edit moves the bottleneck CPU -> memory; the second
        // moves it memory -> GPU port.
        assert!(report.steps[0].bottleneck_moved());
        assert_eq!(report.steps[1].after.bottleneck(), Bottleneck::Ip(1));
    }

    #[test]
    fn move_work_clamps_to_available() {
        let w = Workload::two_ip(0.25, 8.0, 8.0).unwrap();
        let moved = move_work(&w, 1, 0, 0.9).unwrap();
        assert!((moved.assignment(1).unwrap().fraction().value() - 0.0).abs() < 1e-12);
        assert!((moved.assignment(0).unwrap().fraction().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edits_validate() {
        let m = TwoIpModel::figure_6a();
        let soc = m.soc().unwrap();
        let w = m.workload().unwrap();
        assert!(apply(&soc, &w, &[Edit::ScaleIpBandwidth { ip: 9, factor: 2.0 }]).is_err());
        assert!(apply(&soc, &w, &[Edit::ScaleIpBandwidth { ip: 0, factor: 0.0 }]).is_err());
        assert!(apply(
            &soc,
            &w,
            &[Edit::MoveWork {
                from: 0,
                to: 1,
                fraction: -0.5
            }]
        )
        .is_err());
        assert!(apply(&soc, &w, &[Edit::SetBpeakGbps(-1.0)]).is_err());
    }

    #[test]
    fn scale_bandwidth_and_ppeak_edits() {
        let m = TwoIpModel::figure_6a();
        let soc = m.soc().unwrap();
        let w = m.workload().unwrap();
        // 6a is CPU-compute bound; doubling Ppeak doubles performance
        // until memory binds (B0*I0 = 48 > 80? memory is 80; CPU port is
        // 6*8 = 48 -> CPU becomes port-bound at 48).
        let r = apply(&soc, &w, &[Edit::SetPpeakGops(80.0)]).unwrap();
        assert!((r.steps[0].after.attainable().to_gops() - 48.0).abs() < 1e-9);
        // Then widening B0 helps further.
        let r = apply(
            &soc,
            &w,
            &[
                Edit::SetPpeakGops(80.0),
                Edit::ScaleIpBandwidth { ip: 0, factor: 2.0 },
            ],
        )
        .unwrap();
        assert!((r.steps[1].after.attainable().to_gops() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_chain_is_identity() {
        let m = TwoIpModel::figure_6b();
        let r = apply(&m.soc().unwrap(), &m.workload().unwrap(), &[]).unwrap();
        assert_eq!(r.total_speedup(), 1.0);
        assert!(r.steps.is_empty());
    }

    #[test]
    fn report_display_narrates_the_chain() {
        let m = TwoIpModel::figure_6a();
        let r = apply(
            &m.soc().unwrap(),
            &m.workload().unwrap(),
            &[Edit::SetBpeakGbps(20.0)],
        )
        .unwrap();
        let text = r.to_string();
        assert!(text.contains("baseline: 40.0000 Gops/s"));
        assert!(text.contains("set Bpeak = 20 GB/s"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn edit_display() {
        assert_eq!(Edit::SetBpeakGbps(20.0).to_string(), "set Bpeak = 20 GB/s");
        assert_eq!(
            Edit::MoveWork {
                from: 0,
                to: 1,
                fraction: 0.75
            }
            .to_string(),
            "move 0.75 of work from IP[0] to IP[1]"
        );
        assert_eq!(
            Edit::SetIntensity {
                ip: 1,
                ops_per_byte: 8.0
            }
            .to_string(),
            "set I1 = 8 ops/byte"
        );
        assert_eq!(
            Edit::ScaleIpBandwidth { ip: 2, factor: 1.5 }.to_string(),
            "scale B2 by 1.5x"
        );
        assert_eq!(
            Edit::SetPpeakGops(40.0).to_string(),
            "set Ppeak = 40 Gops/s"
        );
    }
}
