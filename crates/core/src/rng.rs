//! A tiny deterministic PRNG for tests, benchmarks, and dataset synthesis.
//!
//! The workspace builds offline, so it cannot pull `rand` or `proptest`
//! from a registry. This module provides the small slice of functionality
//! those crates were used for: a seedable, reproducible, statistically
//! reasonable generator. The algorithm is SplitMix64 (Steele, Lea &
//! Flood, OOPSLA 2014) — a 64-bit state, fixed-increment mix that passes
//! BigCrush and is the standard seeder for larger generators.
//!
//! Determinism is load-bearing: the market dataset, the randomized
//! invariant tests, and the figure-regeneration harness all assume that
//! the same seed yields the same stream on every platform.

/// A seedable SplitMix64 pseudo-random number generator.
///
/// ```
/// use gables_model::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed is valid,
    /// including zero; distinct seeds give uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`. Requires `lo <= hi`;
    /// a degenerate empty range returns `lo`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64 needs lo <= hi");
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// Uses rejection-free modular reduction; the bias is at most
    /// 2⁻⁶⁴·span, far below anything a test or dataset can observe.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "range_u64 needs lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Returns a uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical SplitMix64 with seed 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let v = rng.range_u64(3, 17);
            assert!((3..=17).contains(&v));
            let f = rng.range_f64(-2.0, 6.5);
            assert!((-2.0..6.5).contains(&f));
            let u = rng.range_usize(0, 4);
            assert!(u <= 4);
        }
        // The full inclusive u64 range must not overflow the span math.
        let _ = rng.range_u64(0, u64::MAX);
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = SplitMix64::new(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
