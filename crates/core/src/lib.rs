//! # gables-model
//!
//! A faithful implementation of **Gables: A Roofline Model for Mobile
//! SoCs** (Hill & Janapa Reddi, HPCA 2019).
//!
//! Gables retargets the classic Roofline model at a system-on-chip with
//! `N` IP blocks (CPU complex plus accelerators) that operate
//! *concurrently* and share off-chip memory bandwidth. Hardware is modeled
//! by a roofline per IP — peak performance `Ai · Ppeak` and bandwidth `Bi`
//! — plus the shared `Bpeak`; a software usecase apportions work fractions
//! `fi` at operational intensities `Ii` across the IPs. The model computes
//! the usecase's maximal attainable performance and identifies the binding
//! bottleneck.
//!
//! ## Quickstart
//!
//! The paper's Figure 6 walkthrough in four lines:
//!
//! ```
//! use gables_model::two_ip::TwoIpModel;
//!
//! for (name, scenario, expected_gops) in TwoIpModel::figure_6_progression() {
//!     let got = scenario.attainable_gops()?;
//!     assert!((got - expected_gops).abs() < 1e-9, "figure {name}");
//! }
//! # Ok::<(), gables_model::GablesError>(())
//! ```
//!
//! Or with the full N-IP API:
//!
//! ```
//! use gables_model::{evaluate, SocSpec, Workload};
//! use gables_model::units::{BytesPerSec, OpsPerSec};
//!
//! let soc = SocSpec::builder()
//!     .ppeak(OpsPerSec::from_gops(40.0))
//!     .bpeak(BytesPerSec::from_gbps(20.0))
//!     .cpu("CPU", BytesPerSec::from_gbps(6.0))
//!     .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))?
//!     .build()?;
//! let usecase = Workload::two_ip(0.75, 8.0, 8.0)?;
//! let eval = evaluate(&soc, &usecase)?;
//! assert_eq!(eval.attainable().to_gops(), 160.0);
//! # Ok::<(), gables_model::GablesError>(())
//! ```
//!
//! ## Module map
//!
//! * [`units`] — newtyped quantities (Gops/s, GB/s, ops/byte, …).
//! * [`soc`] / [`workload`] — the hardware and software inputs of Table II.
//! * [`model`] — the base N-IP model (Equations 9–14), time form and
//!   performance form.
//! * [`two_ip`] — the Section III-B two-IP primer and appendix scenarios.
//! * [`ext`] — Section V extensions: memory-side SRAM, interconnect
//!   topologies, serialized work.
//! * [`analysis`] — sweeps, balance solvers, sensitivity analysis.
//! * [`par`] — deterministic std-only parallel execution for grid and
//!   sweep evaluation ([`Parallelism`] policies, order-stable map).
//! * [`obs`] — structured leveled logging, hierarchical spans with
//!   deterministic IDs, and cross-thread span-context propagation.
//! * [`prof`] — a deterministic-overhead sampling profiler over the
//!   span stack (folded-stack / flamegraph export) and process-wide
//!   allocation counters via a counting global allocator.
//! * [`baselines`] — Roofline, Amdahl, Gustafson, MultiAmdahl, bottleneck
//!   combinators (Section VI).
//! * [`viz`] — sampled multi-roofline plot data (Section III-C), rendered
//!   by the companion `gables-plot` crate.
//! * [`rng`] — a tiny deterministic SplitMix64 PRNG used by tests,
//!   benches, and the market synthesizer (the workspace builds offline,
//!   with no registry dependencies).
//! * [`sketch`] — deterministic DDSketch-style streaming quantile
//!   sketches with exact merge, plus the rolling multi-window ring
//!   behind the serving tier's SLO engine.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod baselines;
pub mod carm;
pub mod decfmt;
pub mod error;
pub mod explore;
pub mod ext;
mod inline;
pub mod json;
pub mod model;
pub mod obs;
pub mod par;
pub mod prof;
pub mod rng;
pub mod sketch;
pub mod soc;
pub mod two_ip;
pub mod units;
pub mod viz;
pub mod whatif;
pub mod workload;

/// Every binary in the workspace allocates through the counting
/// wrapper so [`prof`]'s allocation counters cover the whole process;
/// see [`prof::CountingAllocator`] for the (tiny, constant) cost.
#[global_allocator]
static GLOBAL_ALLOCATOR: prof::CountingAllocator = prof::CountingAllocator;

pub use error::{ErrorKind, GablesError};
pub use model::{evaluate, Bottleneck, Evaluation, IpLimit};
pub use par::Parallelism;
pub use soc::{IpSpec, SocSpec};
pub use workload::{WorkAssignment, Workload};

#[cfg(test)]
mod invariant_tests {
    //! Cross-module randomized invariant tests for the properties
    //! DESIGN.md calls out. Each test draws a few hundred seeded random
    //! SoC/workload pairs from [`rng::SplitMix64`], so failures are
    //! reproducible from the seed embedded in the test.

    use crate::ext::serialized::evaluate_serialized;
    use crate::ext::sram::MemorySideSram;
    use crate::model::{attainable_perf_form, evaluate};
    use crate::rng::SplitMix64;
    use crate::soc::SocSpec;
    use crate::units::{BytesPerSec, OpsPerSec};
    use crate::workload::Workload;

    const CASES: usize = 256;

    /// A plausible 2–5-IP SoC with positive parameters.
    fn random_soc(rng: &mut SplitMix64) -> SocSpec {
        let ppeak = rng.range_f64(0.5, 500.0);
        let bpeak = rng.range_f64(0.5, 100.0);
        let b0 = rng.range_f64(0.1, 50.0);
        let n_acc = rng.range_usize(1, 4);
        let mut b = SocSpec::builder();
        b.ppeak(OpsPerSec::from_gops(ppeak))
            .bpeak(BytesPerSec::from_gbps(bpeak))
            .cpu("CPU", BytesPerSec::from_gbps(b0));
        for idx in 0..n_acc {
            let acc = rng.range_f64(0.1, 100.0);
            let bw = rng.range_f64(0.1, 50.0);
            b.accelerator(format!("ACC{idx}"), acc, BytesPerSec::from_gbps(bw))
                .unwrap();
        }
        b.build().unwrap()
    }

    /// A workload for an `n`-IP SoC with normalized fractions.
    fn random_workload(rng: &mut SplitMix64, n: usize) -> Workload {
        let weights: Vec<f64> = (0..n).map(|_| rng.range_f64(0.001, 1.0)).collect();
        let intensities: Vec<f64> = (0..n).map(|_| rng.range_f64(0.01, 1024.0)).collect();
        let total: f64 = weights.iter().sum();
        let mut b = Workload::builder();
        // Assign exact residual to the last IP to defeat rounding.
        let mut assigned = 0.0_f64;
        for i in 0..n {
            let f = if i == n - 1 {
                (1.0 - assigned).max(0.0)
            } else {
                weights[i] / total
            };
            assigned += f;
            b.work(f.min(1.0), intensities[i]).unwrap();
        }
        b.build().unwrap()
    }

    fn random_pair(rng: &mut SplitMix64) -> (SocSpec, Workload) {
        let soc = random_soc(rng);
        let n = soc.ip_count();
        let w = random_workload(rng, n);
        (soc, w)
    }

    /// The time form and performance form are exact duals.
    #[test]
    fn duals_agree() {
        let mut rng = SplitMix64::new(0xD0A1);
        for _ in 0..CASES {
            let (soc, w) = random_pair(&mut rng);
            let t = evaluate(&soc, &w).unwrap().attainable().value();
            let p = attainable_perf_form(&soc, &w).unwrap().value();
            assert!((t - p).abs() <= 1e-9 * t.max(p), "time {t} vs perf {p}");
        }
    }

    /// Pattainable never exceeds any individual component bound.
    #[test]
    fn attainable_below_every_bound() {
        let mut rng = SplitMix64::new(0xB0B1);
        for _ in 0..CASES {
            let (soc, w) = random_pair(&mut rng);
            let eval = evaluate(&soc, &w).unwrap();
            let p = eval.attainable().value();
            for ip in eval.ips() {
                if let Some(bound) = ip.perf_bound {
                    assert!(p <= bound.value() * (1.0 + 1e-12));
                }
            }
            assert!(p <= eval.memory_bound().value() * (1.0 + 1e-12));
        }
    }

    /// More off-chip bandwidth never hurts.
    #[test]
    fn monotone_in_bpeak() {
        let mut rng = SplitMix64::new(0xBEA7);
        for _ in 0..CASES {
            let (soc, w) = random_pair(&mut rng);
            let scale = rng.range_f64(1.0, 10.0);
            let base = evaluate(&soc, &w).unwrap().attainable().value();
            let wider = soc.with_bpeak(soc.bpeak() * scale).unwrap();
            let better = evaluate(&wider, &w).unwrap().attainable().value();
            assert!(better >= base * (1.0 - 1e-12));
        }
    }

    /// Raising any active IP's operational intensity never hurts.
    #[test]
    fn monotone_in_intensity() {
        let mut rng = SplitMix64::new(0x17EA);
        for _ in 0..CASES {
            let (soc, w) = random_pair(&mut rng);
            let scale = rng.range_f64(1.0, 10.0);
            let base = evaluate(&soc, &w).unwrap().attainable().value();
            for i in w.active_ips().collect::<Vec<_>>() {
                let ii = w.assignment(i).unwrap().intensity().value();
                let raised = w.with_intensity(i, ii * scale).unwrap();
                let better = evaluate(&soc, &raised).unwrap().attainable().value();
                assert!(better >= base * (1.0 - 1e-12));
            }
        }
    }

    /// The SRAM extension with all-miss ratios equals the base model,
    /// and any filtering only helps.
    #[test]
    fn sram_extension_brackets_base() {
        let mut rng = SplitMix64::new(0x54A3);
        for _ in 0..CASES {
            let (soc, w) = random_pair(&mut rng);
            let m = rng.next_f64();
            let base = evaluate(&soc, &w).unwrap().attainable().value();
            let all_miss = MemorySideSram::uniform(soc.ip_count(), 1.0)
                .unwrap()
                .evaluate(&soc, &w)
                .unwrap()
                .attainable()
                .value();
            assert!((all_miss - base).abs() <= 1e-9 * base);
            let filtered = MemorySideSram::uniform(soc.ip_count(), m)
                .unwrap()
                .evaluate(&soc, &w)
                .unwrap()
                .attainable()
                .value();
            assert!(filtered >= base * (1.0 - 1e-12));
        }
    }

    /// Serialized execution never beats concurrent execution.
    #[test]
    fn serialized_below_concurrent() {
        let mut rng = SplitMix64::new(0x5E1A);
        for _ in 0..CASES {
            let (soc, w) = random_pair(&mut rng);
            let concurrent = evaluate(&soc, &w).unwrap().attainable().value();
            let serial = evaluate_serialized(&soc, &w).unwrap().attainable().value();
            assert!(serial <= concurrent * (1.0 + 1e-9));
        }
    }

    /// Iavg lies between the smallest and largest active intensity.
    #[test]
    fn iavg_within_active_range() {
        let mut rng = SplitMix64::new(0x1A76);
        for _ in 0..CASES {
            let (_soc, w) = random_pair(&mut rng);
            let iavg = w.iavg().unwrap().value();
            let actives: Vec<f64> = w
                .assignments()
                .iter()
                .filter(|a| a.is_active())
                .map(|a| a.intensity().value())
                .collect();
            let lo = actives.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = actives.iter().cloned().fold(0.0, f64::max);
            assert!(iavg >= lo * (1.0 - 1e-9));
            assert!(iavg <= hi * (1.0 + 1e-9));
        }
    }
}
