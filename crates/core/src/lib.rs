//! # gables-model
//!
//! A faithful implementation of **Gables: A Roofline Model for Mobile
//! SoCs** (Hill & Janapa Reddi, HPCA 2019).
//!
//! Gables retargets the classic Roofline model at a system-on-chip with
//! `N` IP blocks (CPU complex plus accelerators) that operate
//! *concurrently* and share off-chip memory bandwidth. Hardware is modeled
//! by a roofline per IP — peak performance `Ai · Ppeak` and bandwidth `Bi`
//! — plus the shared `Bpeak`; a software usecase apportions work fractions
//! `fi` at operational intensities `Ii` across the IPs. The model computes
//! the usecase's maximal attainable performance and identifies the binding
//! bottleneck.
//!
//! ## Quickstart
//!
//! The paper's Figure 6 walkthrough in four lines:
//!
//! ```
//! use gables_model::two_ip::TwoIpModel;
//!
//! for (name, scenario, expected_gops) in TwoIpModel::figure_6_progression() {
//!     let got = scenario.attainable_gops()?;
//!     assert!((got - expected_gops).abs() < 1e-9, "figure {name}");
//! }
//! # Ok::<(), gables_model::GablesError>(())
//! ```
//!
//! Or with the full N-IP API:
//!
//! ```
//! use gables_model::{evaluate, SocSpec, Workload};
//! use gables_model::units::{BytesPerSec, OpsPerSec};
//!
//! let soc = SocSpec::builder()
//!     .ppeak(OpsPerSec::from_gops(40.0))
//!     .bpeak(BytesPerSec::from_gbps(20.0))
//!     .cpu("CPU", BytesPerSec::from_gbps(6.0))
//!     .accelerator("GPU", 5.0, BytesPerSec::from_gbps(15.0))?
//!     .build()?;
//! let usecase = Workload::two_ip(0.75, 8.0, 8.0)?;
//! let eval = evaluate(&soc, &usecase)?;
//! assert_eq!(eval.attainable().to_gops(), 160.0);
//! # Ok::<(), gables_model::GablesError>(())
//! ```
//!
//! ## Module map
//!
//! * [`units`] — newtyped quantities (Gops/s, GB/s, ops/byte, …).
//! * [`soc`] / [`workload`] — the hardware and software inputs of Table II.
//! * [`model`] — the base N-IP model (Equations 9–14), time form and
//!   performance form.
//! * [`two_ip`] — the Section III-B two-IP primer and appendix scenarios.
//! * [`ext`] — Section V extensions: memory-side SRAM, interconnect
//!   topologies, serialized work.
//! * [`analysis`] — sweeps, balance solvers, sensitivity analysis.
//! * [`baselines`] — Roofline, Amdahl, Gustafson, MultiAmdahl, bottleneck
//!   combinators (Section VI).
//! * [`viz`] — sampled multi-roofline plot data (Section III-C), rendered
//!   by the companion `gables-plot` crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod baselines;
pub mod error;
pub mod explore;
pub mod ext;
pub mod model;
pub mod soc;
pub mod two_ip;
pub mod units;
pub mod viz;
pub mod whatif;
pub mod workload;

pub use error::GablesError;
pub use model::{evaluate, Bottleneck, Evaluation, IpLimit};
pub use soc::{IpSpec, SocSpec};
pub use workload::{WorkAssignment, Workload};

#[cfg(test)]
mod proptests {
    //! Cross-module property tests for the invariants DESIGN.md calls out.

    use proptest::prelude::*;

    use crate::ext::serialized::evaluate_serialized;
    use crate::ext::sram::MemorySideSram;
    use crate::model::{attainable_perf_form, evaluate};
    use crate::soc::SocSpec;
    use crate::units::{BytesPerSec, OpsPerSec};
    use crate::workload::Workload;

    /// Strategy: a plausible 2–5-IP SoC with positive parameters.
    fn soc_strategy() -> impl Strategy<Value = SocSpec> {
        (
            0.5f64..500.0,                       // Ppeak Gops/s
            0.5f64..100.0,                       // Bpeak GB/s
            proptest::collection::vec((0.1f64..100.0, 0.1f64..50.0), 1..5),
            0.1f64..50.0,                        // CPU bandwidth
        )
            .prop_map(|(ppeak, bpeak, accs, b0)| {
                let mut b = SocSpec::builder();
                b.ppeak(OpsPerSec::from_gops(ppeak))
                    .bpeak(BytesPerSec::from_gbps(bpeak))
                    .cpu("CPU", BytesPerSec::from_gbps(b0));
                for (idx, (a, bw)) in accs.iter().enumerate() {
                    b.accelerator(format!("ACC{idx}"), *a, BytesPerSec::from_gbps(*bw))
                        .unwrap();
                }
                b.build().unwrap()
            })
    }

    /// Strategy: a workload for an `n`-IP SoC with normalized fractions.
    fn workload_strategy(n: usize) -> impl Strategy<Value = Workload> {
        (
            proptest::collection::vec(0.0f64..1.0, n),
            proptest::collection::vec(0.01f64..1024.0, n),
        )
            .prop_filter_map("needs nonzero total weight", move |(weights, intensities)| {
                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    return None;
                }
                let mut b = Workload::builder();
                // Assign exact residual to the last IP to defeat rounding.
                let mut assigned = 0.0_f64;
                for i in 0..n {
                    let f = if i == n - 1 {
                        (1.0 - assigned).max(0.0)
                    } else {
                        weights[i] / total
                    };
                    assigned += f;
                    b.work(f.min(1.0), intensities[i]).ok()?;
                }
                b.build().ok()
            })
    }

    fn soc_and_workload() -> impl Strategy<Value = (SocSpec, Workload)> {
        soc_strategy().prop_flat_map(|soc| {
            let n = soc.ip_count();
            (Just(soc), workload_strategy(n))
        })
    }

    proptest! {
        /// The time form and performance form are exact duals.
        #[test]
        fn duals_agree((soc, w) in soc_and_workload()) {
            let t = evaluate(&soc, &w).unwrap().attainable().value();
            let p = attainable_perf_form(&soc, &w).unwrap().value();
            prop_assert!((t - p).abs() <= 1e-9 * t.max(p));
        }

        /// Pattainable never exceeds any individual component bound.
        #[test]
        fn attainable_below_every_bound((soc, w) in soc_and_workload()) {
            let eval = evaluate(&soc, &w).unwrap();
            let p = eval.attainable().value();
            for ip in eval.ips() {
                if let Some(bound) = ip.perf_bound {
                    prop_assert!(p <= bound.value() * (1.0 + 1e-12));
                }
            }
            prop_assert!(p <= eval.memory_bound().value() * (1.0 + 1e-12));
        }

        /// More off-chip bandwidth never hurts.
        #[test]
        fn monotone_in_bpeak((soc, w) in soc_and_workload(), scale in 1.0f64..10.0) {
            let base = evaluate(&soc, &w).unwrap().attainable().value();
            let wider = soc.with_bpeak(soc.bpeak() * scale).unwrap();
            let better = evaluate(&wider, &w).unwrap().attainable().value();
            prop_assert!(better >= base * (1.0 - 1e-12));
        }

        /// Raising any active IP's operational intensity never hurts.
        #[test]
        fn monotone_in_intensity((soc, w) in soc_and_workload(), scale in 1.0f64..10.0) {
            let base = evaluate(&soc, &w).unwrap().attainable().value();
            for i in w.active_ips().collect::<Vec<_>>() {
                let ii = w.assignment(i).unwrap().intensity().value();
                let raised = w.with_intensity(i, ii * scale).unwrap();
                let better = evaluate(&soc, &raised).unwrap().attainable().value();
                prop_assert!(better >= base * (1.0 - 1e-12));
            }
        }

        /// The SRAM extension with all-miss ratios equals the base model,
        /// and any filtering only helps.
        #[test]
        fn sram_extension_brackets_base((soc, w) in soc_and_workload(), m in 0.0f64..1.0) {
            let base = evaluate(&soc, &w).unwrap().attainable().value();
            let all_miss = MemorySideSram::uniform(soc.ip_count(), 1.0).unwrap()
                .evaluate(&soc, &w).unwrap().attainable().value();
            prop_assert!((all_miss - base).abs() <= 1e-9 * base);
            let filtered = MemorySideSram::uniform(soc.ip_count(), m).unwrap()
                .evaluate(&soc, &w).unwrap().attainable().value();
            prop_assert!(filtered >= base * (1.0 - 1e-12));
        }

        /// Serialized execution never beats concurrent execution.
        #[test]
        fn serialized_below_concurrent((soc, w) in soc_and_workload()) {
            let concurrent = evaluate(&soc, &w).unwrap().attainable().value();
            let serial = evaluate_serialized(&soc, &w).unwrap().attainable().value();
            prop_assert!(serial <= concurrent * (1.0 + 1e-9));
        }

        /// Iavg lies between the smallest and largest active intensity.
        #[test]
        fn iavg_within_active_range((_soc, w) in soc_and_workload()) {
            let iavg = w.iavg().unwrap().value();
            let actives: Vec<f64> = w.assignments().iter()
                .filter(|a| a.is_active())
                .map(|a| a.intensity().value())
                .collect();
            let lo = actives.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = actives.iter().cloned().fold(0.0, f64::max);
            prop_assert!(iavg >= lo * (1.0 - 1e-9));
            prop_assert!(iavg <= hi * (1.0 + 1e-9));
        }
    }
}
