//! Design-space exploration: grids, cost models, and Pareto frontiers.
//!
//! The paper's opening question — "Which IPs should my SoC include and
//! roughly how big?" — is a multi-objective search: performance against
//! silicon/DRAM cost. This module enumerates candidate SoCs over a
//! parameter grid, prices them with a simple linear cost model, evaluates
//! a target usecase on each, and extracts the Pareto frontier.

use crate::error::GablesError;
use crate::model::{evaluate, Bottleneck};
use crate::par::{self, Parallelism};
use crate::soc::SocSpec;
use crate::units::{Acceleration, BytesPerSec, OpsPerSec};
use crate::workload::Workload;

/// A linear cost model in arbitrary cost units (area, dollars, …).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Fixed cost of the base SoC (CPU complex, fabrics, pads).
    pub base: f64,
    /// Cost per Gops/s of accelerator peak performance.
    pub per_accelerator_gops: f64,
    /// Cost per GB/s of accelerator port bandwidth.
    pub per_port_gbps: f64,
    /// Cost per GB/s of off-chip (DRAM interface) bandwidth.
    pub per_dram_gbps: f64,
}

impl CostModel {
    /// A placeholder model with unit weights.
    pub fn unit() -> Self {
        Self {
            base: 0.0,
            per_accelerator_gops: 1.0,
            per_port_gbps: 1.0,
            per_dram_gbps: 1.0,
        }
    }

    /// Prices a two-IP candidate.
    fn price(&self, acceleration: f64, ppeak_gops: f64, b1_gbps: f64, bpeak_gbps: f64) -> f64 {
        self.base
            + self.per_accelerator_gops * acceleration * ppeak_gops
            + self.per_port_gbps * b1_gbps
            + self.per_dram_gbps * bpeak_gbps
    }
}

/// The candidate grid for a CPU-plus-one-accelerator SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateGrid {
    /// Fixed CPU-complex peak, Gops/s.
    pub ppeak_gops: f64,
    /// Fixed CPU port bandwidth, GB/s.
    pub b0_gbps: f64,
    /// Accelerator acceleration factors to try.
    pub accelerations: Vec<f64>,
    /// Accelerator port bandwidths to try, GB/s.
    pub b1_gbps: Vec<f64>,
    /// Off-chip bandwidths to try, GB/s.
    pub bpeak_gbps: Vec<f64>,
}

/// One explored candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The candidate hardware.
    pub soc: SocSpec,
    /// Cost under the supplied [`CostModel`].
    pub cost: f64,
    /// Attainable performance on the target usecase, Gops/s.
    pub perf_gops: f64,
    /// The binding component.
    pub bottleneck: Bottleneck,
}

impl DesignPoint {
    /// Whether `self` dominates `other`: no worse on both objectives and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        (self.cost <= other.cost && self.perf_gops >= other.perf_gops)
            && (self.cost < other.cost || self.perf_gops > other.perf_gops)
    }
}

/// Evaluates every grid candidate on the usecase.
///
/// # Errors
///
/// * [`GablesError::InvalidParameter`] for an empty grid axis or invalid
///   fixed parameters.
/// * [`GablesError::InvalidAxisParameter`] naming the axis and index of
///   the first NaN/∞/non-positive axis value — the whole grid is
///   validated up front, before any candidate is evaluated.
/// * Propagates model errors.
pub fn explore(
    grid: &CandidateGrid,
    cost: &CostModel,
    usecase: &Workload,
) -> Result<Vec<DesignPoint>, GablesError> {
    explore_with(grid, cost, usecase, Parallelism::Auto)
}

/// [`explore`] with an explicit [`Parallelism`] policy.
///
/// Candidates are evaluated over a flat index space that mirrors the
/// serial nested loop (`accelerations` outermost, `bpeak_gbps`
/// innermost), so the returned points are in the same order — and carry
/// the same bits — for every worker count.
///
/// # Errors
///
/// Same as [`explore`]; with multiple workers, the reported error is the
/// one the serial loop would have hit first.
pub fn explore_with(
    grid: &CandidateGrid,
    cost: &CostModel,
    usecase: &Workload,
    parallelism: Parallelism,
) -> Result<Vec<DesignPoint>, GablesError> {
    validate_axis("accelerations", &grid.accelerations, |v| {
        Acceleration::new(v).map(|_| ())
    })?;
    validate_axis("b1_gbps", &grid.b1_gbps, |v| {
        BytesPerSec::try_from_gbps(v).map(|_| ())
    })?;
    validate_axis("bpeak_gbps", &grid.bpeak_gbps, |v| {
        BytesPerSec::try_from_gbps(v).map(|_| ())
    })?;
    // The invariant candidate parts (fixed Ppeak/B0, string names, the
    // CPU-at-index-0 shape) are built and validated exactly once; each
    // grid point then clones the template and overwrites only its three
    // varying fields, instead of re-running the full builder per point.
    let template = SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(grid.ppeak_gops))
        .bpeak(BytesPerSec::from_gbps(grid.bpeak_gbps[0]))
        .cpu("CPU", BytesPerSec::from_gbps(grid.b0_gbps))
        .accelerator(
            "ACC",
            grid.accelerations[0],
            BytesPerSec::from_gbps(grid.b1_gbps[0]),
        )?
        .build()?;
    let nb = grid.b1_gbps.len();
    let np = grid.bpeak_gbps.len();
    let total = grid.accelerations.len() * nb * np;
    par::try_map(parallelism, total, |idx| {
        let a = grid.accelerations[idx / (nb * np)];
        let b1 = grid.b1_gbps[(idx / np) % nb];
        let bpeak = grid.bpeak_gbps[idx % np];
        let mut soc = template.clone();
        soc.set_bpeak_unchecked(BytesPerSec::from_gbps(bpeak));
        soc.set_ip_unchecked(1, Acceleration::new(a)?, BytesPerSec::from_gbps(b1));
        let eval = evaluate(&soc, usecase)?;
        Ok(DesignPoint {
            cost: cost.price(a, grid.ppeak_gops, b1, bpeak),
            perf_gops: eval.attainable().to_gops(),
            bottleneck: eval.bottleneck(),
            soc,
        })
    })
}

/// Validates one grid axis up front through a fallible unit constructor,
/// translating the first failure into a closed `invalid_parameter` error
/// that names the axis and the offending index. An empty axis is rejected
/// the same way the pre-validation explorer did.
fn validate_axis(
    axis: &'static str,
    values: &[f64],
    construct: impl Fn(f64) -> Result<(), GablesError>,
) -> Result<(), GablesError> {
    if values.is_empty() {
        return Err(GablesError::invalid_parameter(
            "candidate grid",
            0.0,
            "every grid axis needs at least one value",
        ));
    }
    for (index, &value) in values.iter().enumerate() {
        if let Err(err) = construct(value) {
            let reason = match err {
                GablesError::InvalidParameter { reason, .. } => reason,
                _ => "must be a valid axis value",
            };
            return Err(GablesError::InvalidAxisParameter {
                axis,
                index,
                value,
                reason,
            });
        }
    }
    Ok(())
}

/// Extracts the Pareto frontier (min cost, max performance), sorted by
/// ascending cost. Duplicate-objective points keep one representative.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(b.perf_gops.total_cmp(&a.perf_gops))
    });
    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best_perf = f64::NEG_INFINITY;
    for p in sorted {
        if p.perf_gops > best_perf {
            frontier.push(p.clone());
            best_perf = p.perf_gops;
        }
    }
    frontier
}

/// The cheapest frontier point meeting a performance floor, if any.
pub fn cheapest_meeting(points: &[DesignPoint], min_gops: f64) -> Option<DesignPoint> {
    pareto_frontier(points)
        .into_iter()
        .find(|p| p.perf_gops >= min_gops)
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_grid(rng: &mut SplitMix64) -> CandidateGrid {
        let dims = |rng: &mut SplitMix64, lo: f64, hi: f64| {
            let n = rng.range_usize(1, 3);
            (0..n).map(|_| rng.range_f64(lo, hi)).collect::<Vec<_>>()
        };
        CandidateGrid {
            ppeak_gops: rng.range_f64(1.0, 100.0),
            b0_gbps: rng.range_f64(1.0, 30.0),
            accelerations: dims(rng, 0.5, 50.0),
            b1_gbps: dims(rng, 1.0, 40.0),
            bpeak_gbps: dims(rng, 2.0, 60.0),
        }
    }

    /// The frontier never contains a dominated point and is sorted by
    /// strictly increasing cost and performance, for arbitrary grids
    /// and workloads.
    #[test]
    fn frontier_is_sound() {
        let mut rng = SplitMix64::new(0xF407);
        for _ in 0..48 {
            let grid = random_grid(&mut rng);
            let f = rng.next_f64();
            let i0 = rng.range_f64(0.1, 256.0);
            let i1 = rng.range_f64(0.1, 256.0);
            let w = crate::workload::Workload::two_ip(f, i0, i1).unwrap();
            let points = explore(&grid, &CostModel::unit(), &w).unwrap();
            let frontier = pareto_frontier(&points);
            assert!(!frontier.is_empty());
            for fp in &frontier {
                for p in &points {
                    assert!(!p.dominates(fp));
                }
            }
            for pair in frontier.windows(2) {
                assert!(pair[1].cost > pair[0].cost);
                assert!(pair[1].perf_gops > pair[0].perf_gops);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CandidateGrid {
        CandidateGrid {
            ppeak_gops: 40.0,
            b0_gbps: 6.0,
            accelerations: vec![1.0, 2.0, 5.0, 10.0],
            b1_gbps: vec![5.0, 15.0, 30.0],
            bpeak_gbps: vec![10.0, 20.0, 40.0],
        }
    }

    fn usecase() -> Workload {
        Workload::two_ip(0.75, 8.0, 8.0).unwrap()
    }

    #[test]
    fn explore_covers_the_grid() {
        let points = explore(&grid(), &CostModel::unit(), &usecase()).unwrap();
        assert_eq!(points.len(), 4 * 3 * 3);
    }

    #[test]
    fn frontier_has_no_dominated_points() {
        let points = explore(&grid(), &CostModel::unit(), &usecase()).unwrap();
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        for f in &frontier {
            for p in &points {
                assert!(!p.dominates(f), "{p:?} dominates frontier point {f:?}");
            }
        }
        // Frontier sorted by cost with strictly rising performance.
        for pair in frontier.windows(2) {
            assert!(pair[1].cost > pair[0].cost);
            assert!(pair[1].perf_gops > pair[0].perf_gops);
        }
    }

    #[test]
    fn figure_6d_design_sits_on_the_frontier() {
        // A = 5, B1 = 15, Bpeak = 20 (the paper's balanced design) should
        // not be dominated when the usecase is its own workload.
        let mut g = grid();
        g.b1_gbps = vec![5.0, 15.0, 30.0];
        g.bpeak_gbps = vec![10.0, 20.0, 30.0];
        let points = explore(&g, &CostModel::unit(), &usecase()).unwrap();
        let balanced = points
            .iter()
            .find(|p| {
                (p.soc.bpeak().to_gbps() - 20.0).abs() < 1e-9
                    && (p.soc.ip(1).unwrap().acceleration().value() - 5.0).abs() < 1e-9
                    && (p.soc.ip(1).unwrap().bandwidth().to_gbps() - 15.0).abs() < 1e-9
            })
            .expect("balanced candidate is in the grid");
        assert!((balanced.perf_gops - 160.0).abs() < 1e-9);
        for p in &points {
            assert!(
                !p.dominates(balanced),
                "{p:?} dominates the balanced design"
            );
        }
    }

    #[test]
    fn cheapest_meeting_finds_the_knee() {
        let points = explore(&grid(), &CostModel::unit(), &usecase()).unwrap();
        let p = cheapest_meeting(&points, 100.0).expect("some design reaches 100 Gops/s");
        assert!(p.perf_gops >= 100.0);
        // Nothing cheaper reaches the floor.
        for q in &points {
            if q.perf_gops >= 100.0 {
                assert!(q.cost >= p.cost - 1e-9);
            }
        }
        assert!(cheapest_meeting(&points, 1.0e9).is_none());
    }

    #[test]
    fn overprovisioned_bandwidth_is_dominated() {
        // Figure 6c's lesson: 30 GB/s with the same accelerator and the
        // poor-reuse usecase buys nothing over 20 but costs more.
        let g = CandidateGrid {
            ppeak_gops: 40.0,
            b0_gbps: 6.0,
            accelerations: vec![5.0],
            b1_gbps: vec![15.0],
            bpeak_gbps: vec![20.0, 30.0],
        };
        let w = Workload::two_ip(0.75, 8.0, 0.1).unwrap();
        let points = explore(&g, &CostModel::unit(), &w).unwrap();
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier.len(), 1);
        assert!((frontier[0].soc.bpeak().to_gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_grid_axis_is_rejected() {
        let mut g = grid();
        g.accelerations.clear();
        assert!(explore(&g, &CostModel::unit(), &usecase()).is_err());
    }

    #[test]
    fn invalid_axis_value_names_axis_and_index() {
        let mut g = grid();
        g.b1_gbps = vec![5.0, f64::NAN, 10.0];
        let err = explore(&g, &CostModel::unit(), &usecase()).unwrap_err();
        match &err {
            GablesError::InvalidAxisParameter { axis, index, .. } => {
                assert_eq!(*axis, "b1_gbps");
                assert_eq!(*index, 1);
            }
            other => panic!("expected InvalidAxisParameter, got {other:?}"),
        }
        assert_eq!(err.kind().code(), "invalid_parameter");
        let msg = err.to_string();
        assert!(msg.contains("b1_gbps[1]"), "message was: {msg}");

        let mut g = grid();
        g.accelerations[0] = -1.0;
        let err = explore(&g, &CostModel::unit(), &usecase()).unwrap_err();
        assert!(matches!(
            err,
            GablesError::InvalidAxisParameter {
                axis: "accelerations",
                index: 0,
                ..
            }
        ));
    }

    #[test]
    fn frontier_of_empty_input_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
        assert!(cheapest_meeting(&[], 0.0).is_none());
    }

    #[test]
    fn single_point_grid_is_its_own_frontier() {
        let g = CandidateGrid {
            ppeak_gops: 40.0,
            b0_gbps: 6.0,
            accelerations: vec![5.0],
            b1_gbps: vec![15.0],
            bpeak_gbps: vec![20.0],
        };
        let points = explore(&g, &CostModel::unit(), &usecase()).unwrap();
        assert_eq!(points.len(), 1);
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0], points[0]);
    }

    #[test]
    fn duplicate_and_tied_points_keep_one_representative() {
        let base = explore(&grid(), &CostModel::unit(), &usecase()).unwrap();
        // Duplicate every point: the frontier must not grow.
        let mut doubled = base.clone();
        doubled.extend(base.iter().cloned());
        let from_single = pareto_frontier(&base);
        let from_doubled = pareto_frontier(&doubled);
        assert_eq!(from_single.len(), from_doubled.len());
        // Tied on both objectives (same cost, same perf, different SoC):
        // exactly one survives.
        let mut tied = vec![base[0].clone(), base[0].clone()];
        tied[1].soc = base[1].soc.clone();
        let frontier = pareto_frontier(&tied);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].cost, base[0].cost);
    }

    #[test]
    fn cheapest_meeting_unreachable_target_is_none() {
        let points = explore(&grid(), &CostModel::unit(), &usecase()).unwrap();
        let best = points.iter().map(|p| p.perf_gops).fold(0.0, f64::max);
        assert!(cheapest_meeting(&points, best + 1.0).is_none());
        // At exactly the best attainable performance, it still matches.
        assert!(cheapest_meeting(&points, best).is_some());
    }

    #[test]
    fn dominates_relation() {
        let soc = grid();
        let mk = |cost, perf| DesignPoint {
            soc: SocSpec::builder()
                .ppeak(OpsPerSec::from_gops(soc.ppeak_gops))
                .bpeak(BytesPerSec::from_gbps(10.0))
                .cpu("CPU", BytesPerSec::from_gbps(6.0))
                .build()
                .unwrap(),
            cost,
            perf_gops: perf,
            bottleneck: Bottleneck::Memory,
        };
        assert!(mk(1.0, 10.0).dominates(&mk(2.0, 5.0)));
        assert!(mk(1.0, 10.0).dominates(&mk(1.0, 5.0)));
        assert!(!mk(1.0, 10.0).dominates(&mk(1.0, 10.0))); // equal: no
        assert!(!mk(2.0, 10.0).dominates(&mk(1.0, 5.0))); // trade-off
    }
}
