//! In-process performance observability: a sampling profiler over the
//! [`crate::obs`] span stack, plus process-wide allocation counters.
//!
//! # Sampling design
//!
//! Every *active* span (one with a collector installed — inert spans
//! cost nothing) publishes its full semicolon-joined name path
//! (`main;dispatch;sweep;worker`) into a per-thread slot registered in a
//! global registry. Two sources feed a bounded sample table while a
//! profiling [`Session`] is running:
//!
//! 1. **Structure samples** — every span *enter* buffers one sample of
//!    the entering path in the thread's own slot. This guarantees a
//!    non-empty, structurally complete profile even for
//!    sub-millisecond commands, and makes the *set* of observed stack
//!    paths deterministic in span structure: the same command profiled
//!    under `--threads serial` and `--threads 2` yields the same frame
//!    paths (worker spans are all named `worker` regardless of chunk),
//!    though counts may differ.
//! 2. **Timer samples** — a background sampler thread walks the slot
//!    registry every [`SampleConfig::interval`], drains each thread's
//!    buffered structure samples, and records the thread's current
//!    path, weighting long-running frames.
//!
//! Overhead is *deterministic in span structure*: the per-span cost is
//! one lock of the thread's own slot (contended only by the sampler's
//! periodic drain, never by other application threads) plus two
//! `Arc` clones — no stack unwinding, no signals, no global lock on
//! the span path, no dependence on where the program counter happens
//! to be. Aggregation into the shared sample table happens on the
//! sampler thread, off the application's critical path. When no
//! session is active the only per-span cost beyond PR-5 tracing is the
//! slot store and one relaxed atomic load.
//!
//! Sessions are process-global and one-at-a-time ([`start`] returns
//! [`ProfError::Busy`] otherwise); the sample table is bounded
//! ([`SampleConfig::max_distinct`] distinct stacks, overflow counted in
//! [`Profile::samples_dropped`]), so memory stays constant regardless
//! of duration.
//!
//! # Allocation counters
//!
//! [`CountingAllocator`] wraps [`std::alloc::System`] and counts every
//! allocation and requested byte process-wide (installed as the
//! `#[global_allocator]` in [`crate`]). [`AllocScope`] snapshots the
//! monotone totals to report deltas for a region; nesting works
//! naturally because deltas are differences of a shared monotone
//! counter. Under concurrency a scope attributes *process-wide*
//! allocations to itself, which is the honest upper bound a counting
//! allocator can give without thread-local bookkeeping.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::obs::SpanRecord;

// ---------------------------------------------------------------------------
// Allocation counting
// ---------------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Installed as the
/// workspace-wide `#[global_allocator]` so every Gables binary can
/// report allocations-per-operation; the only cost over
/// [`std::alloc::System`] is two relaxed atomic increments per
/// allocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: delegates all allocation to `System`; the counters are plain
// relaxed atomics and never touch the allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Monotone process-wide allocation totals (counts and requested
/// bytes). Bytes are *requested*, not resident: frees are not
/// subtracted, so totals only grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocTotals {
    /// Number of allocation calls (alloc, alloc_zeroed, realloc).
    pub allocs: u64,
    /// Total bytes requested across those calls.
    pub bytes: u64,
}

impl AllocTotals {
    /// The delta from an earlier snapshot (saturating, though the
    /// counters are monotone in practice).
    pub fn since(self, earlier: AllocTotals) -> AllocTotals {
        AllocTotals {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// The current process-wide allocation totals.
pub fn alloc_totals() -> AllocTotals {
    AllocTotals {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// A scoped allocation counter: snapshots the global totals at
/// [`AllocScope::begin`] and reports the delta on demand. Scopes nest
/// freely — an inner scope's delta is always contained in the outer's.
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start: AllocTotals,
}

impl AllocScope {
    /// Opens a scope at the current totals.
    pub fn begin() -> Self {
        AllocScope {
            start: alloc_totals(),
        }
    }

    /// Allocations and bytes since the scope opened.
    pub fn delta(&self) -> AllocTotals {
        alloc_totals().since(self.start)
    }
}

// ---------------------------------------------------------------------------
// Per-thread frame-path slots
// ---------------------------------------------------------------------------

/// Per-thread pending structure samples are bounded; the sampler tick
/// drains them every [`SampleConfig::interval`], so this is only hit if
/// a thread enters thousands of spans between two ticks.
const MAX_PENDING: usize = 4096;

/// A thread's sampling state behind one (practically uncontended) lock:
/// the published "current span path" read by the sampler, plus the
/// structure samples taken since the last drain.
#[derive(Debug, Default)]
struct SlotState {
    current: Option<Arc<str>>,
    pending: Vec<Arc<str>>,
    overflow: u64,
}

/// A thread's sampling slot. Only its own thread and the sampler ever
/// lock it, so span enter/exit never contend on a global lock — that
/// keeps profiling overhead flat under concurrent serving.
#[derive(Debug, Default)]
struct ThreadSlot {
    state: Mutex<SlotState>,
}

static REGISTRY: Mutex<Vec<Weak<ThreadSlot>>> = Mutex::new(Vec::new());

/// Owns the thread's slot; dropping it (thread exit) flushes any
/// pending structure samples so short-lived worker threads are not
/// lost between sampler ticks.
#[derive(Debug)]
struct SlotHandle(Arc<ThreadSlot>);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        let (pending, overflow) = {
            let mut state = self.0.state.lock().expect("prof slot poisoned");
            (
                std::mem::take(&mut state.pending),
                std::mem::take(&mut state.overflow),
            )
        };
        record_batch(&pending, overflow);
    }
}

thread_local! {
    static SLOT: OnceCell<SlotHandle> = const { OnceCell::new() };
}

fn with_slot(f: impl FnOnce(&ThreadSlot)) {
    SLOT.with(|cell| {
        let handle = cell.get_or_init(|| {
            let slot = Arc::new(ThreadSlot::default());
            let mut registry = REGISTRY.lock().expect("prof registry poisoned");
            registry.retain(|w| w.strong_count() > 0);
            registry.push(Arc::downgrade(&slot));
            SlotHandle(slot)
        });
        f(&handle.0);
    });
}

/// Span-enter hook (called by [`crate::obs`] for every active span):
/// publishes the new path and, while a session is running, buffers one
/// structure sample of it in the thread's own slot.
pub(crate) fn on_span_enter(path: &Arc<str>) {
    with_slot(|slot| {
        let mut state = slot.state.lock().expect("prof slot poisoned");
        state.current = Some(Arc::clone(path));
        if ACTIVE.load(Ordering::Relaxed) {
            if state.pending.len() < MAX_PENDING {
                state.pending.push(Arc::clone(path));
            } else {
                state.overflow += 1;
            }
        }
    });
}

/// Span-exit hook: restores the thread's published path to the parent
/// span's (or clears it at the root).
pub(crate) fn on_span_exit(prev: Option<&Arc<str>>) {
    with_slot(|slot| {
        slot.state.lock().expect("prof slot poisoned").current = prev.map(Arc::clone);
    });
}

// ---------------------------------------------------------------------------
// Sampling sessions
// ---------------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SAMPLES_TOTAL: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

#[derive(Debug)]
struct Sink {
    counts: HashMap<Arc<str>, u64>,
    total: u64,
    dropped: u64,
    max_distinct: usize,
}

/// Records a drained batch into the sink under one lock acquisition.
/// `overflowed` samples were taken but lost to a full pending buffer;
/// they count toward the total and the dropped tally.
fn record_batch(paths: &[Arc<str>], overflowed: u64) {
    if paths.is_empty() && overflowed == 0 {
        return;
    }
    let mut sink = SINK.lock().expect("prof sink poisoned");
    let Some(sink) = sink.as_mut() else {
        return;
    };
    let taken = paths.len() as u64 + overflowed;
    sink.total += taken;
    sink.dropped += overflowed;
    SAMPLES_TOTAL.fetch_add(taken, Ordering::Relaxed);
    for path in paths {
        if let Some(count) = sink.counts.get_mut(path) {
            *count += 1;
        } else if sink.counts.len() >= sink.max_distinct {
            sink.dropped += 1;
        } else {
            sink.counts.insert(Arc::clone(path), 1);
        }
    }
}

fn registered_slots() -> Vec<Arc<ThreadSlot>> {
    let mut registry = REGISTRY.lock().expect("prof registry poisoned");
    registry.retain(|w| w.strong_count() > 0);
    registry.iter().filter_map(Weak::upgrade).collect()
}

/// One sampler tick: drains every thread's buffered structure samples
/// and, when `include_current` (the periodic tick), adds one timer
/// sample of each thread's current path.
fn drain_slots(include_current: bool) {
    let mut batch: Vec<Arc<str>> = Vec::new();
    let mut overflowed = 0u64;
    for slot in registered_slots() {
        let mut state = slot.state.lock().expect("prof slot poisoned");
        if include_current {
            if let Some(current) = &state.current {
                batch.push(Arc::clone(current));
            }
        }
        batch.append(&mut state.pending);
        overflowed += std::mem::take(&mut state.overflow);
    }
    record_batch(&batch, overflowed);
}

/// Configuration for a profiling [`Session`].
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Timer-sample period. Clamped to 100µs..=100ms.
    pub interval: Duration,
    /// Maximum distinct stack paths retained; further *new* paths are
    /// counted in [`Profile::samples_dropped`] instead.
    pub max_distinct: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            interval: Duration::from_millis(1),
            max_distinct: 8192,
        }
    }
}

/// Why a profiling session could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfError {
    /// Another session is already running (sessions are process-global
    /// and one-at-a-time).
    Busy,
}

impl std::fmt::Display for ProfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfError::Busy => write!(f, "a profiling session is already running"),
        }
    }
}

impl std::error::Error for ProfError {}

/// A running profiling session. Stop it with [`Session::stop`] to get
/// the [`Profile`]; dropping it unstopped shuts the sampler down and
/// discards the data.
#[derive(Debug)]
pub struct Session {
    sampler: Option<std::thread::JoinHandle<()>>,
    started: Instant,
    interval: Duration,
    alloc_start: AllocTotals,
}

/// Starts the process-global profiling session, spawning the background
/// sampler thread. Returns [`ProfError::Busy`] if one is already
/// running.
pub fn start(config: SampleConfig) -> Result<Session, ProfError> {
    if ACTIVE
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Err(ProfError::Busy);
    }
    let interval = config
        .interval
        .clamp(Duration::from_micros(100), Duration::from_millis(100));
    // Discard structure samples buffered after the previous session's
    // final drain — they belong to spans profiled by that session.
    for slot in registered_slots() {
        let mut state = slot.state.lock().expect("prof slot poisoned");
        state.pending.clear();
        state.overflow = 0;
    }
    *SINK.lock().expect("prof sink poisoned") = Some(Sink {
        counts: HashMap::new(),
        total: 0,
        dropped: 0,
        max_distinct: config.max_distinct.max(1),
    });
    let sampler = std::thread::Builder::new()
        .name("gables-prof".to_string())
        .spawn(move || {
            while ACTIVE.load(Ordering::Relaxed) {
                drain_slots(true);
                std::thread::sleep(interval);
            }
        })
        .expect("failed to spawn profiler sampler thread");
    Ok(Session {
        sampler: Some(sampler),
        started: Instant::now(),
        interval,
        alloc_start: alloc_totals(),
    })
}

impl Session {
    /// Stops the sampler and returns the aggregated profile.
    pub fn stop(mut self) -> Profile {
        self.finish()
    }

    fn finish(&mut self) -> Profile {
        ACTIVE.store(false, Ordering::SeqCst);
        if let Some(handle) = self.sampler.take() {
            let _ = handle.join();
        }
        // Final drain: structure samples buffered since the last tick
        // (live threads; exited threads flushed via their slot's Drop).
        drain_slots(false);
        let sink = SINK.lock().expect("prof sink poisoned").take();
        let (counts, total, dropped) = match sink {
            Some(s) => (s.counts, s.total, s.dropped),
            None => (HashMap::new(), 0, 0),
        };
        let mut samples: Vec<(String, u64)> = counts
            .into_iter()
            .map(|(path, count)| (path.as_ref().to_string(), count))
            .collect();
        samples.sort();
        Profile {
            samples,
            samples_total: total,
            samples_dropped: dropped,
            duration: self.started.elapsed(),
            interval: self.interval,
            alloc: alloc_totals().since(self.alloc_start),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.sampler.is_some() {
            let _ = self.finish();
        }
    }
}

/// An aggregated profile: folded-stack counts plus session metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Distinct semicolon-joined stack paths with sample counts, sorted
    /// by path for deterministic output.
    pub samples: Vec<(String, u64)>,
    /// Samples recorded (structure + timer), including dropped ones.
    pub samples_total: u64,
    /// Samples whose *new* stack path exceeded the distinct-path bound.
    pub samples_dropped: u64,
    /// Wall-clock duration of the session.
    pub duration: Duration,
    /// Effective timer-sample period.
    pub interval: Duration,
    /// Process-wide allocations during the session.
    pub alloc: AllocTotals,
}

impl Profile {
    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Collapsed-stack text (`path;to;frame count\n` per line), directly
    /// consumable by `flamegraph.pl` / `inferno-flamegraph`.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (path, count) in &self.samples {
            out.push_str(path);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The profile as a JSON document (stacks, totals, alloc counters,
    /// session metadata).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "samples_total".to_string(),
                Json::num(self.samples_total as f64),
            ),
            (
                "samples_dropped".to_string(),
                Json::num(self.samples_dropped as f64),
            ),
            (
                "duration_us".to_string(),
                Json::num(self.duration.as_secs_f64() * 1e6),
            ),
            (
                "interval_us".to_string(),
                Json::num(self.interval.as_secs_f64() * 1e6),
            ),
            ("allocs".to_string(), Json::num(self.alloc.allocs as f64)),
            (
                "alloc_bytes".to_string(),
                Json::num(self.alloc.bytes as f64),
            ),
            (
                "stacks".to_string(),
                Json::Array(
                    self.samples
                        .iter()
                        .map(|(path, count)| {
                            Json::Object(vec![
                                ("stack".to_string(), Json::str(path)),
                                ("count".to_string(), Json::num(*count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Cumulative samples recorded across all sessions since process start
/// (feeds `gables_profile_samples_total`).
pub fn samples_recorded_total() -> u64 {
    SAMPLES_TOTAL.load(Ordering::Relaxed)
}

/// Prometheus text exposition for the process-global profiler and
/// allocator counters, appended to the server's `/v1/metrics?format=prom`
/// output.
pub fn prometheus_text() -> String {
    let alloc = alloc_totals();
    format!(
        "# HELP gables_profile_samples_total Profiler samples recorded since process start.\n\
         # TYPE gables_profile_samples_total counter\n\
         gables_profile_samples_total {}\n\
         # HELP gables_allocs_total Heap allocations since process start.\n\
         # TYPE gables_allocs_total counter\n\
         gables_allocs_total {}\n\
         # HELP gables_alloc_bytes_total Heap bytes requested since process start.\n\
         # TYPE gables_alloc_bytes_total counter\n\
         gables_alloc_bytes_total {}\n",
        samples_recorded_total(),
        alloc.allocs,
        alloc.bytes,
    )
}

// ---------------------------------------------------------------------------
// Self-time over span records
// ---------------------------------------------------------------------------

/// Per-span-name *self time* (duration minus direct children, clamped
/// at zero) aggregated over a trace's span records, sorted by
/// descending self time then name. Summed across threads this is the
/// trace's CPU-busy signal: under parallel workers it exceeds wall
/// latency, which is exactly the parallelism it measures.
pub fn self_times_us(spans: &[SpanRecord]) -> Vec<(String, f64)> {
    let mut child_sum: HashMap<u64, f64> = HashMap::new();
    for s in spans {
        *child_sum.entry(s.parent_id).or_default() += s.dur_us;
    }
    let mut by_name: HashMap<&str, f64> = HashMap::new();
    for s in spans {
        let children = child_sum.get(&s.span_id).copied().unwrap_or(0.0);
        *by_name.entry(s.name.as_str()).or_default() += (s.dur_us - children).max(0.0);
    }
    let mut out: Vec<(String, f64)> = by_name
        .into_iter()
        .map(|(name, us)| (name.to_string(), us))
        .collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

/// Total self time across a trace's spans in microseconds — the
/// `cpu_busy_us` reported per request by the flight recorder.
pub fn cpu_busy_us(spans: &[SpanRecord]) -> f64 {
    self_times_us(spans).iter().map(|(_, us)| us).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs;

    /// Profiling sessions are process-global; tests that start one must
    /// serialize against each other.
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    fn lock_session() -> std::sync::MutexGuard<'static, ()> {
        SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn alloc_scope_nests_and_round_trips() {
        let outer = AllocScope::begin();
        let a: Vec<u64> = vec![0; 1024];
        let inner = AllocScope::begin();
        let b: Vec<u64> = vec![0; 2048];
        let inner_delta = inner.delta();
        let outer_delta = outer.delta();
        // Other test threads may allocate concurrently, so the counters
        // are lower bounds — but the nesting invariants are exact.
        assert!(inner_delta.allocs >= 1, "inner saw b's allocation");
        assert!(inner_delta.bytes >= 2048 * 8);
        assert!(outer_delta.allocs > inner_delta.allocs);
        assert!(outer_delta.bytes >= inner_delta.bytes + 1024 * 8);
        drop((a, b));
        // Frees never shrink the totals (monotone counters).
        let after = outer.delta();
        assert!(after.allocs >= outer_delta.allocs);
        assert!(after.bytes >= outer_delta.bytes);
    }

    #[test]
    fn session_is_one_at_a_time() {
        let _guard = lock_session();
        let first = start(SampleConfig::default()).expect("first session starts");
        assert_eq!(start(SampleConfig::default()).unwrap_err(), ProfError::Busy);
        first.stop();
        let second = start(SampleConfig::default()).expect("restart after stop");
        drop(second);
        // Drop releases the global slot too.
        start(SampleConfig::default())
            .expect("restart after drop")
            .stop();
    }

    #[test]
    fn structure_samples_capture_span_paths() {
        let _guard = lock_session();
        let session = start(SampleConfig::default()).expect("session starts");
        let collector = obs::SpanCollector::new(64);
        {
            let _root = obs::attach_root(&collector, 7, "main");
            let _dispatch = obs::span("dispatch");
            let _cmd = obs::span("sweep");
        }
        let profile = session.stop();
        let paths: Vec<&str> = profile.samples.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"main"), "paths: {paths:?}");
        assert!(paths.contains(&"main;dispatch"), "paths: {paths:?}");
        assert!(paths.contains(&"main;dispatch;sweep"), "paths: {paths:?}");
        let folded = profile.to_folded();
        for line in folded.lines() {
            let (path, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!path.is_empty());
            count.parse::<u64>().expect("count is an integer");
        }
        assert!(profile.samples_total >= 3);
    }

    #[test]
    fn sample_table_bound_counts_dropped_paths() {
        let _guard = lock_session();
        let session = start(SampleConfig {
            interval: Duration::from_millis(50),
            max_distinct: 1,
        })
        .expect("session starts");
        let collector = obs::SpanCollector::new(64);
        {
            let _root = obs::attach_root(&collector, 9, "main");
            let _a = obs::span("alpha");
        }
        let profile = session.stop();
        assert_eq!(profile.samples.len(), 1, "bounded to one distinct path");
        assert!(profile.samples_dropped >= 1, "overflow path was counted");
        assert_eq!(
            profile.samples_total,
            profile.samples.iter().map(|(_, c)| c).sum::<u64>() + profile.samples_dropped
        );
    }

    #[test]
    fn self_times_subtract_children_and_sum_to_cpu_busy() {
        let spans = vec![
            SpanRecord {
                name: "root".to_string(),
                trace_id: 1,
                span_id: 10,
                parent_id: 0,
                start_us: 0.0,
                dur_us: 100.0,
            },
            SpanRecord {
                name: "child".to_string(),
                trace_id: 1,
                span_id: 11,
                parent_id: 10,
                start_us: 10.0,
                dur_us: 60.0,
            },
            SpanRecord {
                name: "child".to_string(),
                trace_id: 1,
                span_id: 12,
                parent_id: 10,
                start_us: 70.0,
                dur_us: 20.0,
            },
        ];
        let self_times = self_times_us(&spans);
        assert_eq!(self_times[0], ("child".to_string(), 80.0));
        assert_eq!(self_times[1], ("root".to_string(), 20.0));
        assert!((cpu_busy_us(&spans) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn profile_json_exposes_stacks_and_counters() {
        let profile = Profile {
            samples: vec![("main;eval".to_string(), 4)],
            samples_total: 5,
            samples_dropped: 1,
            duration: Duration::from_millis(2),
            interval: Duration::from_millis(1),
            alloc: AllocTotals {
                allocs: 3,
                bytes: 96,
            },
        };
        let text = profile.to_json().to_string();
        assert!(text.contains("\"samples_total\":5"));
        assert!(text.contains("\"alloc_bytes\":96"));
        assert!(text.contains("\"stack\":\"main;eval\""));
        assert_eq!(profile.to_folded(), "main;eval 4\n");
        let parsed = Json::parse(&text).expect("profile json parses");
        assert_eq!(parsed.get("stacks").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn prometheus_text_has_the_three_series() {
        let text = prometheus_text();
        assert!(text.contains("gables_profile_samples_total "));
        assert!(text.contains("gables_allocs_total "));
        assert!(text.contains("gables_alloc_bytes_total "));
        assert!(text.contains("# TYPE gables_alloc_bytes_total counter"));
    }
}
