//! Memory-side memory/scratchpad/cache extension (Section V-A).
//!
//! The base model assumes all inter-IP communication flows through DRAM.
//! This extension adds a shared on-chip (or on-package) memory in front of
//! DRAM: IP\[i\]'s references reach DRAM only with probability `mi`
//! (misses) and are reused from the new memory otherwise. Off-chip traffic
//! shrinks to `D'i = mi · Di` and Equation 15 replaces Equation 10:
//!
//! ```text
//! Tmemory = Σ D'i / Bpeak
//! ```
//!
//! Everything else — the per-IP rooflines and Equation 11's max — is
//! unchanged: the IP still moves its full `Di` through its own port `Bi`;
//! only the *off-chip* leg is filtered.

use crate::error::GablesError;
use crate::model::{Bottleneck, Evaluation};
use crate::soc::SocSpec;
use crate::units::{MissRatio, OpsPerSec, Seconds};
use crate::workload::Workload;

/// The memory-side SRAM extension: one miss ratio per IP.
///
/// # Examples
///
/// A memory-side cache that captures 90% of the GPU's references rescues
/// the paper's Figure 6b scenario without touching `Bpeak`:
///
/// ```
/// use gables_model::ext::sram::MemorySideSram;
/// use gables_model::two_ip::TwoIpModel;
/// use gables_model::units::MissRatio;
///
/// let m = TwoIpModel::figure_6b();
/// let base = m.evaluate()?.attainable().to_gops();
/// let sram = MemorySideSram::new(vec![
///     MissRatio::CERTAIN,
///     MissRatio::new(0.1)?,
/// ]);
/// let cached = sram.evaluate(&m.soc()?, &m.workload()?)?.attainable().to_gops();
/// assert!(cached > base);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemorySideSram {
    miss_ratios: Vec<MissRatio>,
}

/// The result of a Section V-A evaluation: the adjusted attainable
/// performance plus the filtered memory-interface time.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SramEvaluation {
    attainable: OpsPerSec,
    bottleneck: Bottleneck,
    memory_time: Seconds,
    offchip_data_per_op: f64,
    base: Evaluation,
}

impl SramEvaluation {
    /// `Pattainable` with the memory-side SRAM in place.
    pub fn attainable(&self) -> OpsPerSec {
        self.attainable
    }

    /// The limiting component under the extension.
    pub fn bottleneck(&self) -> Bottleneck {
        self.bottleneck
    }

    /// `Tmemory = Σ D'i / Bpeak` (Equation 15).
    pub fn memory_time(&self) -> Seconds {
        self.memory_time
    }

    /// Total off-chip bytes per op after filtering, `Σ mi · Di`.
    pub fn offchip_data_per_op(&self) -> f64 {
        self.offchip_data_per_op
    }

    /// The underlying base-model evaluation (whose per-IP terms still
    /// apply verbatim under this extension).
    pub fn base(&self) -> &Evaluation {
        &self.base
    }
}

impl MemorySideSram {
    /// Creates the extension from per-IP miss ratios (index-aligned with
    /// the SoC's IPs).
    pub fn new(miss_ratios: Vec<MissRatio>) -> Self {
        Self { miss_ratios }
    }

    /// A uniform miss ratio across all `n` IPs.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `miss_ratio` is outside
    /// `[0, 1]`.
    pub fn uniform(n: usize, miss_ratio: f64) -> Result<Self, GablesError> {
        let m = MissRatio::new(miss_ratio)?;
        Ok(Self {
            miss_ratios: vec![m; n],
        })
    }

    /// The per-IP miss ratios.
    pub fn miss_ratios(&self) -> &[MissRatio] {
        &self.miss_ratios
    }

    /// Evaluates the N-IP model with Equation 15 replacing Equation 10.
    ///
    /// # Errors
    ///
    /// * [`GablesError::IpCountMismatch`] if the miss-ratio vector or the
    ///   workload do not match the SoC's IP count.
    pub fn evaluate(
        &self,
        soc: &SocSpec,
        workload: &Workload,
    ) -> Result<SramEvaluation, GablesError> {
        if self.miss_ratios.len() != soc.ip_count() {
            return Err(GablesError::IpCountMismatch {
                soc_ips: soc.ip_count(),
                workload_ips: self.miss_ratios.len(),
            });
        }
        let base = crate::model::evaluate(soc, workload)?;

        // D'i = mi * Di; only the off-chip leg is filtered.
        let offchip_data: f64 = base
            .ips()
            .iter()
            .zip(&self.miss_ratios)
            .map(|(ip, m)| m.value() * ip.data.value())
            .sum();
        let memory_time = offchip_data / soc.bpeak().value();

        let mut bottleneck = Bottleneck::Memory;
        let mut max_time = memory_time;
        for (i, ip) in base.ips().iter().enumerate().rev() {
            if ip.time.value() >= max_time {
                bottleneck = Bottleneck::Ip(i);
                max_time = ip.time.value();
            }
        }
        Ok(SramEvaluation {
            attainable: OpsPerSec::new(1.0 / max_time),
            bottleneck,
            memory_time: Seconds::new(memory_time),
            offchip_data_per_op: offchip_data,
            base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_ip::TwoIpModel;

    fn figure_6b_parts() -> (SocSpec, Workload) {
        let m = TwoIpModel::figure_6b();
        (m.soc().unwrap(), m.workload().unwrap())
    }

    #[test]
    fn all_miss_degenerates_to_base_model() {
        let (soc, w) = figure_6b_parts();
        let ext = MemorySideSram::uniform(2, 1.0).unwrap();
        let with = ext.evaluate(&soc, &w).unwrap();
        let base = crate::model::evaluate(&soc, &w).unwrap();
        assert!((with.attainable().value() - base.attainable().value()).abs() < 1e-6);
        assert_eq!(with.bottleneck(), base.bottleneck());
    }

    #[test]
    fn perfect_reuse_removes_memory_from_the_picture() {
        let (soc, w) = figure_6b_parts();
        let ext = MemorySideSram::uniform(2, 0.0).unwrap();
        let eval = ext.evaluate(&soc, &w).unwrap();
        assert_eq!(eval.memory_time().value(), 0.0);
        assert_eq!(eval.offchip_data_per_op(), 0.0);
        // With memory out of the way, IP[1]'s own port binds at 2 Gops/s
        // (min(15*0.1, 200)/0.75).
        assert!((eval.attainable().to_gops() - 2.0).abs() < 1e-9);
        assert_eq!(eval.bottleneck(), Bottleneck::Ip(1));
    }

    #[test]
    fn filtering_only_the_gpu_rescues_figure_6b() {
        let (soc, w) = figure_6b_parts();
        let base = crate::model::evaluate(&soc, &w).unwrap().attainable();
        let ext = MemorySideSram::new(vec![MissRatio::CERTAIN, MissRatio::new(0.05).unwrap()]);
        let eval = ext.evaluate(&soc, &w).unwrap();
        assert!(eval.attainable().value() > base.value());
    }

    #[test]
    fn attainable_is_monotone_in_miss_ratio() {
        let (soc, w) = figure_6b_parts();
        let mut last = f64::INFINITY;
        for m in [0.0, 0.1, 0.3, 0.5, 0.8, 1.0] {
            let eval = MemorySideSram::uniform(2, m)
                .unwrap()
                .evaluate(&soc, &w)
                .unwrap();
            assert!(eval.attainable().value() <= last + 1e-6);
            last = eval.attainable().value();
        }
    }

    #[test]
    fn equation_15_arithmetic() {
        let (soc, w) = figure_6b_parts();
        let ext = MemorySideSram::new(vec![
            MissRatio::new(0.5).unwrap(),
            MissRatio::new(0.2).unwrap(),
        ]);
        let eval = ext.evaluate(&soc, &w).unwrap();
        // D0 = 0.25/8 = 0.03125, D1 = 0.75/0.1 = 7.5.
        let expected = 0.5 * 0.03125 + 0.2 * 7.5;
        assert!((eval.offchip_data_per_op() - expected).abs() < 1e-12);
        assert!((eval.memory_time().value() - expected / 10.0e9).abs() < 1e-20);
    }

    #[test]
    fn miss_vector_shape_is_validated() {
        let (soc, w) = figure_6b_parts();
        let ext = MemorySideSram::new(vec![MissRatio::CERTAIN]);
        assert!(matches!(
            ext.evaluate(&soc, &w).unwrap_err(),
            GablesError::IpCountMismatch { .. }
        ));
    }

    #[test]
    fn uniform_rejects_invalid_ratio() {
        assert!(MemorySideSram::uniform(2, 1.5).is_err());
        assert!(MemorySideSram::uniform(2, -0.1).is_err());
    }

    #[test]
    fn base_breakdown_is_preserved() {
        let (soc, w) = figure_6b_parts();
        let ext = MemorySideSram::uniform(2, 0.5).unwrap();
        let eval = ext.evaluate(&soc, &w).unwrap();
        // The IP-side picture is untouched by the extension.
        assert!((eval.base().ip(0).unwrap().perf_bound.unwrap().to_gops() - 160.0).abs() < 1e-9);
        assert!((eval.base().ip(1).unwrap().perf_bound.unwrap().to_gops() - 2.0).abs() < 1e-9);
    }
}
