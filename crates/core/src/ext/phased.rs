//! Phased execution: serialized sequences of concurrent phases.
//!
//! Section V-C closes by noting "more complex combinations of parallel
//! and serialized work are possible with more assumptions, parameters,
//! and notation". This module implements the most useful such
//! combination for mobile usecases: a usecase as an ordered sequence of
//! *phases*, each phase a base-Gables concurrent workload over the same
//! SoC. Phases serialize (a camera shot: capture phase, then merge
//! phase, then encode phase); IPs inside a phase run concurrently.
//!
//! Each phase carries a weight `wk` (its share of total usecase ops);
//! phase k's duration per op of usecase work is `wk / Pk` where `Pk` is
//! the base model's attainable performance on that phase's workload, and
//!
//! ```text
//! Pattainable = 1 / Σk (wk / Pk)
//! ```
//!
//! — a weighted harmonic mean, which degenerates correctly: a single
//! phase of weight 1 is exactly the base model, and single-IP phases
//! recover the Section V-C serialized model without its `Di/Bpeak` term
//! (because a one-IP "concurrent" phase still owns all of `Bpeak`,
//! which dominates `Di/Bi` never... see `phase_vs_serialized` test for
//! the precise relationship).

use core::fmt;

use crate::error::GablesError;
use crate::model::{evaluate, Bottleneck, Evaluation};
use crate::soc::SocSpec;
use crate::units::OpsPerSec;
use crate::workload::Workload;

/// One phase: a share of total work executed as a concurrent workload.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Phase {
    /// Phase label (e.g. `"capture"`).
    pub name: String,
    /// Share of total usecase ops executed in this phase, in `[0, 1]`;
    /// the shares of a [`PhasedUsecase`] sum to 1.
    pub weight: f64,
    /// How the phase's work is apportioned across the SoC's IPs.
    pub workload: Workload,
}

/// A usecase as an ordered sequence of concurrent phases.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhasedUsecase {
    phases: Vec<Phase>,
}

/// Per-phase results of a phased evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    /// The phase name.
    pub name: String,
    /// The phase's weight.
    pub weight: f64,
    /// The base-model evaluation of the phase's workload.
    pub evaluation: Evaluation,
    /// The phase's share of total time (its weight over its attainable,
    /// normalized by the usecase total).
    pub time_share: f64,
}

/// The result of evaluating a phased usecase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedEvaluation {
    attainable: OpsPerSec,
    phases: Vec<PhaseResult>,
}

impl PhasedEvaluation {
    /// The usecase's maximal attainable performance.
    pub fn attainable(&self) -> OpsPerSec {
        self.attainable
    }

    /// Per-phase results in order.
    pub fn phases(&self) -> &[PhaseResult] {
        &self.phases
    }

    /// The phase consuming the largest share of time — the one to
    /// optimize first (Amdahl's Law at phase granularity).
    pub fn dominant_phase(&self) -> Option<&PhaseResult> {
        self.phases
            .iter()
            .max_by(|a, b| a.time_share.total_cmp(&b.time_share))
    }

    /// The bottleneck of the dominant phase.
    pub fn dominant_bottleneck(&self) -> Option<Bottleneck> {
        self.dominant_phase().map(|p| p.evaluation.bottleneck())
    }
}

impl fmt::Display for PhasedEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pattainable = {:.4} Gops/s over {} phases",
            self.attainable.to_gops(),
            self.phases.len()
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  {}: w = {:.3}, P = {:.3} Gops/s, {:.1}% of time ({})",
                p.name,
                p.weight,
                p.evaluation.attainable().to_gops(),
                100.0 * p.time_share,
                p.evaluation.bottleneck()
            )?;
        }
        Ok(())
    }
}

impl PhasedUsecase {
    /// Creates a phased usecase.
    ///
    /// # Errors
    ///
    /// * [`GablesError::NoIps`] for an empty phase list.
    /// * [`GablesError::WorkFractionSum`] if weights do not sum to 1.
    /// * [`GablesError::InvalidParameter`] for weights outside `[0, 1]`.
    pub fn new(phases: Vec<Phase>) -> Result<Self, GablesError> {
        if phases.is_empty() {
            return Err(GablesError::NoIps);
        }
        let mut sum = 0.0;
        for p in &phases {
            if !p.weight.is_finite() || !(0.0..=1.0).contains(&p.weight) {
                return Err(GablesError::invalid_parameter(
                    "phase weight",
                    p.weight,
                    "must be finite and within [0, 1]",
                ));
            }
            sum += p.weight;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(GablesError::WorkFractionSum { sum });
        }
        Ok(Self { phases })
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Evaluates the phased usecase on a SoC.
    ///
    /// # Errors
    ///
    /// Propagates base-model errors ([`GablesError::IpCountMismatch`] on
    /// workload/SoC shape mismatches).
    pub fn evaluate(&self, soc: &SocSpec) -> Result<PhasedEvaluation, GablesError> {
        let mut total_time = 0.0;
        let mut partial: Vec<(f64, Evaluation)> = Vec::with_capacity(self.phases.len());
        for phase in &self.phases {
            let eval = evaluate(soc, &phase.workload)?;
            let time = if phase.weight > 0.0 {
                phase.weight / eval.attainable().value()
            } else {
                0.0
            };
            total_time += time;
            partial.push((time, eval));
        }
        let phases = self
            .phases
            .iter()
            .zip(partial)
            .map(|(phase, (time, evaluation))| PhaseResult {
                name: phase.name.clone(),
                weight: phase.weight,
                evaluation,
                time_share: if total_time > 0.0 {
                    time / total_time
                } else {
                    0.0
                },
            })
            .collect();
        Ok(PhasedEvaluation {
            attainable: OpsPerSec::new(1.0 / total_time),
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_ip::TwoIpModel;

    fn soc() -> SocSpec {
        TwoIpModel::figure_6d().soc().unwrap()
    }

    fn phase(name: &str, weight: f64, f: f64, i0: f64, i1: f64) -> Phase {
        Phase {
            name: name.into(),
            weight,
            workload: Workload::two_ip(f, i0, i1).unwrap(),
        }
    }

    #[test]
    fn single_phase_equals_base_model() {
        let usecase = PhasedUsecase::new(vec![phase("all", 1.0, 0.75, 8.0, 8.0)]).unwrap();
        let eval = usecase.evaluate(&soc()).unwrap();
        assert!((eval.attainable().to_gops() - 160.0).abs() < 1e-9);
        assert_eq!(eval.phases().len(), 1);
        assert!((eval.phases()[0].time_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phased_is_weighted_harmonic_mean() {
        // Phase A: balanced 160 Gops/s. Phase B: CPU-only 40 Gops/s.
        let usecase = PhasedUsecase::new(vec![
            phase("merge", 0.5, 0.75, 8.0, 8.0),
            phase("encode", 0.5, 0.0, 8.0, 8.0),
        ])
        .unwrap();
        let eval = usecase.evaluate(&soc()).unwrap();
        let expect = 1.0 / (0.5 / 160.0 + 0.5 / 40.0);
        assert!((eval.attainable().to_gops() - expect).abs() < 1e-9);
        // The slow phase dominates time.
        let dom = eval.dominant_phase().unwrap();
        assert_eq!(dom.name, "encode");
        assert!((dom.time_share - 0.8).abs() < 1e-9);
        assert_eq!(
            eval.dominant_bottleneck().unwrap(),
            crate::model::Bottleneck::Ip(0)
        );
    }

    #[test]
    fn phased_never_beats_best_phase_nor_trails_worst() {
        let usecase = PhasedUsecase::new(vec![
            phase("a", 0.3, 0.75, 8.0, 8.0),
            phase("b", 0.3, 0.75, 8.0, 0.1),
            phase("c", 0.4, 0.0, 8.0, 8.0),
        ])
        .unwrap();
        let eval = usecase.evaluate(&soc()).unwrap();
        let rates: Vec<f64> = eval
            .phases()
            .iter()
            .map(|p| p.evaluation.attainable().value())
            .collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        let p = eval.attainable().value();
        assert!(p >= lo * (1.0 - 1e-12));
        assert!(p <= hi * (1.0 + 1e-12));
    }

    #[test]
    fn zero_weight_phase_is_free() {
        let base = PhasedUsecase::new(vec![phase("a", 1.0, 0.75, 8.0, 8.0)]).unwrap();
        let with_free = PhasedUsecase::new(vec![
            phase("a", 1.0, 0.75, 8.0, 8.0),
            phase("noop", 0.0, 0.75, 8.0, 0.1),
        ])
        .unwrap();
        let p1 = base.evaluate(&soc()).unwrap().attainable();
        let p2 = with_free.evaluate(&soc()).unwrap().attainable();
        assert!((p1.value() - p2.value()).abs() < 1e-6);
    }

    #[test]
    fn validation() {
        assert!(PhasedUsecase::new(vec![]).is_err());
        assert!(PhasedUsecase::new(vec![phase("a", 0.7, 0.0, 8.0, 8.0)]).is_err());
        assert!(PhasedUsecase::new(vec![phase("a", 1.5, 0.0, 8.0, 8.0)]).is_err());
        assert!(PhasedUsecase::new(vec![phase("a", f64::NAN, 0.0, 8.0, 8.0)]).is_err());
    }

    #[test]
    fn shape_mismatch_propagates() {
        let usecase = PhasedUsecase::new(vec![phase("a", 1.0, 0.75, 8.0, 8.0)]).unwrap();
        let one_ip = SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(1.0))
            .bpeak(crate::units::BytesPerSec::from_gbps(1.0))
            .cpu("CPU", crate::units::BytesPerSec::from_gbps(1.0))
            .build()
            .unwrap();
        assert!(usecase.evaluate(&one_ip).is_err());
    }

    #[test]
    fn display_lists_phases() {
        let usecase = PhasedUsecase::new(vec![
            phase("capture", 0.25, 0.0, 8.0, 8.0),
            phase("merge", 0.75, 0.75, 8.0, 8.0),
        ])
        .unwrap();
        let text = usecase.evaluate(&soc()).unwrap().to_string();
        assert!(text.contains("capture"));
        assert!(text.contains("merge"));
        assert!(text.contains("% of time"));
    }

    #[test]
    fn phase_vs_serialized_extension() {
        // Single-IP phases with all of Bpeak available differ from the
        // V-C serialized model only by its explicit Di/Bpeak term; when
        // Bpeak is wide, they coincide.
        use crate::ext::serialized::evaluate_serialized;
        let m = TwoIpModel {
            bpeak_gbps: 1.0e6,
            ..TwoIpModel::figure_6d()
        };
        let soc = m.soc().unwrap();
        let phases = PhasedUsecase::new(vec![
            Phase {
                name: "cpu".into(),
                weight: 0.25,
                workload: Workload::two_ip(0.0, 8.0, 8.0).unwrap(),
            },
            Phase {
                name: "gpu".into(),
                weight: 0.75,
                workload: Workload::two_ip(1.0, 8.0, 8.0).unwrap(),
            },
        ])
        .unwrap();
        let phased = phases.evaluate(&soc).unwrap().attainable();
        let serial = evaluate_serialized(&soc, &m.workload().unwrap())
            .unwrap()
            .attainable();
        assert!((phased.value() - serial.value()).abs() / serial.value() < 1e-9);
    }
}
