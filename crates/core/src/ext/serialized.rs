//! Exclusive/serialized-work extension (Section V-C).
//!
//! The base model assumes all IPs run concurrently. This extension models
//! the opposite regime — only one IP active at a time, as Amdahl's Law and
//! MultiAmdahl assume — while keeping Gables' data-movement bounds. Each
//! IP still overlaps its own data transfer with its own execution, and its
//! off-chip transfer now competes with nothing, so Equation 18 adds a
//! `Di/Bpeak` term to the per-IP max:
//!
//! ```text
//! T'IP[i]     = max(Di / Bpeak, Di / Bi, Ci)     (Equation 18)
//! Pattainable = 1 / Σ T'IP[i]                    (Equation 19)
//! ```
//!
//! `Tmemory` is omitted because off-chip transfer is folded into each
//! exclusive phase.

use core::fmt;

use crate::error::GablesError;
use crate::soc::SocSpec;
use crate::units::{OpsPerSec, Seconds};
use crate::workload::Workload;

/// Which of the three limits binds one IP's exclusive phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SerialLimit {
    /// Off-chip transfer `Di / Bpeak` dominates.
    OffChip,
    /// The IP's own port `Di / Bi` dominates.
    IpBandwidth,
    /// Execution `Ci` dominates.
    Compute,
    /// No work at this IP.
    Idle,
}

impl fmt::Display for SerialLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialLimit::OffChip => write!(f, "off-chip-bandwidth-bound"),
            SerialLimit::IpBandwidth => write!(f, "ip-bandwidth-bound"),
            SerialLimit::Compute => write!(f, "compute-bound"),
            SerialLimit::Idle => write!(f, "idle"),
        }
    }
}

/// One IP's exclusive phase under Equation 18.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SerialPhase {
    /// `T'IP[i] = max(Di/Bpeak, Di/Bi, Ci)`.
    pub time: Seconds,
    /// Which term of the max binds.
    pub limit: SerialLimit,
}

/// The result of a Section V-C evaluation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SerializedEvaluation {
    attainable: OpsPerSec,
    phases: Vec<SerialPhase>,
    total_time: Seconds,
}

impl SerializedEvaluation {
    /// `Pattainable = 1 / Σ T'IP[i]` (Equation 19).
    pub fn attainable(&self) -> OpsPerSec {
        self.attainable
    }

    /// Every IP's exclusive phase, in IP index order.
    pub fn phases(&self) -> &[SerialPhase] {
        &self.phases
    }

    /// `Σ T'IP[i]`, the serialized usecase time per op of work.
    pub fn total_time(&self) -> Seconds {
        self.total_time
    }

    /// The index of the IP whose phase takes the longest — under
    /// serialization the "bottleneck" is the largest *addend*, not a max.
    /// Returns `None` if no IP has work.
    pub fn longest_phase(&self) -> Option<usize> {
        self.phases
            .iter()
            .enumerate()
            .filter(|(_, p)| p.limit != SerialLimit::Idle)
            .max_by(|(_, a), (_, b)| a.time.value().total_cmp(&b.time.value()))
            .map(|(i, _)| i)
    }
}

/// Evaluates the serialized/exclusive-work model (Equations 18–19).
///
/// # Errors
///
/// Returns [`GablesError::IpCountMismatch`] if the workload spans a
/// different number of IPs than the SoC has.
///
/// # Examples
///
/// Serialized execution can never beat concurrent execution on the same
/// inputs:
///
/// ```
/// use gables_model::{evaluate, ext::serialized::evaluate_serialized};
/// use gables_model::two_ip::TwoIpModel;
///
/// let m = TwoIpModel::figure_6d();
/// let concurrent = evaluate(&m.soc()?, &m.workload()?)?.attainable();
/// let serial = evaluate_serialized(&m.soc()?, &m.workload()?)?.attainable();
/// assert!(serial.value() <= concurrent.value());
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn evaluate_serialized(
    soc: &SocSpec,
    workload: &Workload,
) -> Result<SerializedEvaluation, GablesError> {
    if soc.ip_count() != workload.ip_count() {
        return Err(GablesError::IpCountMismatch {
            soc_ips: soc.ip_count(),
            workload_ips: workload.ip_count(),
        });
    }
    let mut phases = Vec::with_capacity(soc.ip_count());
    let mut total = 0.0;
    for (spec, assignment) in soc.ips().iter().zip(workload.assignments()) {
        let f = assignment.fraction().value();
        if f == 0.0 {
            phases.push(SerialPhase {
                time: Seconds::new(0.0),
                limit: SerialLimit::Idle,
            });
            continue;
        }
        let data = f / assignment.intensity().value();
        let offchip = data / soc.bpeak().value();
        let port = data / spec.bandwidth().value();
        let compute = f / (spec.acceleration() * soc.ppeak()).value();
        let (time, limit) = [
            (offchip, SerialLimit::OffChip),
            (port, SerialLimit::IpBandwidth),
            (compute, SerialLimit::Compute),
        ]
        .into_iter()
        .max_by(|(a, _), (b, _)| a.total_cmp(b))
        .expect("three candidates");
        total += time;
        phases.push(SerialPhase {
            time: Seconds::new(time),
            limit,
        });
    }
    Ok(SerializedEvaluation {
        attainable: OpsPerSec::new(1.0 / total),
        phases,
        total_time: Seconds::new(total),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use crate::two_ip::TwoIpModel;

    #[test]
    fn serialized_never_beats_concurrent() {
        for (_, m, _) in TwoIpModel::figure_6_progression() {
            let soc = m.soc().unwrap();
            let w = m.workload().unwrap();
            let serial = evaluate_serialized(&soc, &w).unwrap().attainable();
            let concurrent = evaluate(&soc, &w).unwrap().attainable();
            assert!(
                serial.value() <= concurrent.value() * (1.0 + 1e-12),
                "serialized {serial} beat concurrent {concurrent}"
            );
        }
    }

    #[test]
    fn single_active_ip_matches_concurrent_when_ip_binds() {
        // Figure 6a: all work on the CPU, compute-bound at 40 Gops/s; with
        // only one phase, serialization changes nothing (B0=6 < Bpeak=10,
        // and compute binds anyway).
        let m = TwoIpModel::figure_6a();
        let eval = evaluate_serialized(&m.soc().unwrap(), &m.workload().unwrap()).unwrap();
        assert!((eval.attainable().to_gops() - 40.0).abs() < 1e-9);
        assert_eq!(eval.phases()[0].limit, SerialLimit::Compute);
        assert_eq!(eval.phases()[1].limit, SerialLimit::Idle);
        assert_eq!(eval.longest_phase(), Some(0));
    }

    #[test]
    fn equation_18_and_19_arithmetic() {
        // Figure 6d parameters, f = 0.75, I0 = I1 = 8, Bpeak = 20.
        let m = TwoIpModel::figure_6d();
        let eval = evaluate_serialized(&m.soc().unwrap(), &m.workload().unwrap()).unwrap();
        // CPU phase: D0 = 0.25/8 = 0.03125 B/op.
        //   off-chip 0.03125/20e9, port 0.03125/6e9, compute 0.25/40e9.
        //   compute = 6.25e-12 binds (port = 5.2e-12).
        let t0 = 0.25 / 40.0e9;
        // GPU phase: D1 = 0.75/8 = 0.09375 B/op.
        //   off-chip 0.09375/20e9 = 4.69e-12, port 0.09375/15e9 = 6.25e-12,
        //   compute 0.75/200e9 = 3.75e-12 -> port binds.
        let t1 = 0.09375 / 15.0e9;
        assert!((eval.phases()[0].time.value() - t0).abs() < 1e-22);
        assert_eq!(eval.phases()[0].limit, SerialLimit::Compute);
        assert!((eval.phases()[1].time.value() - t1).abs() < 1e-22);
        assert_eq!(eval.phases()[1].limit, SerialLimit::IpBandwidth);
        let expected = 1.0 / (t0 + t1);
        assert!((eval.attainable().value() - expected).abs() / expected < 1e-12);
        assert!((eval.total_time().value() - (t0 + t1)).abs() < 1e-22);
    }

    #[test]
    fn offchip_term_can_bind() {
        // Give the IP a huge port and huge compute so Di/Bpeak dominates.
        let soc = SocSpec::builder()
            .ppeak(OpsPerSec::from_gops(1000.0))
            .bpeak(crate::units::BytesPerSec::from_gbps(1.0))
            .cpu("CPU", crate::units::BytesPerSec::from_gbps(100.0))
            .build()
            .unwrap();
        let mut b = Workload::builder();
        b.work(1.0, 0.5).unwrap();
        let w = b.build().unwrap();
        let eval = evaluate_serialized(&soc, &w).unwrap();
        assert_eq!(eval.phases()[0].limit, SerialLimit::OffChip);
        // D = 2 bytes/op over 1 GB/s -> 0.5 Gops/s.
        assert!((eval.attainable().to_gops() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let m = TwoIpModel::figure_6a();
        let mut b = Workload::builder();
        b.work(1.0, 8.0).unwrap();
        let w = b.build().unwrap();
        assert!(matches!(
            evaluate_serialized(&m.soc().unwrap(), &w).unwrap_err(),
            GablesError::IpCountMismatch { .. }
        ));
    }

    #[test]
    fn limits_display() {
        assert_eq!(SerialLimit::OffChip.to_string(), "off-chip-bandwidth-bound");
        assert_eq!(SerialLimit::IpBandwidth.to_string(), "ip-bandwidth-bound");
        assert_eq!(SerialLimit::Compute.to_string(), "compute-bound");
        assert_eq!(SerialLimit::Idle.to_string(), "idle");
    }

    use crate::units::OpsPerSec;
}
