//! Model extensions from Section V of the paper.
//!
//! * [`sram`] — memory-side memory/scratchpad/cache (Section V-A): per-IP
//!   miss ratios `mi` shrink off-chip traffic to `D'i = mi · Di`.
//! * [`interconnect`] — detailed on-chip interconnect (Section V-B): a
//!   topology of buses, each a pure bandwidth bound.
//! * [`serialized`] — exclusive/serialized work (Section V-C): one IP
//!   active at a time, times *sum* instead of taking the max, bridging
//!   Gables to MultiAmdahl.
//! * [`phased`] — serialized sequences of concurrent phases, the
//!   "more complex combinations of parallel and serialized work"
//!   Section V-C points to.

pub mod interconnect;
pub mod phased;
pub mod serialized;
pub mod sram;
