//! Detailed on-chip interconnect extension (Section V-B).
//!
//! The base model folds the interconnect into the per-IP bandwidths `Bi`
//! and the off-chip `Bpeak`. This extension models it as `Q` buses, each a
//! pure bandwidth bound operating concurrently with the IPs and the memory
//! interface (bottleneck analysis). With `Use(i,j) = 1` when IP\[i\]'s
//! memory path crosses Bus\[j\]:
//!
//! ```text
//! TBus[j]     = Σi Di · Use(i,j) / BBus[j]                  (Equation 16)
//! Pattainable = 1 / max(Tmemory, TIP[0..N], TBus[0..Q])     (Equation 17)
//! ```
//!
//! Base Gables' assumption is kept that inter-IP data travel via memory and
//! each IP has one bus path to/from memory.

use core::fmt;

use crate::error::GablesError;
use crate::model::{self, Bottleneck, Evaluation};
use crate::soc::SocSpec;
use crate::units::{BytesPerSec, OpsPerSec, Seconds};
use crate::workload::Workload;

/// One interconnection network (colloquially a "bus"): a pure bandwidth
/// bound with no computational limit, so its roofline is slanted-only.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bus {
    name: String,
    bandwidth: BytesPerSec,
}

impl Bus {
    /// Creates a bus.
    ///
    /// # Errors
    ///
    /// Returns [`GablesError::InvalidParameter`] if `bandwidth` is not
    /// finite and positive.
    pub fn new(name: impl Into<String>, bandwidth: BytesPerSec) -> Result<Self, GablesError> {
        let bw = bandwidth.value();
        if !bw.is_finite() || bw <= 0.0 {
            return Err(GablesError::invalid_parameter(
                "bus bandwidth",
                bw,
                "must be finite and > 0",
            ));
        }
        Ok(Self {
            name: name.into(),
            bandwidth,
        })
    }

    /// The bus name (e.g. `"high-bandwidth fabric"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bus bandwidth `BBus[j]`.
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.3} GB/s)", self.name, self.bandwidth.to_gbps())
    }
}

/// A bus topology: `Q` buses plus the `N × Q` usage matrix `Use(i,j)`.
///
/// # Examples
///
/// Figure 3's style of clustering — a CPU on a high-bandwidth fabric and a
/// DSP on a slower system fabric:
///
/// ```
/// use gables_model::ext::interconnect::{Bus, BusTopology};
/// use gables_model::units::BytesPerSec;
///
/// let topology = BusTopology::builder()
///     .bus(Bus::new("hbf", BytesPerSec::from_gbps(30.0))?)
///     .bus(Bus::new("system", BytesPerSec::from_gbps(6.0))?)
///     .route(0, &[0])   // IP[0] uses only the high-bandwidth fabric
///     .route(1, &[1])   // IP[1] uses only the system fabric
///     .build(2)?;
/// assert_eq!(topology.bus_count(), 2);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BusTopology {
    buses: Vec<Bus>,
    /// `uses[i][j]` is true when IP\[i\]'s memory path crosses Bus\[j\].
    uses: Vec<Vec<bool>>,
}

impl BusTopology {
    /// Starts building a topology.
    pub fn builder() -> BusTopologyBuilder {
        BusTopologyBuilder::default()
    }

    /// Number of buses `Q`.
    pub fn bus_count(&self) -> usize {
        self.buses.len()
    }

    /// The buses in index order.
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// Whether IP\[i\] uses Bus\[j\] (`Use(i,j)`).
    pub fn uses(&self, ip: usize, bus: usize) -> bool {
        self.uses
            .get(ip)
            .and_then(|row| row.get(bus))
            .copied()
            .unwrap_or(false)
    }

    /// Evaluates Equations 16–17 on top of the base model.
    ///
    /// # Errors
    ///
    /// * [`GablesError::BusMatrixShape`] if the topology was built for a
    ///   different IP count than the SoC has.
    /// * [`GablesError::NoBusPath`] if an IP with nonzero work uses no bus
    ///   at all (its data could never reach memory).
    /// * Errors from the base model ([`model::evaluate`]).
    pub fn evaluate(
        &self,
        soc: &SocSpec,
        workload: &Workload,
    ) -> Result<InterconnectEvaluation, GablesError> {
        if self.uses.len() != soc.ip_count() {
            return Err(GablesError::BusMatrixShape {
                expected: (soc.ip_count(), self.buses.len()),
                actual: (self.uses.len(), self.buses.len()),
            });
        }
        let base = model::evaluate(soc, workload)?;
        for (i, row) in self.uses.iter().enumerate() {
            let active = workload.assignment(i)?.is_active();
            if active && !row.iter().any(|&u| u) {
                return Err(GablesError::NoBusPath { ip: i });
            }
        }

        // Equation 16: TBus[j] = sum_i Di * Use(i,j) / BBus[j].
        let mut bus_times = Vec::with_capacity(self.buses.len());
        for (j, bus) in self.buses.iter().enumerate() {
            let data: f64 = base
                .ips()
                .iter()
                .enumerate()
                .filter(|(i, _)| self.uses(*i, j))
                .map(|(_, ip)| ip.data.value())
                .sum();
            bus_times.push(Seconds::new(data / bus.bandwidth().value()));
        }

        // Equation 17: extend the max with the bus terms.
        let mut bottleneck = match base.bottleneck() {
            Bottleneck::Ip(i) => InterconnectBottleneck::Ip(i),
            Bottleneck::Memory => InterconnectBottleneck::Memory,
        };
        let mut max_time = 1.0 / base.attainable().value();
        for (j, t) in bus_times.iter().enumerate() {
            if t.value() > max_time {
                bottleneck = InterconnectBottleneck::Bus(j);
                max_time = t.value();
            }
        }
        Ok(InterconnectEvaluation {
            attainable: OpsPerSec::new(1.0 / max_time),
            bottleneck,
            bus_times,
            base,
        })
    }
}

/// Which component binds under the interconnect extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InterconnectBottleneck {
    /// IP\[i\] binds.
    Ip(usize),
    /// The off-chip memory interface binds.
    Memory,
    /// Bus\[j\] binds.
    Bus(usize),
}

impl fmt::Display for InterconnectBottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterconnectBottleneck::Ip(i) => write!(f, "IP[{i}]"),
            InterconnectBottleneck::Memory => write!(f, "memory interface"),
            InterconnectBottleneck::Bus(j) => write!(f, "bus[{j}]"),
        }
    }
}

/// The result of a Section V-B evaluation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InterconnectEvaluation {
    attainable: OpsPerSec,
    bottleneck: InterconnectBottleneck,
    bus_times: Vec<Seconds>,
    base: Evaluation,
}

impl InterconnectEvaluation {
    /// `Pattainable` under Equation 17.
    pub fn attainable(&self) -> OpsPerSec {
        self.attainable
    }

    /// The limiting component.
    pub fn bottleneck(&self) -> InterconnectBottleneck {
        self.bottleneck
    }

    /// `TBus[j]` for every bus (Equation 16).
    pub fn bus_times(&self) -> &[Seconds] {
        &self.bus_times
    }

    /// The underlying base-model evaluation.
    pub fn base(&self) -> &Evaluation {
        &self.base
    }
}

/// Builder for [`BusTopology`].
#[derive(Debug, Clone, Default)]
pub struct BusTopologyBuilder {
    buses: Vec<Bus>,
    routes: Vec<(usize, Vec<usize>)>,
}

impl BusTopologyBuilder {
    /// Adds a bus; buses are indexed in insertion order.
    pub fn bus(&mut self, bus: Bus) -> &mut Self {
        self.buses.push(bus);
        self
    }

    /// Declares that IP `ip`'s memory path crosses the given buses.
    pub fn route(&mut self, ip: usize, buses: &[usize]) -> &mut Self {
        self.routes.push((ip, buses.to_vec()));
        self
    }

    /// Builds a topology for a SoC with `ip_count` IPs.
    ///
    /// # Errors
    ///
    /// * [`GablesError::NoIps`] if no bus was added.
    /// * [`GablesError::IpIndexOutOfBounds`] if a route names an IP `>=
    ///   ip_count` or a bus index out of range.
    pub fn build(&self, ip_count: usize) -> Result<BusTopology, GablesError> {
        if self.buses.is_empty() {
            return Err(GablesError::NoIps);
        }
        let mut uses = vec![vec![false; self.buses.len()]; ip_count];
        for (ip, buses) in &self.routes {
            if *ip >= ip_count {
                return Err(GablesError::IpIndexOutOfBounds {
                    index: *ip,
                    len: ip_count,
                });
            }
            for &j in buses {
                if j >= self.buses.len() {
                    return Err(GablesError::IpIndexOutOfBounds {
                        index: j,
                        len: self.buses.len(),
                    });
                }
                uses[*ip][j] = true;
            }
        }
        Ok(BusTopology {
            buses: self.buses.clone(),
            uses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_ip::TwoIpModel;

    fn figure_6d_parts() -> (SocSpec, Workload) {
        let m = TwoIpModel::figure_6d();
        (m.soc().unwrap(), m.workload().unwrap())
    }

    fn shared_bus(gbps: f64) -> BusTopology {
        BusTopology::builder()
            .bus(Bus::new("shared", BytesPerSec::from_gbps(gbps)).unwrap())
            .route(0, &[0])
            .route(1, &[0])
            .build(2)
            .unwrap()
    }

    #[test]
    fn infinite_bus_degenerates_to_base_model() {
        let (soc, w) = figure_6d_parts();
        let topology = shared_bus(1.0e12);
        let eval = topology.evaluate(&soc, &w).unwrap();
        let base = model::evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().value() - base.attainable().value()).abs() < 1.0);
        assert_eq!(eval.bottleneck(), InterconnectBottleneck::Ip(0));
    }

    #[test]
    fn narrow_shared_bus_becomes_the_bottleneck() {
        let (soc, w) = figure_6d_parts();
        // Total data per op = 0.25/8 + 0.75/8 = 0.125 bytes/op. A 1 GB/s
        // bus sustains only 8 Gops/s, well below the balanced 160.
        let topology = shared_bus(1.0);
        let eval = topology.evaluate(&soc, &w).unwrap();
        assert_eq!(eval.bottleneck(), InterconnectBottleneck::Bus(0));
        assert!((eval.attainable().to_gops() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn equation_16_only_counts_ips_that_use_the_bus() {
        let (soc, w) = figure_6d_parts();
        let topology = BusTopology::builder()
            .bus(Bus::new("cpu-only", BytesPerSec::from_gbps(1.0)).unwrap())
            .bus(Bus::new("gpu-only", BytesPerSec::from_gbps(2.0)).unwrap())
            .route(0, &[0])
            .route(1, &[1])
            .build(2)
            .unwrap();
        let eval = topology.evaluate(&soc, &w).unwrap();
        // D0 = 0.25/8, D1 = 0.75/8.
        let t0 = (0.25 / 8.0) / 1.0e9;
        let t1 = (0.75 / 8.0) / 2.0e9;
        assert!((eval.bus_times()[0].value() - t0).abs() < 1e-20);
        assert!((eval.bus_times()[1].value() - t1).abs() < 1e-20);
    }

    #[test]
    fn disconnected_active_ip_is_an_error() {
        let (soc, w) = figure_6d_parts();
        let topology = BusTopology::builder()
            .bus(Bus::new("cpu-only", BytesPerSec::from_gbps(10.0)).unwrap())
            .route(0, &[0])
            .build(2)
            .unwrap();
        assert_eq!(
            topology.evaluate(&soc, &w).unwrap_err(),
            GablesError::NoBusPath { ip: 1 }
        );
    }

    #[test]
    fn disconnected_idle_ip_is_fine() {
        let m = TwoIpModel::figure_6a(); // f = 0, GPU idle
        let (soc, w) = (m.soc().unwrap(), m.workload().unwrap());
        let topology = BusTopology::builder()
            .bus(Bus::new("cpu-only", BytesPerSec::from_gbps(100.0)).unwrap())
            .route(0, &[0])
            .build(2)
            .unwrap();
        let eval = topology.evaluate(&soc, &w).unwrap();
        assert!((eval.attainable().to_gops() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn topology_shape_is_validated() {
        let (soc, w) = figure_6d_parts();
        let topology = BusTopology::builder()
            .bus(Bus::new("b", BytesPerSec::from_gbps(10.0)).unwrap())
            .route(0, &[0])
            .build(3) // built for 3 IPs, SoC has 2
            .unwrap();
        assert!(matches!(
            topology.evaluate(&soc, &w).unwrap_err(),
            GablesError::BusMatrixShape { .. }
        ));
    }

    #[test]
    fn builder_validates_indices() {
        let mut b = BusTopology::builder();
        b.bus(Bus::new("b", BytesPerSec::from_gbps(10.0)).unwrap());
        b.route(5, &[0]);
        assert!(b.build(2).is_err());

        let mut b = BusTopology::builder();
        b.bus(Bus::new("b", BytesPerSec::from_gbps(10.0)).unwrap());
        b.route(0, &[9]);
        assert!(b.build(2).is_err());

        assert!(BusTopology::builder().build(2).is_err());
    }

    #[test]
    fn bus_validates_bandwidth() {
        assert!(Bus::new("x", BytesPerSec::from_gbps(0.0)).is_err());
        assert!(Bus::new("x", BytesPerSec::from_gbps(-1.0)).is_err());
        let bus = Bus::new("fabric", BytesPerSec::from_gbps(30.0)).unwrap();
        assert_eq!(bus.name(), "fabric");
        assert!(bus.to_string().contains("30.000 GB/s"));
    }

    #[test]
    fn uses_is_total() {
        let topology = shared_bus(10.0);
        assert!(topology.uses(0, 0));
        assert!(!topology.uses(9, 0));
        assert!(!topology.uses(0, 9));
    }

    #[test]
    fn bottleneck_display() {
        assert_eq!(InterconnectBottleneck::Bus(2).to_string(), "bus[2]");
        assert_eq!(InterconnectBottleneck::Ip(0).to_string(), "IP[0]");
        assert_eq!(
            InterconnectBottleneck::Memory.to_string(),
            "memory interface"
        );
    }
}
