//! Plot-ready data for the Gables scaled-roofline visualization
//! (Section III-C).
//!
//! The paper visualizes a usecase on a SoC as multiple rooflines on one
//! log-log plot: one *scaled* roofline per active IP (Equation 12 divided
//! by its work fraction), the slanted-only memory roofline (Equation 13),
//! "drop lines" where each component's operational intensity selects its
//! operating point, and the attainable performance as the lowest selected
//! point. This module produces that data as plain sampled series; the
//! `gables-plot` crate renders it to SVG or ASCII.

use crate::error::GablesError;
use crate::model::{evaluate, memory_roofline, scaled_ip_roofline, Bottleneck};
use crate::soc::SocSpec;
use crate::units::OpsPerByte;
use crate::workload::Workload;

/// What a curve on the plot represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CurveKind {
    /// A scaled per-IP roofline (slanted then flat).
    Ip(usize),
    /// The memory roofline (slanted only).
    Memory,
}

/// A sampled curve in plot coordinates: x is operational intensity in
/// ops/byte, y is attainable performance in Gops/s. Both axes are meant to
/// be drawn on log scales.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RooflineCurve {
    /// Legend label.
    pub label: String,
    /// What the curve represents.
    pub kind: CurveKind,
    /// `(intensity, gops)` samples in increasing-x order.
    pub points: Vec<(f64, f64)>,
}

/// A vertical drop line marking where a component's own operational
/// intensity selects its operating point on its roofline.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DropLine {
    /// Label (e.g. `"I0"`, `"Iavg"`).
    pub label: String,
    /// The x position (ops/byte).
    pub intensity: f64,
    /// The y value where the drop line meets its roofline (Gops/s).
    pub gops: f64,
    /// Which curve this drop line belongs to.
    pub kind: CurveKind,
}

/// Everything needed to draw one Gables multi-roofline plot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GablesPlotData {
    /// The scaled per-IP and memory roofline curves.
    pub curves: Vec<RooflineCurve>,
    /// One drop line per active IP plus one for `Iavg` on the memory
    /// roofline.
    pub drop_lines: Vec<DropLine>,
    /// The attainable operating point `(Iavg, Pattainable in Gops/s)` —
    /// the lowest selected point among the rooflines.
    pub attainable: (f64, f64),
    /// Which component binds.
    pub bottleneck: Bottleneck,
    /// The x range `[lo, hi]` the curves were sampled over (ops/byte).
    pub x_range: (f64, f64),
}

/// Samples the Gables multi-roofline plot for a SoC/workload pair over
/// `[x_lo, x_hi]` ops/byte with `samples` log-spaced points per curve.
///
/// # Errors
///
/// * [`GablesError::InvalidParameter`] for an invalid range or fewer than
///   two samples.
/// * Model errors from [`evaluate`].
///
/// # Examples
///
/// ```
/// use gables_model::viz::gables_plot_data;
/// use gables_model::two_ip::TwoIpModel;
///
/// let m = TwoIpModel::figure_6d();
/// let plot = gables_plot_data(&m.soc()?, &m.workload()?, 0.01, 100.0, 64)?;
/// // Two IP curves plus the memory curve.
/// assert_eq!(plot.curves.len(), 3);
/// assert!((plot.attainable.1 - 160.0).abs() < 1e-6);
/// # Ok::<(), gables_model::GablesError>(())
/// ```
pub fn gables_plot_data(
    soc: &SocSpec,
    workload: &Workload,
    x_lo: f64,
    x_hi: f64,
    samples: usize,
) -> Result<GablesPlotData, GablesError> {
    if !x_lo.is_finite() || x_lo <= 0.0 || !x_hi.is_finite() || x_hi <= x_lo || samples < 2 {
        return Err(GablesError::invalid_parameter(
            "plot range",
            x_lo,
            "requires 0 < x_lo < x_hi and samples >= 2",
        ));
    }
    let eval = evaluate(soc, workload)?;
    let xs: Vec<f64> = log_space(x_lo, x_hi, samples);

    let mut curves = Vec::new();
    let mut drop_lines = Vec::new();

    for (i, assignment) in workload.assignments().iter().enumerate() {
        if !assignment.is_active() {
            continue; // Idle IPs are not shown (Figure 6a omits the GPU).
        }
        let f = assignment.fraction().value();
        let points = xs
            .iter()
            .map(|&x| {
                let p =
                    scaled_ip_roofline(soc, i, f, OpsPerByte::new(x)).expect("validated inputs");
                (x, p.to_gops())
            })
            .collect();
        curves.push(RooflineCurve {
            label: format!("IP[{i}] {} (f={f})", soc.ip(i)?.name()),
            kind: CurveKind::Ip(i),
            points,
        });
        let ii = assignment.intensity().value();
        let at = scaled_ip_roofline(soc, i, f, assignment.intensity())?;
        drop_lines.push(DropLine {
            label: format!("I{i}"),
            intensity: ii,
            gops: at.to_gops(),
            kind: CurveKind::Ip(i),
        });
    }

    let memory_points = xs
        .iter()
        .map(|&x| (x, memory_roofline(soc, OpsPerByte::new(x)).to_gops()))
        .collect();
    curves.push(RooflineCurve {
        label: format!("memory (Bpeak={:.1} GB/s)", soc.bpeak().to_gbps()),
        kind: CurveKind::Memory,
        points: memory_points,
    });

    let iavg = workload
        .iavg()
        .expect("validated workload has an active IP");
    drop_lines.push(DropLine {
        label: "Iavg".into(),
        intensity: iavg.value(),
        gops: memory_roofline(soc, iavg).to_gops(),
        kind: CurveKind::Memory,
    });

    Ok(GablesPlotData {
        curves,
        drop_lines,
        attainable: (iavg.value(), eval.attainable().to_gops()),
        bottleneck: eval.bottleneck(),
        x_range: (x_lo, x_hi),
    })
}

/// `n` log-spaced samples covering `[lo, hi]` inclusive.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    debug_assert!(n >= 2 && lo > 0.0 && hi > lo);
    let ratio = (hi / lo).ln();
    (0..n)
        .map(|k| lo * (ratio * k as f64 / (n - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_ip::TwoIpModel;

    #[test]
    fn figure_6a_plot_omits_idle_gpu() {
        let m = TwoIpModel::figure_6a();
        let plot =
            gables_plot_data(&m.soc().unwrap(), &m.workload().unwrap(), 0.01, 100.0, 32).unwrap();
        // Only the CPU curve + memory curve.
        assert_eq!(plot.curves.len(), 2);
        assert!(matches!(plot.curves[0].kind, CurveKind::Ip(0)));
        assert!(matches!(plot.curves[1].kind, CurveKind::Memory));
        assert!((plot.attainable.1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn figure_6d_plot_selects_equal_points() {
        let m = TwoIpModel::figure_6d();
        let plot =
            gables_plot_data(&m.soc().unwrap(), &m.workload().unwrap(), 0.01, 100.0, 32).unwrap();
        assert_eq!(plot.curves.len(), 3);
        // All three drop lines select 160 Gops/s at I = 8.
        for d in &plot.drop_lines {
            assert!((d.intensity - 8.0).abs() < 1e-9, "{d:?}");
            assert!((d.gops - 160.0).abs() < 1e-6, "{d:?}");
        }
    }

    #[test]
    fn curves_are_monotone_nondecreasing() {
        let m = TwoIpModel::figure_6b();
        let plot =
            gables_plot_data(&m.soc().unwrap(), &m.workload().unwrap(), 0.01, 1000.0, 64).unwrap();
        for curve in &plot.curves {
            for pair in curve.points.windows(2) {
                assert!(pair[1].1 >= pair[0].1 - 1e-9, "curve {} dips", curve.label);
                assert!(pair[1].0 > pair[0].0);
            }
        }
    }

    #[test]
    fn memory_curve_is_purely_slanted() {
        let m = TwoIpModel::figure_6a();
        let plot =
            gables_plot_data(&m.soc().unwrap(), &m.workload().unwrap(), 0.01, 100.0, 16).unwrap();
        let memory = plot
            .curves
            .iter()
            .find(|c| c.kind == CurveKind::Memory)
            .unwrap();
        // Slope in log-log space is exactly 1 everywhere (no flat region).
        for pair in memory.points.windows(2) {
            let slope = (pair[1].1 / pair[0].1).ln() / (pair[1].0 / pair[0].0).ln();
            assert!((slope - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn attainable_is_lowest_drop_line() {
        for (_, m, _) in TwoIpModel::figure_6_progression() {
            if m.f == 0.0 {
                continue;
            }
            let plot = gables_plot_data(&m.soc().unwrap(), &m.workload().unwrap(), 0.01, 100.0, 16)
                .unwrap();
            let min_drop = plot
                .drop_lines
                .iter()
                .map(|d| d.gops)
                .fold(f64::INFINITY, f64::min);
            assert!((plot.attainable.1 - min_drop).abs() < 1e-6);
        }
    }

    #[test]
    fn log_space_covers_endpoints() {
        let xs = log_space(0.1, 100.0, 31);
        assert_eq!(xs.len(), 31);
        assert!((xs[0] - 0.1).abs() < 1e-12);
        assert!((xs[30] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        let m = TwoIpModel::figure_6a();
        let soc = m.soc().unwrap();
        let w = m.workload().unwrap();
        assert!(gables_plot_data(&soc, &w, 0.0, 10.0, 8).is_err());
        assert!(gables_plot_data(&soc, &w, 10.0, 1.0, 8).is_err());
        assert!(gables_plot_data(&soc, &w, 1.0, 10.0, 1).is_err());
    }
}
