//! Allocation-budget gates for the model's hot paths.
//!
//! The counting allocator ([`gables_model::prof::CountingAllocator`])
//! is process-wide, so these assertions live in their own integration
//! binary and serialize on a lock: nothing else may allocate while a
//! scope is being measured, or a `== 0` assertion would flake.
//!
//! The budgets are exact, not "small": steady-state [`evaluate`] does
//! zero heap allocations once the spec exists, and an offload sweep
//! pays only its fixed setup (result storage, the workload template)
//! with zero additional allocations per sweep point.

use std::sync::Mutex;

use gables_model::analysis::offload_sweep_with;
use gables_model::prof::AllocScope;
use gables_model::units::{BytesPerSec, OpsPerSec};
use gables_model::{evaluate, Parallelism, SocSpec, Workload};

/// Serializes the measuring tests: the allocation counters are global
/// to the process, so concurrent tests would see each other's traffic.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// The paper's Figure 6b SoC: CPU plus one accelerator.
fn soc() -> SocSpec {
    SocSpec::builder()
        .ppeak(OpsPerSec::from_gops(40.0))
        .bpeak(BytesPerSec::from_gbps(2.0))
        .cpu("CPU", BytesPerSec::from_gbps(6.0))
        .accelerator("ACC", 4.0, BytesPerSec::from_gbps(10.0))
        .unwrap()
        .build()
        .unwrap()
}

fn workload() -> Workload {
    Workload::two_ip(0.6, 0.25, 4.0).unwrap()
}

#[test]
fn steady_state_evaluate_allocates_nothing() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let soc = soc();
    let workload = workload();
    // Warmup: fault in any lazy one-time state (formatting machinery,
    // thread-local counters) before measuring.
    for _ in 0..8 {
        let eval = evaluate(&soc, &workload).unwrap();
        assert!(eval.attainable().value() > 0.0);
    }
    let scope = AllocScope::begin();
    for _ in 0..64 {
        let eval = evaluate(&soc, &workload).unwrap();
        std::hint::black_box(&eval);
    }
    let delta = scope.delta();
    assert_eq!(
        delta.allocs, 0,
        "steady-state evaluate must not touch the heap: {delta:?}"
    );
    assert_eq!(delta.bytes, 0, "{delta:?}");
}

#[test]
fn offload_sweep_allocates_nothing_per_point() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let soc = soc();
    let run =
        |steps: usize| offload_sweep_with(&soc, 0.25, 4.0, steps, Parallelism::Serial).unwrap();
    // Warmup faults in one-time state shared by both measured runs.
    assert_eq!(run(8).len(), 9);
    // Measure two sweeps that differ only in step count: the sweep's
    // fixed setup (result vec, template workload, baseline evaluation)
    // cancels out, so the difference is the pure per-point cost.
    let scope = AllocScope::begin();
    let small = run(64);
    let after_small = scope.delta();
    let large = run(192);
    let per_point_allocs =
        scope.delta().since(after_small).allocs as i64 - after_small.allocs as i64;
    assert_eq!(small.len(), 65);
    assert_eq!(large.len(), 193);
    assert_eq!(
        per_point_allocs, 0,
        "128 extra sweep points must cost zero extra allocations \
         (first sweep: {after_small:?})"
    );
    // And the fixed setup itself stays small: a handful of allocations
    // for the whole sweep, independent of the step count.
    assert!(
        after_small.allocs <= 8,
        "sweep setup budget exceeded: {after_small:?}"
    );
}
