//! Golden-format test for the Chrome trace-event exporter: the emitted
//! JSON must parse (checked with a small recursive-descent parser built
//! on `std` only — no external JSON crate is available offline) and obey
//! the trace-event contract chrome://tracing and Perfetto expect:
//! a top-level `traceEvents` array, only `M`/`X`/`C` phases, complete
//! (`X`) events with non-negative `ts` and positive `dur`, and
//! monotonically non-decreasing timestamps per `(pid, tid)` track.

use std::collections::BTreeMap;

use gables_soc_sim::{
    presets, telemetry, Job, RooflineKernel, Simulator, TimelineRecorder, TrafficPattern,
};

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (std only).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

// ---------------------------------------------------------------------
// The golden test.
// ---------------------------------------------------------------------

fn traced_run() -> (Vec<gables_soc_sim::Epoch>, Vec<String>) {
    let sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
    let jobs = vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(64)
            },
        },
    ];
    let mut recorder = TimelineRecorder::new();
    sim.run_with_recorder(&jobs, &mut recorder).unwrap();
    let names = sim.soc().ips.iter().map(|ip| ip.name.clone()).collect();
    (recorder.epochs().to_vec(), names)
}

#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let (epochs, names) = traced_run();
    let text = telemetry::chrome_trace_json(&epochs, &names);
    let root = Parser::parse(&text).expect("exporter must emit parseable JSON");

    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("root object must carry a traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");

    // Every event: known phase; X events carry ts >= 0 and dur > 0.
    let mut x_events = 0usize;
    let mut track_clocks: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a ph");
        assert!(
            matches!(ph, "M" | "X" | "C"),
            "unexpected phase {ph:?} — exporter only emits metadata, complete, and counter events"
        );
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default();
        assert!(!name.is_empty(), "every event is named");
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .expect("timed events carry ts");
        assert!(ts >= 0.0, "ts must be non-negative, got {ts}");
        let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        if ph == "X" {
            x_events += 1;
            let dur = ev
                .get("dur")
                .and_then(Json::as_f64)
                .expect("complete events carry dur");
            assert!(dur > 0.0, "complete events must have positive dur");
            // Complete events on one track must not regress in time.
            let clock = track_clocks.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            assert!(
                ts >= *clock,
                "timestamps regressed on track (pid {pid}, tid {tid}): {ts} < {clock}"
            );
            *clock = ts;
        }
    }
    assert!(x_events > 0, "trace must contain complete (X) span events");

    // Thread-name metadata names each active IP's track (idle IPs get
    // no track, so no metadata).
    for name in [&names[presets::CPU], &names[presets::GPU]] {
        assert!(
            events.iter().any(|ev| {
                ev.get("ph").and_then(Json::as_str) == Some("M")
                    && ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        == Some(name)
            }),
            "missing thread_name metadata for IP {name:?}"
        );
    }
}

#[test]
fn csv_timeline_is_rectangular() {
    let (epochs, names) = traced_run();
    let csv = telemetry::csv_timeline(&epochs, &names);
    let mut lines = csv.lines();
    let header = lines.next().expect("csv has a header");
    assert!(header.starts_with("epoch,"));
    let columns = header.split(',').count();
    let mut rows = 0usize;
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged csv row: {line:?}");
        rows += 1;
    }
    let flow_count: usize = epochs.iter().map(|e| e.flows.len()).sum();
    assert_eq!(rows, flow_count, "one csv row per flow per epoch");
}
