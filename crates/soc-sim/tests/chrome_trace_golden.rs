//! Golden-format test for the Chrome trace-event exporter: the emitted
//! JSON must parse (checked with the workspace's shared std-only parser,
//! `gables_model::json` — no external JSON crate is available offline)
//! and obey the trace-event contract chrome://tracing and Perfetto
//! expect: a top-level `traceEvents` array, only `M`/`X`/`C` phases,
//! complete (`X`) events with non-negative `ts` and positive `dur`, and
//! monotonically non-decreasing timestamps per `(pid, tid)` track.

use std::collections::BTreeMap;

use gables_model::json::Json;
use gables_soc_sim::{
    presets, telemetry, Job, RooflineKernel, Simulator, TimelineRecorder, TrafficPattern,
};

fn traced_run() -> (Vec<gables_soc_sim::Epoch>, Vec<String>) {
    let sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
    let jobs = vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(64)
            },
        },
    ];
    let mut recorder = TimelineRecorder::new();
    sim.run_with_recorder(&jobs, &mut recorder).unwrap();
    let names = sim.soc().ips.iter().map(|ip| ip.name.clone()).collect();
    (recorder.epochs().to_vec(), names)
}

#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let (epochs, names) = traced_run();
    let text = telemetry::chrome_trace_json(&epochs, &names);
    let root = Json::parse(&text).expect("exporter must emit parseable JSON");

    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("root object must carry a traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");

    // Every event: known phase; X events carry ts >= 0 and dur > 0.
    let mut x_events = 0usize;
    let mut track_clocks: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a ph");
        assert!(
            matches!(ph, "M" | "X" | "C"),
            "unexpected phase {ph:?} — exporter only emits metadata, complete, and counter events"
        );
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default();
        assert!(!name.is_empty(), "every event is named");
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .expect("timed events carry ts");
        assert!(ts >= 0.0, "ts must be non-negative, got {ts}");
        let pid = ev.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        if ph == "X" {
            x_events += 1;
            let dur = ev
                .get("dur")
                .and_then(Json::as_f64)
                .expect("complete events carry dur");
            assert!(dur > 0.0, "complete events must have positive dur");
            // Complete events on one track must not regress in time.
            let clock = track_clocks.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            assert!(
                ts >= *clock,
                "timestamps regressed on track (pid {pid}, tid {tid}): {ts} < {clock}"
            );
            *clock = ts;
        }
    }
    assert!(x_events > 0, "trace must contain complete (X) span events");

    // Thread-name metadata names each active IP's track (idle IPs get
    // no track, so no metadata).
    for name in [&names[presets::CPU], &names[presets::GPU]] {
        assert!(
            events.iter().any(|ev| {
                ev.get("ph").and_then(Json::as_str) == Some("M")
                    && ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        == Some(name)
            }),
            "missing thread_name metadata for IP {name:?}"
        );
    }
}

#[test]
fn csv_timeline_is_rectangular() {
    let (epochs, names) = traced_run();
    let csv = telemetry::csv_timeline(&epochs, &names);
    let mut lines = csv.lines();
    let header = lines.next().expect("csv has a header");
    assert!(header.starts_with("epoch,"));
    let columns = header.split(',').count();
    let mut rows = 0usize;
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged csv row: {line:?}");
        rows += 1;
    }
    let flow_count: usize = epochs.iter().map(|e| e.flows.len()).sum();
    assert_eq!(rows, flow_count, "one csv row per flow per epoch");
}
