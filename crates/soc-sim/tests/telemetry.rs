//! Integration tests for the telemetry layer: observation must not
//! perturb the simulation, per-job bottleneck attribution must be a
//! proper distribution, and at single-bottleneck operating points the
//! attributed constraint must agree with the analytical Gables model
//! (Equations 5–8).

use gables_model::{evaluate, Bottleneck, IpLimit, Workload};
use gables_soc_sim::thermal::ThermalConfig;
use gables_soc_sim::{
    presets, BindingConstraint, Job, NullRecorder, RooflineKernel, Simulator, TimelineRecorder,
    TrafficPattern,
};

fn mixed_jobs() -> Vec<Job> {
    vec![
        Job {
            ip: presets::CPU,
            kernel: RooflineKernel::dram_resident(8),
        },
        Job {
            ip: presets::GPU,
            kernel: RooflineKernel {
                pattern: TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(64)
            },
        },
        Job {
            ip: presets::DSP,
            kernel: RooflineKernel::dram_resident(1),
        },
    ]
}

/// Attaching a `TimelineRecorder` yields bit-identical results to the
/// default `NullRecorder` path — observation does not perturb the run.
#[test]
fn recorder_does_not_perturb_results() {
    for thermal in [None, Some(ThermalConfig::phone_default())] {
        let mut sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
        if let Some(t) = thermal {
            sim = sim.with_thermal(t);
        }
        let jobs = mixed_jobs();
        let plain = sim.run(&jobs).unwrap();
        let mut null = NullRecorder;
        let with_null = sim.run_with_recorder(&jobs, &mut null).unwrap();
        let mut recorder = TimelineRecorder::new();
        let with_timeline = sim.run_with_recorder(&jobs, &mut recorder).unwrap();
        assert_eq!(plain, with_null);
        assert_eq!(plain, with_timeline);
        assert!(!recorder.epochs().is_empty());
    }
}

/// Every job's breakdown fractions sum to 1.0 ± 1e-9.
#[test]
fn breakdown_fractions_sum_to_one() {
    let sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
    let run = sim.run(&mixed_jobs()).unwrap();
    for job in &run.jobs {
        let total: f64 = BindingConstraint::ALL
            .iter()
            .map(|&c| job.breakdown.fraction(c))
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "job on IP {} sums to {total}",
            job.ip
        );
    }
}

/// Epochs tile the run: monotonically increasing, gap-free timestamps.
#[test]
fn epochs_are_contiguous_and_monotonic() {
    let sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
    let mut recorder = TimelineRecorder::new();
    let run = sim.run_with_recorder(&mixed_jobs(), &mut recorder).unwrap();
    let epochs = recorder.epochs();
    assert!(epochs.first().unwrap().t_start.abs() < 1e-15);
    for pair in epochs.windows(2) {
        assert!(pair[0].t_end <= pair[1].t_start + 1e-12);
        assert!(
            (pair[1].t_start - pair[0].t_end).abs() < 1e-9,
            "gap in epochs"
        );
    }
    let last = epochs.last().unwrap();
    assert!((last.t_end - run.makespan_seconds).abs() / run.makespan_seconds < 1e-9);
}

/// Maps an analytical verdict onto the constraint the simulator should
/// attribute. The simulated SoC is cacheless (built via
/// `from_gables_spec`), so Cache/Scratchpad/Fabric never apply here.
fn expected_constraint(soc: &gables_model::SocSpec, workload: &Workload) -> BindingConstraint {
    let eval = evaluate(soc, workload).unwrap();
    match eval.bottleneck() {
        Bottleneck::Memory => BindingConstraint::Dram,
        Bottleneck::Ip(i) => match eval.ips()[i].limit {
            IpLimit::Compute => BindingConstraint::Compute,
            IpLimit::Bandwidth => BindingConstraint::Port,
            IpLimit::Idle => panic!("bottleneck IP cannot be idle"),
        },
    }
}

/// At single-bottleneck operating points the simulator's attribution
/// agrees with the analytical Gables prediction (Eq 5–8): port-bound at
/// low intensity, compute-bound at high intensity on a single IP, and
/// DRAM-bound when two low-intensity IPs oversubscribe `Bpeak`.
#[test]
fn attribution_matches_analytical_model() {
    use gables_model::two_ip::TwoIpModel;
    let spec = TwoIpModel::figure_6a().soc().unwrap();
    let sim = Simulator::new(presets::from_gables_spec(&spec)).unwrap();

    // Single IP, I = 1 flop/byte: the IP's port roofline binds (Eq 5).
    // Single IP, I = 512: the flat compute roof binds (Eq 6).
    for (fpw, intensity) in [(8u32, 1.0), (4096, 512.0)] {
        let workload = {
            let mut b = Workload::builder();
            b.work(1.0, intensity).unwrap();
            b.work(0.0, intensity).unwrap();
            b.build().unwrap()
        };
        let expected = expected_constraint(&spec, &workload);
        let run = sim
            .run(&[Job {
                ip: 0,
                kernel: RooflineKernel::dram_resident(fpw),
            }])
            .unwrap();
        let job = &run.jobs[0];
        assert_eq!(job.breakdown.dominant(), expected, "I = {intensity}");
        assert!(
            job.breakdown.fraction(expected) > 1.0 - 1e-9,
            "I = {intensity}: {}",
            job.breakdown
        );
    }

    // Both IPs at I = 0.125 split the work evenly: combined port
    // bandwidth oversubscribes Bpeak, so shared DRAM binds (Eq 7–8).
    let workload = Workload::two_ip(0.5, 0.125, 0.125).unwrap();
    let expected = expected_constraint(&spec, &workload);
    assert_eq!(expected, BindingConstraint::Dram);
    let kernel = RooflineKernel::dram_resident(1);
    let run = sim
        .run(&[
            Job {
                ip: 0,
                kernel: kernel.scaled(0.5),
            },
            Job {
                ip: 1,
                kernel: kernel.scaled(0.5),
            },
        ])
        .unwrap();
    for job in &run.jobs {
        assert_eq!(job.breakdown.dominant(), BindingConstraint::Dram);
        assert!(
            job.breakdown.fraction(BindingConstraint::Dram) > 1.0 - 1e-9,
            "IP {}: {}",
            job.ip,
            job.breakdown
        );
    }
}
