//! Hardware configuration for the simulated SoC.
//!
//! The simulator substitutes for the Snapdragon 835/821 hardware the paper
//! benchmarks (see DESIGN.md). A [`SocConfig`] describes IP blocks — each a
//! [`ComputeEngine`] plus a private cache hierarchy and a port onto an
//! interconnect fabric — the fabrics themselves, and a DRAM controller
//! whose bandwidth is shared among all concurrently active IPs.

use core::fmt;

use crate::error::SimError;

/// An IP's execution engine: `lanes × ops_per_cycle_per_lane × frequency ×
/// efficiency` operations per second.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeEngine {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Number of parallel lanes (cores, shader ALUd groups, threads).
    pub lanes: f64,
    /// Operations issued per cycle per lane.
    pub ops_per_cycle_per_lane: f64,
    /// Sustained fraction of the theoretical issue rate in `(0, 1]`.
    pub efficiency: f64,
}

impl ComputeEngine {
    /// Creates an engine from microarchitectural parameters.
    pub fn new(
        frequency_hz: f64,
        lanes: f64,
        ops_per_cycle_per_lane: f64,
        efficiency: f64,
    ) -> Self {
        Self {
            frequency_hz,
            lanes,
            ops_per_cycle_per_lane,
            efficiency,
        }
    }

    /// Creates an engine that sustains exactly `gflops` GFLOPS/s — handy
    /// for calibrating to a measured ceiling.
    pub fn from_peak_gflops(gflops: f64) -> Self {
        Self {
            frequency_hz: 1.0e9,
            lanes: gflops,
            ops_per_cycle_per_lane: 1.0,
            efficiency: 1.0,
        }
    }

    /// Sustained peak in operations per second.
    pub fn peak_ops_per_sec(&self) -> f64 {
        self.frequency_hz * self.lanes * self.ops_per_cycle_per_lane * self.efficiency
    }

    fn validate(&self, ip: &str) -> Result<(), SimError> {
        for (name, v) in [
            ("frequency_hz", self.frequency_hz),
            ("lanes", self.lanes),
            ("ops_per_cycle_per_lane", self.ops_per_cycle_per_lane),
            ("efficiency", self.efficiency),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::Config {
                    what: format!("{ip}: engine {name} must be finite and > 0, got {v}"),
                });
            }
        }
        if self.efficiency > 1.0 {
            return Err(SimError::Config {
                what: format!("{ip}: engine efficiency must be <= 1"),
            });
        }
        Ok(())
    }
}

/// One level of an IP's private cache hierarchy. A kernel whose working
/// set fits within `capacity_bytes` is served at this level's bandwidth
/// and generates no traffic on the fabric or DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    /// Level label (e.g. `"L1"`, `"L2"`).
    pub name: String,
    /// Capacity in bytes (aggregate across the IP's lanes).
    pub capacity_bytes: u64,
    /// Sustained bandwidth to the engine in bytes/second.
    pub bandwidth: f64,
}

impl CacheLevel {
    /// Creates a cache level.
    pub fn new(name: impl Into<String>, capacity_bytes: u64, bandwidth: f64) -> Self {
        Self {
            name: name.into(),
            capacity_bytes,
            bandwidth,
        }
    }

    fn validate(&self, ip: &str) -> Result<(), SimError> {
        if self.capacity_bytes == 0 {
            return Err(SimError::Config {
                what: format!("{ip}: cache {} has zero capacity", self.name),
            });
        }
        if !self.bandwidth.is_finite() || self.bandwidth <= 0.0 {
            return Err(SimError::Config {
                what: format!("{ip}: cache {} bandwidth must be > 0", self.name),
            });
        }
        Ok(())
    }
}

/// A software-managed scratchpad. For the streaming kernel it behaves
/// like a last cache level — a kernel whose working set the program can
/// place entirely in the scratchpad is served at its bandwidth — but
/// unlike a cache the residency decision belongs to software, so it is
/// only consulted when no cache level fits.
#[derive(Debug, Clone, PartialEq)]
pub struct Scratchpad {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
}

/// The memory-access pattern of a kernel, which determines how efficiently
/// the IP's DRAM path is used. The paper's CPU kernel both reads and
/// writes each word (achieving 15.1 of ~20 GB/s read-only), while the GPU
/// variant is a stream read + separate stream update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficPattern {
    /// Read-modify-write of one array in place.
    ReadModifyWrite,
    /// Stream read of one array, stream write of another.
    StreamCopy,
    /// Pure stream read (the paper's read-only sanity check).
    StreamRead,
}

/// Per-pattern efficiency factors applied to an IP's DRAM-path bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternEfficiency {
    /// Factor for [`TrafficPattern::ReadModifyWrite`].
    pub read_modify_write: f64,
    /// Factor for [`TrafficPattern::StreamCopy`].
    pub stream_copy: f64,
    /// Factor for [`TrafficPattern::StreamRead`].
    pub stream_read: f64,
}

impl PatternEfficiency {
    /// No pattern penalty at all.
    pub fn unity() -> Self {
        Self {
            read_modify_write: 1.0,
            stream_copy: 1.0,
            stream_read: 1.0,
        }
    }

    /// The factor for a pattern.
    pub fn factor(&self, pattern: TrafficPattern) -> f64 {
        match pattern {
            TrafficPattern::ReadModifyWrite => self.read_modify_write,
            TrafficPattern::StreamCopy => self.stream_copy,
            TrafficPattern::StreamRead => self.stream_read,
        }
    }

    fn validate(&self, ip: &str) -> Result<(), SimError> {
        for (name, v) in [
            ("read_modify_write", self.read_modify_write),
            ("stream_copy", self.stream_copy),
            ("stream_read", self.stream_read),
        ] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(SimError::Config {
                    what: format!("{ip}: pattern efficiency {name} must be in (0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for PatternEfficiency {
    fn default() -> Self {
        Self::unity()
    }
}

/// The numeric formats an execution engine supports. The paper's Section
/// IV-D notes the Hexagon HVX vector unit "operates only on integer
/// vectors", so the floating-point microbenchmark cannot run there
/// without method changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NumericSupport {
    /// IEEE floating point and integers (CPU, GPU, DSP scalar unit).
    #[default]
    FloatAndInt,
    /// Integer vectors only (e.g. Hexagon HVX).
    IntegerOnly,
}

impl NumericSupport {
    /// Whether a kernel of the given data type can execute here.
    pub fn supports(self, data_type: crate::kernel::DataType) -> bool {
        match self {
            NumericSupport::FloatAndInt => true,
            NumericSupport::IntegerOnly => {
                matches!(data_type, crate::kernel::DataType::Int)
            }
        }
    }
}

/// One IP block of the simulated SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct IpConfig {
    /// IP name (e.g. `"Kryo CPU"`).
    pub name: String,
    /// The execution engine.
    pub engine: ComputeEngine,
    /// Private cache levels, smallest first.
    pub caches: Vec<CacheLevel>,
    /// Optional software-managed scratchpad.
    pub scratchpad: Option<Scratchpad>,
    /// Port bandwidth onto the fabric, bytes/second (the Gables `Bi`).
    pub port_bandwidth: f64,
    /// Index into [`SocConfig::fabrics`] of the fabric this IP hangs off.
    pub fabric: usize,
    /// Pattern efficiency of the IP's DRAM path.
    pub pattern_efficiency: PatternEfficiency,
    /// Which numeric formats the engine executes.
    pub numeric: NumericSupport,
}

impl IpConfig {
    /// The serving cache level for a working set, if it fits in any.
    pub fn serving_cache(&self, working_set_bytes: u64) -> Option<&CacheLevel> {
        self.caches
            .iter()
            .find(|c| c.capacity_bytes >= working_set_bytes)
    }
}

/// An interconnect fabric: a shared bandwidth domain between IP ports and
/// the memory controller (Figure 3's "high bandwidth fabric", "multimedia
/// fabric", etc.).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Fabric name.
    pub name: String,
    /// Aggregate bandwidth in bytes/second.
    pub bandwidth: f64,
}

/// The DRAM controller: peak bandwidth shared by every requestor.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Theoretical peak bandwidth in bytes/second (e.g. ~30 GB/s LPDDR4x).
    pub peak_bandwidth: f64,
    /// Sustained fraction of peak achievable by real request streams.
    pub efficiency: f64,
}

impl DramConfig {
    /// The sustainable shared bandwidth, `peak × efficiency`.
    pub fn effective_bandwidth(&self) -> f64 {
        self.peak_bandwidth * self.efficiency
    }
}

/// A complete simulated SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// SoC name (e.g. `"snapdragon-835-like"`).
    pub name: String,
    /// IP blocks.
    pub ips: Vec<IpConfig>,
    /// Interconnect fabrics.
    pub fabrics: Vec<FabricConfig>,
    /// The DRAM controller.
    pub dram: DramConfig,
}

impl SocConfig {
    /// Validates every parameter; call before simulating.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.ips.is_empty() {
            return Err(SimError::Config {
                what: "SoC has no IPs".into(),
            });
        }
        if self.fabrics.is_empty() {
            return Err(SimError::Config {
                what: "SoC has no fabrics".into(),
            });
        }
        for ip in &self.ips {
            ip.engine.validate(&ip.name)?;
            for c in &ip.caches {
                c.validate(&ip.name)?;
            }
            // Cache capacities must be strictly increasing so "first fit"
            // finds the nearest level.
            for pair in ip.caches.windows(2) {
                if pair[1].capacity_bytes <= pair[0].capacity_bytes {
                    return Err(SimError::Config {
                        what: format!(
                            "{}: cache capacities must be strictly increasing ({} then {})",
                            ip.name, pair[0].name, pair[1].name
                        ),
                    });
                }
            }
            if let Some(sp) = &ip.scratchpad {
                if sp.capacity_bytes == 0 || !sp.bandwidth.is_finite() || sp.bandwidth <= 0.0 {
                    return Err(SimError::Config {
                        what: format!("{}: invalid scratchpad", ip.name),
                    });
                }
            }
            if !ip.port_bandwidth.is_finite() || ip.port_bandwidth <= 0.0 {
                return Err(SimError::Config {
                    what: format!("{}: port bandwidth must be > 0", ip.name),
                });
            }
            if ip.fabric >= self.fabrics.len() {
                return Err(SimError::Config {
                    what: format!(
                        "{}: fabric index {} out of range ({} fabrics)",
                        ip.name,
                        ip.fabric,
                        self.fabrics.len()
                    ),
                });
            }
            ip.pattern_efficiency.validate(&ip.name)?;
        }
        for f in &self.fabrics {
            if !f.bandwidth.is_finite() || f.bandwidth <= 0.0 {
                return Err(SimError::Config {
                    what: format!("fabric {}: bandwidth must be > 0", f.name),
                });
            }
        }
        if !self.dram.peak_bandwidth.is_finite() || self.dram.peak_bandwidth <= 0.0 {
            return Err(SimError::Config {
                what: "DRAM peak bandwidth must be > 0".into(),
            });
        }
        if !self.dram.efficiency.is_finite()
            || self.dram.efficiency <= 0.0
            || self.dram.efficiency > 1.0
        {
            return Err(SimError::Config {
                what: "DRAM efficiency must be in (0, 1]".into(),
            });
        }
        Ok(())
    }

    /// Finds an IP by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownIp`] if no IP carries `name`.
    pub fn ip_index(&self, name: &str) -> Result<usize, SimError> {
        self.ips
            .iter()
            .position(|ip| ip.name == name)
            .ok_or_else(|| SimError::UnknownIp { name: name.into() })
    }
}

impl fmt::Display for SocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: DRAM {:.1} GB/s x {:.2} eff, {} fabrics, {} IPs",
            self.name,
            self.dram.peak_bandwidth / 1e9,
            self.dram.efficiency,
            self.fabrics.len(),
            self.ips.len()
        )?;
        for ip in &self.ips {
            writeln!(
                f,
                "  {}: {:.1} GFLOPS/s peak, port {:.1} GB/s, fabric {} ({}), {} cache levels",
                ip.name,
                ip.engine.peak_ops_per_sec() / 1e9,
                ip.port_bandwidth / 1e9,
                ip.fabric,
                self.fabrics[ip.fabric].name,
                ip.caches.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn engine_peak_arithmetic() {
        let e = ComputeEngine::new(1.9e9, 8.0, 0.5, 1.0);
        assert!((e.peak_ops_per_sec() - 7.6e9).abs() < 1e-3);
        let c = ComputeEngine::from_peak_gflops(349.6);
        assert!((c.peak_ops_per_sec() - 349.6e9).abs() < 1.0);
    }

    #[test]
    fn serving_cache_first_fit() {
        let ip = IpConfig {
            name: "X".into(),
            engine: ComputeEngine::from_peak_gflops(1.0),
            caches: vec![
                CacheLevel::new("L1", 64 << 10, 200.0e9),
                CacheLevel::new("L2", 2 << 20, 80.0e9),
            ],
            scratchpad: None,
            port_bandwidth: 10.0e9,
            fabric: 0,
            pattern_efficiency: PatternEfficiency::unity(),
            numeric: NumericSupport::FloatAndInt,
        };
        assert_eq!(ip.serving_cache(32 << 10).unwrap().name, "L1");
        assert_eq!(ip.serving_cache(256 << 10).unwrap().name, "L2");
        assert!(ip.serving_cache(16 << 20).is_none());
    }

    #[test]
    fn presets_validate() {
        presets::snapdragon_835_like().validate().unwrap();
        presets::snapdragon_821_like().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut soc = presets::snapdragon_835_like();
        soc.ips[0].port_bandwidth = -1.0;
        assert!(soc.validate().is_err());

        let mut soc = presets::snapdragon_835_like();
        soc.ips[0].fabric = 99;
        assert!(soc.validate().is_err());

        let mut soc = presets::snapdragon_835_like();
        soc.dram.efficiency = 1.5;
        assert!(soc.validate().is_err());

        let mut soc = presets::snapdragon_835_like();
        soc.ips.clear();
        assert!(soc.validate().is_err());

        let mut soc = presets::snapdragon_835_like();
        soc.ips[0].engine.efficiency = 0.0;
        assert!(soc.validate().is_err());

        // Non-increasing cache capacities.
        let mut soc = presets::snapdragon_835_like();
        if soc.ips[0].caches.len() >= 2 {
            soc.ips[0].caches[1].capacity_bytes = 1;
            assert!(soc.validate().is_err());
        }
    }

    #[test]
    fn pattern_efficiency_factors() {
        let pe = PatternEfficiency {
            read_modify_write: 0.755,
            stream_copy: 0.9,
            stream_read: 1.0,
        };
        assert_eq!(pe.factor(TrafficPattern::ReadModifyWrite), 0.755);
        assert_eq!(pe.factor(TrafficPattern::StreamCopy), 0.9);
        assert_eq!(pe.factor(TrafficPattern::StreamRead), 1.0);
        assert_eq!(PatternEfficiency::default(), PatternEfficiency::unity());
    }

    #[test]
    fn ip_index_lookup() {
        let soc = presets::snapdragon_835_like();
        assert_eq!(soc.ip_index("Kryo CPU").unwrap(), 0);
        assert!(soc.ip_index("nonexistent").is_err());
    }

    #[test]
    fn dram_effective_bandwidth() {
        let d = DramConfig {
            peak_bandwidth: 30.0e9,
            efficiency: 0.85,
        };
        assert!((d.effective_bandwidth() - 25.5e9).abs() < 1.0);
    }

    #[test]
    fn display_summarizes() {
        let text = presets::snapdragon_835_like().to_string();
        assert!(text.contains("Kryo CPU"));
        assert!(text.contains("Adreno 540 GPU"));
    }
}
