//! Run observability: per-epoch bottleneck attribution and exporters.
//!
//! The Gables model's whole point is diagnosing *which* of the three
//! bottlenecks binds — IP compute (`Ai·Ppeak`), the IP's port/local
//! memory (`Bi`), or the shared DRAM interface (`Bpeak`). The engine's
//! completion-to-completion loop already computes piecewise-constant
//! per-flow rates; this module captures that information instead of
//! discarding it.
//!
//! At every epoch boundary the engine hands an [`Epoch`] to the run's
//! [`Recorder`]: the allocated byte rate and binding constraint of every
//! active flow, DRAM utilization, the arbiter's iteration count, and the
//! thermal state. [`NullRecorder`] (the default) declines the data before
//! it is even assembled, so an unobserved run does no extra work;
//! [`TimelineRecorder`] keeps the full timeline for export.
//!
//! Rolled-up attribution is always available: every
//! [`JobResult`](crate::engine::JobResult) carries a
//! [`BottleneckBreakdown`] — the fraction of the job's wall time spent
//! bound by each constraint — because the accumulation is a handful of
//! adds per epoch and keeps observed and unobserved runs bit-identical.
//!
//! Exporters are hand-rolled on `std` only (the workspace builds
//! offline): Chrome trace-event JSON (loadable in `chrome://tracing` or
//! Perfetto), a CSV timeline, and a human-readable text report.

use core::fmt;

use crate::engine::{RunResult, ServedFrom};

/// The constraint that bound a flow during one epoch — which min in the
/// max-min arbitration was tight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingConstraint {
    /// The IP's compute engine (`peak_ops / intensity`, after thermal
    /// derating) could not consume bytes any faster.
    Compute,
    /// The IP's port onto its fabric was saturated.
    Port,
    /// A shared interconnect fabric was saturated.
    Fabric,
    /// The shared DRAM controller was saturated.
    Dram,
    /// The serving private cache's bandwidth was the limit.
    Cache,
    /// The software-managed scratchpad's bandwidth was the limit.
    Scratchpad,
}

impl BindingConstraint {
    /// All constraints, in display order.
    pub const ALL: [BindingConstraint; 6] = [
        BindingConstraint::Compute,
        BindingConstraint::Port,
        BindingConstraint::Fabric,
        BindingConstraint::Dram,
        BindingConstraint::Cache,
        BindingConstraint::Scratchpad,
    ];

    /// A short lowercase label (stable; used by the CSV and JSON
    /// exporters).
    pub fn label(self) -> &'static str {
        match self {
            BindingConstraint::Compute => "compute",
            BindingConstraint::Port => "port",
            BindingConstraint::Fabric => "fabric",
            BindingConstraint::Dram => "dram",
            BindingConstraint::Cache => "cache",
            BindingConstraint::Scratchpad => "scratchpad",
        }
    }

    /// A one-character glyph for timeline rendering.
    pub fn glyph(self) -> char {
        match self {
            BindingConstraint::Compute => 'C',
            BindingConstraint::Port => 'P',
            BindingConstraint::Fabric => 'F',
            BindingConstraint::Dram => 'D',
            BindingConstraint::Cache => '$',
            BindingConstraint::Scratchpad => 'S',
        }
    }
}

impl fmt::Display for BindingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fraction of a job's wall time spent bound by each constraint.
///
/// Produced for every job of every run (see the module docs). The
/// fractions are non-negative and sum to 1 (within floating-point error)
/// for any job that ran for a positive duration; a degenerate zero-length
/// job reports all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BottleneckBreakdown {
    /// Fraction bound by the IP's compute engine.
    pub compute: f64,
    /// Fraction bound by the IP's port bandwidth.
    pub port: f64,
    /// Fraction bound by a shared fabric.
    pub fabric: f64,
    /// Fraction bound by the shared DRAM controller.
    pub dram: f64,
    /// Fraction bound by the serving cache's bandwidth.
    pub cache: f64,
    /// Fraction bound by the scratchpad's bandwidth.
    pub scratchpad: f64,
}

impl BottleneckBreakdown {
    /// The fraction attributed to one constraint.
    pub fn fraction(&self, constraint: BindingConstraint) -> f64 {
        match constraint {
            BindingConstraint::Compute => self.compute,
            BindingConstraint::Port => self.port,
            BindingConstraint::Fabric => self.fabric,
            BindingConstraint::Dram => self.dram,
            BindingConstraint::Cache => self.cache,
            BindingConstraint::Scratchpad => self.scratchpad,
        }
    }

    /// The sum of all fractions (1 for any non-degenerate job, 0 for a
    /// zero-length one).
    pub fn total(&self) -> f64 {
        BindingConstraint::ALL
            .iter()
            .map(|&c| self.fraction(c))
            .sum()
    }

    /// The constraint with the largest share of the job's wall time.
    /// Ties resolve in [`BindingConstraint::ALL`] order.
    pub fn dominant(&self) -> BindingConstraint {
        let mut best = BindingConstraint::Compute;
        let mut best_f = f64::NEG_INFINITY;
        for &c in &BindingConstraint::ALL {
            let f = self.fraction(c);
            if f > best_f {
                best = c;
                best_f = f;
            }
        }
        best
    }

    /// Adds `seconds` to one constraint's bucket (used by the engine
    /// while accumulating raw bound-time; fractions come from
    /// [`Self::normalized`]).
    pub(crate) fn add(&mut self, constraint: BindingConstraint, seconds: f64) {
        match constraint {
            BindingConstraint::Compute => self.compute += seconds,
            BindingConstraint::Port => self.port += seconds,
            BindingConstraint::Fabric => self.fabric += seconds,
            BindingConstraint::Dram => self.dram += seconds,
            BindingConstraint::Cache => self.cache += seconds,
            BindingConstraint::Scratchpad => self.scratchpad += seconds,
        }
    }

    /// Converts accumulated seconds to fractions of their own total, so
    /// the result sums to 1 exactly up to rounding. A zero total (a job
    /// that never ran) yields all zeros rather than dividing by zero.
    pub(crate) fn normalized(&self) -> Self {
        let total = self.total();
        if total <= 0.0 {
            return Self::default();
        }
        Self {
            compute: self.compute / total,
            port: self.port / total,
            fabric: self.fabric / total,
            dram: self.dram / total,
            cache: self.cache / total,
            scratchpad: self.scratchpad / total,
        }
    }
}

impl fmt::Display for BottleneckBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &c in &BindingConstraint::ALL {
            let frac = self.fraction(c);
            if frac > 0.0005 {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{} {:.1}%", c.label(), frac * 100.0)?;
                first = false;
            }
        }
        if first {
            f.write_str("idle")?;
        }
        Ok(())
    }
}

/// One flow's allocation during one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochFlow {
    /// Index of the job in the run's input order.
    pub job: usize,
    /// The IP running the job.
    pub ip: usize,
    /// The allocated byte rate over this epoch.
    pub rate_bytes_per_sec: f64,
    /// Which constraint was tight for this flow.
    pub binding: BindingConstraint,
}

/// One epoch of piecewise-constant rates between completion boundaries
/// (or thermal quanta).
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    /// Zero-based epoch number.
    pub index: usize,
    /// Epoch start, seconds from run start.
    pub t_start: f64,
    /// Epoch end, seconds from run start.
    pub t_end: f64,
    /// Every still-active flow's allocation.
    pub flows: Vec<EpochFlow>,
    /// Fraction of the DRAM controller's effective bandwidth in use.
    pub dram_utilization: f64,
    /// Progressive-filling rounds the arbiter ran for this epoch.
    pub arbiter_rounds: u32,
    /// Junction temperature at the end of the epoch (`None` without the
    /// thermal model).
    pub temperature_c: Option<f64>,
    /// The thermal derate factor applied to compute caps this epoch
    /// (1.0 without the thermal model).
    pub derate: f64,
}

impl Epoch {
    /// Epoch duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Observes a run at epoch granularity.
///
/// The engine asks [`Recorder::is_enabled`] before assembling an
/// [`Epoch`], so a disabled recorder costs one virtual call per epoch and
/// nothing else. Implementations must not influence the simulation —
/// the engine hands out data, never control.
pub trait Recorder {
    /// Whether the engine should assemble and deliver epochs at all.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Called once per epoch, in time order.
    fn record_epoch(&mut self, epoch: Epoch);
}

/// The zero-cost default: discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record_epoch(&mut self, _epoch: Epoch) {}
}

/// Retains the full epoch timeline for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineRecorder {
    epochs: Vec<Epoch>,
}

impl TimelineRecorder {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded epochs, in time order.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Total arbiter iterations across all epochs.
    pub fn total_arbiter_rounds(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| u64::from(e.arbiter_rounds))
            .sum()
    }

    /// Time-weighted mean DRAM utilization over the run.
    pub fn mean_dram_utilization(&self) -> f64 {
        let total: f64 = self.epochs.iter().map(Epoch::duration).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.epochs
            .iter()
            .map(|e| e.dram_utilization * e.duration())
            .sum::<f64>()
            / total
    }
}

impl Recorder for TimelineRecorder {
    fn record_epoch(&mut self, epoch: Epoch) {
        self.epochs.push(epoch);
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for JSON (finite guard: NaN/inf become 0, which JSON
/// cannot represent).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn ip_label(ip_names: &[String], ip: usize) -> String {
    ip_names
        .get(ip)
        .cloned()
        .unwrap_or_else(|| format!("IP{ip}"))
}

/// Renders the timeline as Chrome trace-event JSON — one track (`tid`)
/// per IP, complete (`"ph":"X"`) events per epoch-flow, plus counter
/// tracks for DRAM utilization and temperature. Load the output in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Timestamps are microseconds of simulated time.
pub fn chrome_trace_json(epochs: &[Epoch], ip_names: &[String]) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"gables-soc-sim"}}"#
            .to_string(),
    );
    // One named thread per IP that ever appears.
    let mut seen_ips: Vec<usize> = epochs
        .iter()
        .flat_map(|e| e.flows.iter().map(|f| f.ip))
        .collect();
    seen_ips.sort_unstable();
    seen_ips.dedup();
    for &ip in &seen_ips {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"{}"}}}}"#,
            ip,
            json_escape(&ip_label(ip_names, ip)),
        ));
    }
    for epoch in epochs {
        let ts = epoch.t_start * 1e6;
        let dur = epoch.duration() * 1e6;
        for flow in &epoch.flows {
            events.push(format!(
                r#"{{"name":"{}","cat":"flow","ph":"X","pid":1,"tid":{},"ts":{},"dur":{},"args":{{"job":{},"rate_gbps":{},"binding":"{}","epoch":{}}}}}"#,
                flow.binding.label(),
                flow.ip,
                json_num(ts),
                json_num(dur),
                flow.job,
                json_num(flow.rate_bytes_per_sec / 1e9),
                flow.binding.label(),
                epoch.index,
            ));
        }
        events.push(format!(
            r#"{{"name":"DRAM utilization","ph":"C","pid":1,"ts":{},"args":{{"utilization":{}}}}}"#,
            json_num(ts),
            json_num(epoch.dram_utilization),
        ));
        events.push(format!(
            r#"{{"name":"arbiter rounds","ph":"C","pid":1,"ts":{},"args":{{"rounds":{}}}}}"#,
            json_num(ts),
            epoch.arbiter_rounds,
        ));
        if let Some(temp) = epoch.temperature_c {
            events.push(format!(
                r#"{{"name":"temperature","ph":"C","pid":1,"ts":{},"args":{{"celsius":{}}}}}"#,
                json_num(ts),
                json_num(temp),
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the timeline as CSV: one row per flow per epoch.
pub fn csv_timeline(epochs: &[Epoch], ip_names: &[String]) -> String {
    let mut out = String::from(
        "epoch,t_start_s,t_end_s,job,ip,ip_name,rate_bytes_per_sec,binding,\
         dram_utilization,arbiter_rounds,temperature_c,derate\n",
    );
    for epoch in epochs {
        for flow in &epoch.flows {
            let name = ip_label(ip_names, flow.ip);
            // Spec names are alphanumeric, but a spec file could smuggle a
            // comma or quote into an IP name; quote defensively.
            let name = if name.contains([',', '"', '\n']) {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name
            };
            out.push_str(&format!(
                "{},{:e},{:e},{},{},{},{:e},{},{:.6},{},{},{:.6}\n",
                epoch.index,
                epoch.t_start,
                epoch.t_end,
                flow.job,
                flow.ip,
                name,
                flow.rate_bytes_per_sec,
                flow.binding.label(),
                epoch.dram_utilization,
                epoch.arbiter_rounds,
                epoch
                    .temperature_c
                    .map_or_else(|| "".to_string(), |t| format!("{t:.3}")),
                epoch.derate,
            ));
        }
    }
    out
}

/// Renders a human-readable bottleneck report for a run.
pub fn text_report(result: &RunResult, epochs: &[Epoch], ip_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str("=== Gables run report ===\n");
    out.push_str(&format!(
        "makespan      {:.6e} s\naggregate     {:.3} GFLOPS/s\n",
        result.makespan_seconds,
        result.aggregate_flops_per_sec / 1e9,
    ));
    match result.peak_temperature_c {
        Some(t) => out.push_str(&format!("peak temp     {t:.1} C\n")),
        None => out.push_str("peak temp     n/a (thermal model disabled)\n"),
    }
    out.push_str(&format!("epochs        {}\n", epochs.len()));
    let rounds: u64 = epochs.iter().map(|e| u64::from(e.arbiter_rounds)).sum();
    out.push_str(&format!("arbiter iters {rounds}\n"));
    let total_t: f64 = epochs.iter().map(Epoch::duration).sum();
    if total_t > 0.0 {
        let util: f64 = epochs
            .iter()
            .map(|e| e.dram_utilization * e.duration())
            .sum::<f64>()
            / total_t;
        out.push_str(&format!(
            "DRAM util     {:.1}% (time-weighted mean)\n",
            util * 100.0
        ));
    }
    out.push_str("\nper-job bottleneck attribution:\n");
    for (i, job) in result.jobs.iter().enumerate() {
        let served = match &job.served_from {
            ServedFrom::Cache(name) => format!("cache {name}"),
            ServedFrom::Scratchpad => "scratchpad".to_string(),
            ServedFrom::Dram => "DRAM".to_string(),
        };
        out.push_str(&format!(
            "  job {i} on {:<12} {:.4e} s  {:>8.2} GFLOPS/s  {:>7.2} GB/s  from {}\n",
            ip_label(ip_names, job.ip),
            job.seconds,
            job.achieved_flops_per_sec / 1e9,
            job.achieved_bytes_per_sec / 1e9,
            served,
        ));
        out.push_str(&format!(
            "        bound by: {} (dominant: {})\n",
            job.breakdown,
            job.breakdown.dominant().label(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(index: usize, t0: f64, t1: f64, flows: Vec<EpochFlow>) -> Epoch {
        Epoch {
            index,
            t_start: t0,
            t_end: t1,
            flows,
            dram_utilization: 0.5,
            arbiter_rounds: 2,
            temperature_c: None,
            derate: 1.0,
        }
    }

    fn flow(job: usize, ip: usize, binding: BindingConstraint) -> EpochFlow {
        EpochFlow {
            job,
            ip,
            rate_bytes_per_sec: 1.0e9,
            binding,
        }
    }

    #[test]
    fn breakdown_normalizes_to_unit_sum() {
        let mut b = BottleneckBreakdown::default();
        b.add(BindingConstraint::Compute, 3.0);
        b.add(BindingConstraint::Dram, 1.0);
        let n = b.normalized();
        assert!((n.total() - 1.0).abs() < 1e-12);
        assert!((n.compute - 0.75).abs() < 1e-12);
        assert!((n.dram - 0.25).abs() < 1e-12);
        assert_eq!(n.dominant(), BindingConstraint::Compute);
    }

    #[test]
    fn zero_length_breakdown_is_all_zero_not_nan() {
        let b = BottleneckBreakdown::default().normalized();
        assert_eq!(b.total(), 0.0);
        for &c in &BindingConstraint::ALL {
            assert_eq!(b.fraction(c), 0.0);
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.is_enabled());
        let mut r = TimelineRecorder::new();
        assert!(r.is_enabled());
        r.record_epoch(epoch(0, 0.0, 1.0, vec![]));
        assert_eq!(r.epochs().len(), 1);
    }

    #[test]
    fn timeline_summaries() {
        let mut r = TimelineRecorder::new();
        let mut e0 = epoch(0, 0.0, 1.0, vec![]);
        e0.dram_utilization = 1.0;
        let mut e1 = epoch(1, 1.0, 4.0, vec![]);
        e1.dram_utilization = 0.0;
        r.record_epoch(e0);
        r.record_epoch(e1);
        assert_eq!(r.total_arbiter_rounds(), 4);
        assert!((r.mean_dram_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let epochs = vec![epoch(
            0,
            0.0,
            0.5,
            vec![
                flow(0, 0, BindingConstraint::Port),
                flow(1, 1, BindingConstraint::Dram),
            ],
        )];
        let names = vec!["CPU".to_string(), "GPU".to_string()];
        let csv = csv_timeline(&epochs, &names);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,t_start_s"));
        assert!(lines[1].contains("CPU"));
        assert!(lines[1].contains(",port,"));
        assert!(lines[2].contains("GPU"));
        assert!(lines[2].contains(",dram,"));
        // Every row has the same column count as the header.
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn csv_quotes_hostile_names() {
        let epochs = vec![epoch(
            0,
            0.0,
            0.5,
            vec![flow(0, 0, BindingConstraint::Compute)],
        )];
        let names = vec!["odd,\"name".to_string()];
        let csv = csv_timeline(&epochs, &names);
        assert!(csv.contains("\"odd,\"\"name\""));
    }

    #[test]
    fn chrome_trace_smoke() {
        let epochs = vec![
            epoch(0, 0.0, 0.5, vec![flow(0, 0, BindingConstraint::Port)]),
            epoch(1, 0.5, 1.0, vec![flow(0, 0, BindingConstraint::Compute)]),
        ];
        let names = vec!["CPU".to_string()];
        let json = chrome_trace_json(&epochs, &names);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("DRAM utilization"));
        // Balanced braces/brackets (cheap structural sanity; the full
        // parser check lives in tests/chrome_trace_golden.rs).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn display_breakdown_lists_nonzero_constraints() {
        let b = BottleneckBreakdown {
            compute: 0.6,
            dram: 0.4,
            ..Default::default()
        };
        let s = b.to_string();
        assert!(s.contains("compute 60.0%"));
        assert!(s.contains("dram 40.0%"));
        assert!(!s.contains("port"));
        assert_eq!(BottleneckBreakdown::default().to_string(), "idle");
    }
}
