//! The rate-based execution engine.
//!
//! Each job (an IP running a roofline kernel) is a *flow* whose byte rate
//! is bounded privately by its compute engine (`peak_ops / intensity`),
//! its serving memory level, and — when streaming from DRAM — its port,
//! and bounded collectively by the shared fabrics and the DRAM controller
//! via max-min arbitration. Rates are piecewise constant between job
//! completions, so the engine advances from completion to completion
//! exactly; with the thermal model enabled, compute caps drift
//! continuously and the engine steps on a fixed quantum instead.

use crate::arbiter::{allocate, ArbiterPolicy, Flow, FlowBound};
use crate::config::SocConfig;
use crate::error::SimError;
use crate::kernel::RooflineKernel;
use crate::telemetry::{
    BindingConstraint, BottleneckBreakdown, Epoch, EpochFlow, NullRecorder, Recorder,
};
use crate::thermal::{ThermalConfig, ThermalState};

/// One unit of work for the simulator: an IP index plus the kernel it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Index into [`SocConfig::ips`].
    pub ip: usize,
    /// The kernel to execute.
    pub kernel: RooflineKernel,
}

/// Where a job's data was served from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ServedFrom {
    /// A private cache level (by name).
    Cache(String),
    /// The IP's software-managed scratchpad.
    Scratchpad,
    /// Off-chip DRAM through the IP's port and fabric.
    Dram,
}

/// Per-job outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The IP that ran the job.
    pub ip: usize,
    /// Completion time from simulation start, seconds.
    pub seconds: f64,
    /// Total floating-point operations executed.
    pub flops: f64,
    /// Total bytes moved.
    pub bytes: f64,
    /// Achieved compute throughput, ops/second.
    pub achieved_flops_per_sec: f64,
    /// Achieved memory throughput, bytes/second.
    pub achieved_bytes_per_sec: f64,
    /// The serving memory level.
    pub served_from: ServedFrom,
    /// Fraction of this job's wall time bound by each constraint
    /// (compute, port, fabric, DRAM, cache, scratchpad). Always computed;
    /// sums to 1 within floating-point error.
    pub breakdown: BottleneckBreakdown,
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per-job results in input order.
    pub jobs: Vec<JobResult>,
    /// Time until the last job finished, seconds.
    pub makespan_seconds: f64,
    /// Sum of all jobs' flops.
    pub total_flops: f64,
    /// `total_flops / makespan` — the aggregate SoC throughput.
    pub aggregate_flops_per_sec: f64,
    /// Peak junction temperature reached. `Some` exactly when the thermal
    /// model is enabled (an empty run reports the ambient temperature);
    /// `None` when it is disabled — the paper's thermally controlled unit.
    pub peak_temperature_c: Option<f64>,
}

/// The simulator: a validated SoC configuration plus run policies.
#[derive(Debug, Clone)]
pub struct Simulator {
    soc: SocConfig,
    policy: ArbiterPolicy,
    thermal: Option<ThermalConfig>,
}

impl Simulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid SoC.
    pub fn new(soc: SocConfig) -> Result<Self, SimError> {
        soc.validate()?;
        Ok(Self {
            soc,
            policy: ArbiterPolicy::MaxMin,
            thermal: None,
        })
    }

    /// Selects the shared-bandwidth arbitration policy (default max-min).
    pub fn with_policy(mut self, policy: ArbiterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the thermal throttling model (default: disabled — the
    /// paper's thermally controlled unit).
    pub fn with_thermal(mut self, thermal: ThermalConfig) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// The SoC configuration.
    pub fn soc(&self) -> &SocConfig {
        &self.soc
    }

    /// Runs a set of jobs concurrently to completion.
    ///
    /// Equivalent to [`Self::run_with_recorder`] with a [`NullRecorder`]:
    /// no epoch telemetry is assembled, but every [`JobResult`] still
    /// carries its [`BottleneckBreakdown`].
    ///
    /// # Errors
    ///
    /// * [`SimError::IpIndexOutOfBounds`] / [`SimError::Kernel`] for
    ///   invalid jobs.
    /// * [`SimError::Stalled`] if no job can make progress.
    pub fn run(&self, jobs: &[Job]) -> Result<RunResult, SimError> {
        self.run_with_recorder(jobs, &mut NullRecorder)
    }

    /// Runs a set of jobs concurrently to completion, delivering one
    /// [`Epoch`] per piecewise-constant rate interval to `recorder`.
    ///
    /// Observation never perturbs the simulation: the returned
    /// [`RunResult`] is identical whatever recorder is attached.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_with_recorder(
        &self,
        jobs: &[Job],
        recorder: &mut dyn Recorder,
    ) -> Result<RunResult, SimError> {
        let _span = gables_model::obs::span("engine.run");
        for job in jobs {
            if job.ip >= self.soc.ips.len() {
                return Err(SimError::IpIndexOutOfBounds {
                    index: job.ip,
                    len: self.soc.ips.len(),
                });
            }
            job.kernel.validate()?;
            let ip = &self.soc.ips[job.ip];
            if !ip.numeric.supports(job.kernel.data_type) {
                return Err(SimError::Kernel {
                    what: format!(
                        "{} is integer-only and cannot run a {:?} kernel \
                         (the paper's Section IV-D method limitation)",
                        ip.name, job.kernel.data_type
                    ),
                });
            }
        }
        // Engine and port limits are modeled as per-job caps, which is
        // only sound when each IP runs at most one job; reject the rest
        // rather than silently double-counting an engine.
        let mut used = vec![false; self.soc.ips.len()];
        for job in jobs {
            if std::mem::replace(&mut used[job.ip], true) {
                return Err(SimError::Kernel {
                    what: format!(
                        "IP {} has more than one concurrent job; combine them into one kernel",
                        self.soc.ips[job.ip].name
                    ),
                });
            }
        }
        if jobs.is_empty() {
            return Ok(RunResult {
                jobs: Vec::new(),
                makespan_seconds: 0.0,
                total_flops: 0.0,
                aggregate_flops_per_sec: 0.0,
                // Thermal enabled: the chip idles at ambient.
                peak_temperature_c: self.thermal.as_ref().map(|t| t.ambient_c),
            });
        }

        // Resource layout: fabrics first, then DRAM last.
        let dram_res = self.soc.fabrics.len();
        let mut capacities: Vec<f64> = self.soc.fabrics.iter().map(|f| f.bandwidth).collect();
        capacities.push(self.soc.dram.effective_bandwidth());

        // Static per-job routing and caps.
        struct Live {
            idx: usize,
            remaining_bytes: f64,
            intensity: f64,
            compute_cap_bytes: f64,       // peak_ops / intensity at derate 1.0
            local_cap_bytes: Option<f64>, // serving cache/scratchpad bw
            port_cap_bytes: f64,
            resources: Vec<usize>,
            served_from: ServedFrom,
            done_at: Option<f64>,
            /// Raw seconds spent bound by each constraint (normalized to
            /// fractions when the job result is assembled).
            bound_seconds: BottleneckBreakdown,
        }
        let mut live: Vec<Live> = jobs
            .iter()
            .enumerate()
            .map(|(idx, job)| {
                let ip = &self.soc.ips[job.ip];
                let intensity = job.kernel.intensity();
                let ws = job.kernel.working_set_bytes();
                let (local_cap, resources, served_from) = if let Some(cache) = ip.serving_cache(ws)
                {
                    (
                        Some(cache.bandwidth),
                        Vec::new(),
                        ServedFrom::Cache(cache.name.clone()),
                    )
                } else if ip
                    .scratchpad
                    .as_ref()
                    .is_some_and(|sp| sp.capacity_bytes >= ws)
                {
                    let sp = ip.scratchpad.as_ref().expect("checked");
                    (Some(sp.bandwidth), Vec::new(), ServedFrom::Scratchpad)
                } else {
                    (None, vec![ip.fabric, dram_res], ServedFrom::Dram)
                };
                let pattern_factor = ip.pattern_efficiency.factor(job.kernel.pattern);
                Live {
                    idx,
                    remaining_bytes: job.kernel.total_bytes(),
                    intensity,
                    compute_cap_bytes: ip.engine.peak_ops_per_sec() / intensity,
                    local_cap_bytes: local_cap,
                    port_cap_bytes: ip.port_bandwidth * pattern_factor,
                    resources,
                    served_from,
                    done_at: None,
                    bound_seconds: BottleneckBreakdown::default(),
                }
            })
            .collect();

        let mut thermal = self.thermal.clone().map(ThermalState::new);
        let mut peak_temp = thermal.as_ref().map(|t| t.temperature_c());
        let mut now = 0.0f64;
        let mut epoch_index = 0usize;
        let observe = recorder.is_enabled();

        // Advance until every job completes.
        loop {
            let active: Vec<usize> = live
                .iter()
                .enumerate()
                .filter(|(_, l)| l.done_at.is_none())
                .map(|(i, _)| i)
                .collect();
            if active.is_empty() {
                break;
            }
            let derate = thermal.as_ref().map_or(1.0, ThermalState::derate);
            let flows: Vec<Flow> = active
                .iter()
                .map(|&i| {
                    let l = &live[i];
                    let mut cap = l.compute_cap_bytes * derate;
                    if let Some(local) = l.local_cap_bytes {
                        cap = cap.min(local);
                    } else {
                        cap = cap.min(l.port_cap_bytes);
                    }
                    Flow {
                        cap,
                        resources: l.resources.clone(),
                    }
                })
                .collect();
            let alloc = allocate(&flows, &capacities, self.policy);
            let rates = &alloc.rates;
            if rates.iter().all(|&r| r <= 0.0) {
                return Err(SimError::Stalled { at_seconds: now });
            }

            // Resolve each flow's binding constraint: a saturated shared
            // resource maps directly; a private cap is whichever of the
            // compute / local-memory / port limits formed the min (ties
            // attribute to compute, the innermost limit).
            let bindings: Vec<BindingConstraint> = active
                .iter()
                .enumerate()
                .map(|(k, &i)| {
                    let l = &live[i];
                    match alloc.bounds[k] {
                        FlowBound::Resource(j) if j == dram_res => BindingConstraint::Dram,
                        FlowBound::Resource(_) => BindingConstraint::Fabric,
                        FlowBound::Cap => {
                            let compute = l.compute_cap_bytes * derate;
                            match l.local_cap_bytes {
                                Some(local) if local < compute => match l.served_from {
                                    ServedFrom::Scratchpad => BindingConstraint::Scratchpad,
                                    _ => BindingConstraint::Cache,
                                },
                                None if l.port_cap_bytes < compute => BindingConstraint::Port,
                                _ => BindingConstraint::Compute,
                            }
                        }
                    }
                })
                .collect();

            // Time to the next completion (or thermal quantum).
            let mut dt = f64::INFINITY;
            for (k, &i) in active.iter().enumerate() {
                if rates[k] > 0.0 {
                    dt = dt.min(live[i].remaining_bytes / rates[k]);
                }
            }
            if let Some(t) = &thermal {
                dt = dt.min(t.timestep_s());
            }

            // Advance.
            for (k, &i) in active.iter().enumerate() {
                let l = &mut live[i];
                l.remaining_bytes -= rates[k] * dt;
                l.bound_seconds.add(bindings[k], dt);
                if l.remaining_bytes <= l.intensity.max(1.0) * 1e-9 {
                    l.remaining_bytes = 0.0;
                    l.done_at = Some(now + dt);
                }
            }
            if let Some(t) = &mut thermal {
                // Activity: fraction of the *active* engines' aggregate
                // peak in use (idle IPs are power-gated).
                let used: f64 = active
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| rates[k] * live[i].intensity)
                    .sum();
                let peak: f64 = active
                    .iter()
                    .map(|&i| self.soc.ips[jobs[i].ip].engine.peak_ops_per_sec())
                    .sum();
                t.step(dt, if peak > 0.0 { used / peak } else { 0.0 });
                peak_temp = Some(peak_temp.unwrap_or(0.0).max(t.temperature_c()));
            }
            if observe {
                let dram_cap = capacities[dram_res];
                let dram_load: f64 = active
                    .iter()
                    .enumerate()
                    .filter(|(_, &i)| live[i].resources.contains(&dram_res))
                    .map(|(k, _)| rates[k])
                    .sum();
                recorder.record_epoch(Epoch {
                    index: epoch_index,
                    t_start: now,
                    t_end: now + dt,
                    flows: active
                        .iter()
                        .enumerate()
                        .map(|(k, &i)| EpochFlow {
                            job: i,
                            ip: jobs[i].ip,
                            rate_bytes_per_sec: rates[k],
                            binding: bindings[k],
                        })
                        .collect(),
                    dram_utilization: if dram_cap > 0.0 {
                        dram_load / dram_cap
                    } else {
                        0.0
                    },
                    arbiter_rounds: alloc.rounds,
                    temperature_c: thermal.as_ref().map(ThermalState::temperature_c),
                    derate,
                });
            }
            epoch_index += 1;
            now += dt;
        }

        let mut results = Vec::with_capacity(jobs.len());
        for (job, l) in jobs.iter().zip(&live) {
            let seconds = l.done_at.expect("all jobs completed");
            let flops = job.kernel.total_flops();
            let bytes = job.kernel.total_bytes();
            results.push(JobResult {
                ip: job.ip,
                seconds,
                flops,
                bytes,
                achieved_flops_per_sec: flops / seconds,
                achieved_bytes_per_sec: bytes / seconds,
                served_from: l.served_from.clone(),
                breakdown: l.bound_seconds.normalized(),
            });
            debug_assert_eq!(l.idx, results.len() - 1);
        }
        let makespan = results.iter().map(|r| r.seconds).fold(0.0, f64::max);
        let total_flops: f64 = results.iter().map(|r| r.flops).sum();
        Ok(RunResult {
            aggregate_flops_per_sec: total_flops / makespan,
            jobs: results,
            makespan_seconds: makespan,
            total_flops,
            peak_temperature_c: peak_temp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrafficPattern;
    use crate::presets::snapdragon_835_like;

    fn sim() -> Simulator {
        Simulator::new(snapdragon_835_like()).unwrap()
    }

    fn cpu_kernel(flops_per_word: u32) -> RooflineKernel {
        RooflineKernel::dram_resident(flops_per_word)
    }

    #[test]
    fn single_cpu_job_low_intensity_is_bandwidth_bound() {
        let result = sim()
            .run(&[Job {
                ip: 0,
                kernel: cpu_kernel(1),
            }])
            .unwrap();
        let job = &result.jobs[0];
        assert_eq!(job.served_from, ServedFrom::Dram);
        // Calibrated CPU DRAM-path ceiling: 15.1 GB/s.
        assert!(
            (job.achieved_bytes_per_sec / 1e9 - 15.1).abs() < 0.2,
            "got {} GB/s",
            job.achieved_bytes_per_sec / 1e9
        );
    }

    #[test]
    fn single_cpu_job_high_intensity_is_compute_bound() {
        let result = sim()
            .run(&[Job {
                ip: 0,
                kernel: cpu_kernel(1024),
            }])
            .unwrap();
        let job = &result.jobs[0];
        // Calibrated CPU peak: 7.5 GFLOPS/s.
        assert!(
            (job.achieved_flops_per_sec / 1e9 - 7.5).abs() < 0.1,
            "got {} GFLOPS/s",
            job.achieved_flops_per_sec / 1e9
        );
    }

    #[test]
    fn small_arrays_are_served_from_cache_at_higher_bandwidth() {
        let small = cpu_kernel(1).with_array_bytes(64 << 10);
        let result = sim()
            .run(&[Job {
                ip: 0,
                kernel: small,
            }])
            .unwrap();
        let job = &result.jobs[0];
        assert!(matches!(job.served_from, ServedFrom::Cache(_)));
        assert!(job.achieved_bytes_per_sec > 15.1e9);
    }

    #[test]
    fn concurrent_jobs_share_dram() {
        // Two identical low-intensity CPU-class jobs on CPU and GPU: their
        // combined DRAM throughput cannot exceed the controller.
        let jobs = vec![
            Job {
                ip: 0,
                kernel: cpu_kernel(1),
            },
            Job {
                ip: 1,
                kernel: RooflineKernel {
                    pattern: TrafficPattern::StreamCopy,
                    ..cpu_kernel(1)
                },
            },
        ];
        let s = sim();
        let result = s.run(&jobs).unwrap();
        let dram_cap = s.soc().dram.effective_bandwidth();
        // Aggregate bytes/s while both run cannot exceed the controller;
        // check via each job's achieved rate at its own completion bound.
        for job in &result.jobs {
            assert!(job.achieved_bytes_per_sec <= dram_cap * (1.0 + 1e-9));
        }
        let min_seconds = result
            .jobs
            .iter()
            .map(|j| j.seconds)
            .fold(f64::INFINITY, f64::min);
        let joint_bytes_rate: f64 = result
            .jobs
            .iter()
            .map(|j| j.bytes.min(j.achieved_bytes_per_sec * min_seconds) / min_seconds)
            .sum();
        assert!(joint_bytes_rate <= dram_cap * (1.0 + 1e-6));
    }

    #[test]
    fn concurrency_slows_each_job_down() {
        let solo = sim()
            .run(&[Job {
                ip: 0,
                kernel: cpu_kernel(1),
            }])
            .unwrap()
            .jobs[0]
            .seconds;
        let pair = sim()
            .run(&[
                Job {
                    ip: 0,
                    kernel: cpu_kernel(1),
                },
                Job {
                    ip: 1,
                    kernel: RooflineKernel {
                        pattern: TrafficPattern::StreamCopy,
                        ..cpu_kernel(1)
                    },
                },
            ])
            .unwrap();
        assert!(pair.jobs[0].seconds >= solo * (1.0 - 1e-9));
    }

    #[test]
    fn empty_run_is_trivial() {
        let result = sim().run(&[]).unwrap();
        assert_eq!(result.makespan_seconds, 0.0);
        assert!(result.jobs.is_empty());
    }

    #[test]
    fn invalid_jobs_are_rejected() {
        assert!(matches!(
            sim()
                .run(&[Job {
                    ip: 99,
                    kernel: cpu_kernel(1)
                }])
                .unwrap_err(),
            SimError::IpIndexOutOfBounds { .. }
        ));
        let mut bad = cpu_kernel(1);
        bad.trials = 0;
        assert!(matches!(
            sim().run(&[Job { ip: 0, kernel: bad }]).unwrap_err(),
            SimError::Kernel { .. }
        ));
    }

    #[test]
    fn two_jobs_on_one_ip_are_rejected() {
        // Engine/port limits are per-job caps; two jobs on one IP would
        // double-count the engine.
        let err = sim()
            .run(&[
                Job {
                    ip: 0,
                    kernel: cpu_kernel(1),
                },
                Job {
                    ip: 0,
                    kernel: cpu_kernel(8),
                },
            ])
            .unwrap_err();
        assert!(
            err.to_string().contains("more than one concurrent job"),
            "{err}"
        );
    }

    #[test]
    fn thermal_throttling_reduces_sustained_performance() {
        // A kernel long enough to heat the chip past its threshold.
        let long = RooflineKernel {
            trials: 600,
            ..cpu_kernel(1024)
        };
        let cool = sim()
            .run(&[Job {
                ip: 0,
                kernel: long,
            }])
            .unwrap();
        let hot = Simulator::new(snapdragon_835_like())
            .unwrap()
            .with_thermal(crate::thermal::ThermalConfig::phone_default())
            .run(&[Job {
                ip: 0,
                kernel: long,
            }])
            .unwrap();
        assert!(hot.peak_temperature_c.unwrap() > 70.0);
        assert!(
            hot.jobs[0].achieved_flops_per_sec < cool.jobs[0].achieved_flops_per_sec,
            "throttling should cost performance"
        );
        assert!(cool.peak_temperature_c.is_none());
    }

    #[test]
    fn makespan_and_aggregate_are_consistent() {
        let jobs = vec![
            Job {
                ip: 0,
                kernel: cpu_kernel(64),
            },
            Job {
                ip: 1,
                kernel: RooflineKernel {
                    pattern: TrafficPattern::StreamCopy,
                    ..cpu_kernel(64)
                },
            },
        ];
        let result = sim().run(&jobs).unwrap();
        let expect = result.total_flops / result.makespan_seconds;
        assert!((result.aggregate_flops_per_sec - expect).abs() / expect < 1e-12);
        assert!(result.makespan_seconds >= result.jobs[0].seconds);
        assert!(result.makespan_seconds >= result.jobs[1].seconds);
    }

    #[test]
    fn achieved_rates_never_exceed_engine_peak() {
        let s = sim();
        for ip in 0..s.soc().ips.len() {
            let pattern = if ip == 1 {
                TrafficPattern::StreamCopy
            } else {
                TrafficPattern::ReadModifyWrite
            };
            for fpw in [1, 8, 64, 1024] {
                let k = RooflineKernel {
                    pattern,
                    ..cpu_kernel(fpw)
                };
                let r = s.run(&[Job { ip, kernel: k }]).unwrap();
                let peak = s.soc().ips[ip].engine.peak_ops_per_sec();
                assert!(r.jobs[0].achieved_flops_per_sec <= peak * (1.0 + 1e-9));
            }
        }
    }
}
