//! Calibrated SoC configurations.
//!
//! [`snapdragon_835_like`] is calibrated to the *measured ceilings* the
//! paper reports in Section IV — not to Qualcomm's microarchitecture. The
//! targets are:
//!
//! | IP | Peak (paper, measured) | DRAM path (paper, measured) |
//! |----|------------------------|------------------------------|
//! | Kryo CPU (non-NEON)     | 7.5 GFLOPS/s   | 15.1 GB/s (read+write) |
//! | Adreno 540 GPU          | 349.6 GFLOPS/s | 24.4 GB/s (stream)     |
//! | Hexagon DSP scalar unit | 3.0 GFLOPS/s   | 5.4 GB/s (Figure 9)    |
//!
//! The stated theoretical DRAM peak is 30 GB/s; the CPU's read-only sweep
//! "achieves close to 20 GB/s". The DSP hangs off a slower fabric,
//! matching the paper's explanation of its low bandwidth.

use crate::config::{
    CacheLevel, ComputeEngine, DramConfig, FabricConfig, IpConfig, NumericSupport,
    PatternEfficiency, Scratchpad, SocConfig,
};

/// Index of the CPU in the Snapdragon-like presets.
pub const CPU: usize = 0;
/// Index of the GPU in the Snapdragon-like presets.
pub const GPU: usize = 1;
/// Index of the DSP scalar unit in the Snapdragon-like presets.
pub const DSP: usize = 2;

/// A Snapdragon-835-like SoC calibrated to the paper's measured ceilings.
pub fn snapdragon_835_like() -> SocConfig {
    SocConfig {
        name: "snapdragon-835-like".into(),
        ips: vec![
            IpConfig {
                // 8 Kryo cores up to 1.9 GHz; non-NEON scalar FP multiply
                // sustains ~0.5 flops/cycle/core.
                name: "Kryo CPU".into(),
                engine: ComputeEngine::new(1.9e9, 8.0, 0.5, 7.5 / 7.6),
                caches: vec![
                    CacheLevel::new("L1", 8 * (32 << 10), 140.0e9),
                    CacheLevel::new("L2", 2 << 20, 70.0e9),
                ],
                scratchpad: None,
                // Read-only sweeps reach ~20 GB/s; the paper's default
                // read+write kernel reaches 15.1 GB/s.
                port_bandwidth: 20.0e9,
                fabric: 0,
                pattern_efficiency: PatternEfficiency {
                    read_modify_write: 15.1 / 20.0,
                    stream_copy: 0.9,
                    stream_read: 1.0,
                },
                numeric: NumericSupport::FloatAndInt,
            },
            IpConfig {
                // Adreno 540 at ~710 MHz; 1024 workgroups x 256 threads in
                // the paper's sweep; measured 349.6 of 567 theoretical
                // GFLOPS/s.
                name: "Adreno 540 GPU".into(),
                engine: ComputeEngine::new(0.71e9, 512.0, 1.0, 349.6 / 363.52),
                caches: vec![CacheLevel::new("L2", 1 << 20, 180.0e9)],
                scratchpad: None,
                port_bandwidth: 24.4e9,
                fabric: 0,
                pattern_efficiency: PatternEfficiency {
                    read_modify_write: 0.9,
                    stream_copy: 1.0,
                    stream_read: 1.0,
                },
                numeric: NumericSupport::FloatAndInt,
            },
            IpConfig {
                // Hexagon 682 scalar unit: four threads at 920 MHz, spec
                // max 3.6 GFLOPS/s, measured 3.0.
                name: "Hexagon DSP scalar".into(),
                engine: ComputeEngine::new(0.92e9, 4.0, 1.0, 3.0 / 3.68),
                caches: vec![CacheLevel::new("L1", 32 << 10, 25.0e9)],
                scratchpad: Some(Scratchpad {
                    capacity_bytes: 256 << 10,
                    bandwidth: 30.0e9,
                }),
                // Figure 9's DRAM roofline: 5.4 GB/s, "likely due to using
                // a different interconnect fabric".
                port_bandwidth: 5.4e9,
                fabric: 1,
                pattern_efficiency: PatternEfficiency::unity(),
                numeric: NumericSupport::FloatAndInt,
            },
        ],
        fabrics: vec![
            FabricConfig {
                name: "high-bandwidth fabric".into(),
                bandwidth: 28.0e9,
            },
            FabricConfig {
                name: "system fabric".into(),
                bandwidth: 6.0e9,
            },
        ],
        // Theoretical 30 GB/s LPDDR4x; sustained efficiency 0.85.
        dram: DramConfig {
            peak_bandwidth: 30.0e9,
            efficiency: 0.85,
        },
    }
}

/// The Snapdragon-835-like SoC with NEON/SIMD vectorization enabled on
/// the CPU. The paper notes that "when we apply vectorization to the code
/// with compiler support we can achieve in excess of 40 GFLOP/s (not
/// shown)" and that the GPU's 47x acceleration "diminishes down to less
/// than an order of magnitude" against the vectorized CPU.
pub fn snapdragon_835_like_neon() -> SocConfig {
    let mut soc = snapdragon_835_like();
    // 4-wide single-precision NEON on the big cores, 2-wide sustained on
    // the littles: ~5.5x the scalar issue rate.
    soc.ips[CPU].engine = ComputeEngine::new(1.9e9, 8.0, 2.75, 41.0 / 41.8);
    soc.name = "snapdragon-835-like-neon".into();
    soc
}

/// Index of the HVX vector unit in [`snapdragon_835_like_with_hvx`].
pub const HVX: usize = 3;

/// The Snapdragon-835-like SoC plus the Hexagon HVX vector unit as a
/// fourth IP. Section IV-D: the DSP has "a high-performance integer-only
/// vector unit (4096 bits per cycle)"; examining it "will require method
/// changes as the DSP operates only on integer vectors" — which the
/// simulator enforces by rejecting FP kernels on this IP. The body text's
/// 12.5 GB/s (vs Figure 9's 5.4 GB/s scalar path) is modeled as the
/// vector unit's wider DMA path.
pub fn snapdragon_835_like_with_hvx() -> SocConfig {
    let mut soc = snapdragon_835_like();
    soc.ips.push(IpConfig {
        // 4096 bits/cycle of int8 MACs at 920 MHz, derated to the ~8x-CPU
        // effective ML throughput the paper's Section II quotes.
        name: "Hexagon HVX vector".into(),
        engine: ComputeEngine::new(0.92e9, 512.0, 1.0, 0.127),
        caches: Vec::new(),
        scratchpad: Some(Scratchpad {
            capacity_bytes: 256 << 10,
            bandwidth: 60.0e9,
        }),
        port_bandwidth: 12.5e9,
        fabric: 1,
        pattern_efficiency: PatternEfficiency::unity(),
        numeric: NumericSupport::IntegerOnly,
    });
    soc.name = "snapdragon-835-like+hvx".into();
    soc
}

/// A Snapdragon-821-like SoC (the paper's second platform; it reports the
/// same qualitative findings, so this preset is shaped like the 835 with
/// the 821's four-core Kryo and Adreno 530).
pub fn snapdragon_821_like() -> SocConfig {
    SocConfig {
        name: "snapdragon-821-like".into(),
        ips: vec![
            IpConfig {
                name: "Kryo CPU".into(),
                engine: ComputeEngine::new(2.15e9, 4.0, 0.7, 1.0),
                caches: vec![
                    CacheLevel::new("L1", 4 * (32 << 10), 120.0e9),
                    CacheLevel::new("L2", (1 << 20) + (512 << 10), 60.0e9),
                ],
                scratchpad: None,
                port_bandwidth: 18.5e9,
                fabric: 0,
                pattern_efficiency: PatternEfficiency {
                    read_modify_write: 0.76,
                    stream_copy: 0.9,
                    stream_read: 1.0,
                },
                numeric: NumericSupport::FloatAndInt,
            },
            IpConfig {
                name: "Adreno 530 GPU".into(),
                engine: ComputeEngine::new(0.653e9, 512.0, 1.0, 0.84),
                caches: vec![CacheLevel::new("L2", 1 << 20, 150.0e9)],
                scratchpad: None,
                port_bandwidth: 22.0e9,
                fabric: 0,
                pattern_efficiency: PatternEfficiency {
                    read_modify_write: 0.9,
                    stream_copy: 1.0,
                    stream_read: 1.0,
                },
                numeric: NumericSupport::FloatAndInt,
            },
            IpConfig {
                name: "Hexagon 680 DSP scalar".into(),
                engine: ComputeEngine::new(0.825e9, 4.0, 1.0, 0.8),
                caches: vec![CacheLevel::new("L1", 32 << 10, 20.0e9)],
                scratchpad: Some(Scratchpad {
                    capacity_bytes: 256 << 10,
                    bandwidth: 25.0e9,
                }),
                port_bandwidth: 5.0e9,
                fabric: 1,
                pattern_efficiency: PatternEfficiency::unity(),
                numeric: NumericSupport::FloatAndInt,
            },
        ],
        fabrics: vec![
            FabricConfig {
                name: "high-bandwidth fabric".into(),
                bandwidth: 26.0e9,
            },
            FabricConfig {
                name: "system fabric".into(),
                bandwidth: 5.5e9,
            },
        ],
        dram: DramConfig {
            peak_bandwidth: 28.7e9,
            efficiency: 0.85,
        },
    }
}

/// Builds a simulator SoC that exactly realizes a Gables hardware spec:
/// IP\[i\] peaks at `Ai · Ppeak` behind port `Bi`, no caches (so every
/// kernel streams from DRAM), no pattern penalties, one wide fabric, and a
/// DRAM controller at `Bpeak`. Used to validate the simulator against the
/// analytical model.
pub fn from_gables_spec(spec: &gables_model::SocSpec) -> SocConfig {
    let ips = spec
        .ips()
        .iter()
        .map(|ip| IpConfig {
            name: ip.name().to_string(),
            engine: ComputeEngine::from_peak_gflops(
                ip.acceleration().value() * spec.ppeak().to_gops(),
            ),
            caches: Vec::new(),
            scratchpad: None,
            port_bandwidth: ip.bandwidth().value(),
            fabric: 0,
            pattern_efficiency: PatternEfficiency::unity(),
            numeric: NumericSupport::FloatAndInt,
        })
        .collect();
    SocConfig {
        name: "gables-spec".into(),
        ips,
        fabrics: vec![FabricConfig {
            name: "ideal fabric".into(),
            bandwidth: 1.0e15,
        }],
        dram: DramConfig {
            peak_bandwidth: spec.bpeak().value(),
            efficiency: 1.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_targets_835() {
        let soc = snapdragon_835_like();
        let peaks: Vec<f64> = soc
            .ips
            .iter()
            .map(|ip| ip.engine.peak_ops_per_sec() / 1e9)
            .collect();
        assert!((peaks[CPU] - 7.5).abs() < 0.01, "CPU peak {}", peaks[CPU]);
        assert!((peaks[GPU] - 349.6).abs() < 0.5, "GPU peak {}", peaks[GPU]);
        assert!((peaks[DSP] - 3.0).abs() < 0.01, "DSP peak {}", peaks[DSP]);
        // Effective read+write CPU path.
        let cpu = &soc.ips[CPU];
        let rw = cpu.port_bandwidth
            * cpu
                .pattern_efficiency
                .factor(crate::config::TrafficPattern::ReadModifyWrite);
        assert!((rw / 1e9 - 15.1).abs() < 0.01);
        assert!((soc.ips[GPU].port_bandwidth / 1e9 - 24.4).abs() < 0.01);
        assert!((soc.ips[DSP].port_bandwidth / 1e9 - 5.4).abs() < 0.01);
    }

    #[test]
    fn dsp_sits_on_the_slow_fabric() {
        let soc = snapdragon_835_like();
        assert_ne!(soc.ips[DSP].fabric, soc.ips[CPU].fabric);
        assert!(
            soc.fabrics[soc.ips[DSP].fabric].bandwidth < soc.fabrics[soc.ips[CPU].fabric].bandwidth
        );
    }

    #[test]
    fn from_gables_spec_mirrors_parameters() {
        use gables_model::two_ip::TwoIpModel;
        let spec = TwoIpModel::figure_6a().soc().unwrap();
        let sim = from_gables_spec(&spec);
        sim.validate().unwrap();
        assert_eq!(sim.ips.len(), 2);
        assert!((sim.ips[0].engine.peak_ops_per_sec() - 40.0e9).abs() < 1.0);
        assert!((sim.ips[1].engine.peak_ops_per_sec() - 200.0e9).abs() < 1.0);
        assert!((sim.ips[0].port_bandwidth - 6.0e9).abs() < 1.0);
        assert!((sim.dram.effective_bandwidth() - 10.0e9).abs() < 1.0);
    }

    #[test]
    fn neon_preset_exceeds_forty_gflops() {
        let soc = snapdragon_835_like_neon();
        soc.validate().unwrap();
        let peak = soc.ips[CPU].engine.peak_ops_per_sec() / 1e9;
        assert!(peak > 40.0, "NEON CPU peak {peak}");
        // The GPU's acceleration collapses below an order of magnitude.
        let a1 = snapdragon_835_like().ips[GPU].engine.peak_ops_per_sec()
            / soc.ips[CPU].engine.peak_ops_per_sec();
        assert!(a1 < 10.0, "vectorized acceleration {a1}");
    }

    #[test]
    fn hvx_rejects_float_kernels_but_runs_integer() {
        use crate::engine::{Job, Simulator};
        use crate::kernel::{DataType, RooflineKernel};

        let soc = snapdragon_835_like_with_hvx();
        soc.validate().unwrap();
        let sim = Simulator::new(soc).unwrap();
        // The paper's FP microbenchmark cannot target the vector unit.
        let fp = RooflineKernel::dram_resident(1024);
        let err = sim
            .run(&[Job {
                ip: HVX,
                kernel: fp,
            }])
            .unwrap_err();
        assert!(err.to_string().contains("integer-only"), "{err}");
        // The integer variant runs, at far more than the scalar unit's
        // 3 GFLOPS/s and through the wider 12.5 GB/s path.
        let int = fp.with_data_type(DataType::Int);
        let run = sim
            .run(&[Job {
                ip: HVX,
                kernel: int,
            }])
            .unwrap();
        assert!(run.jobs[0].achieved_flops_per_sec > 8.0 * 7.5e9 * 0.9);
        // FP kernels still run on all three original engines.
        for ip in [CPU, GPU, DSP] {
            assert!(sim.run(&[Job { ip, kernel: fp }]).is_ok());
        }
    }

    #[test]
    fn hvx_acceleration_matches_section_ii_claims() {
        // "8X faster than the CPU" for ML-style integer work.
        let soc = snapdragon_835_like_with_hvx();
        let cpu = soc.ips[CPU].engine.peak_ops_per_sec();
        let hvx = soc.ips[HVX].engine.peak_ops_per_sec();
        let ratio = hvx / cpu;
        assert!((7.0..9.0).contains(&ratio), "HVX/CPU ratio {ratio}");
    }

    #[test]
    fn preset_821_validates_and_is_distinct() {
        let soc = snapdragon_821_like();
        soc.validate().unwrap();
        assert_ne!(soc.name, snapdragon_835_like().name);
        assert!(soc.ips[CPU].engine.peak_ops_per_sec() < 7.5e9);
    }
}
