//! Optional thermal throttling model.
//!
//! The paper benchmarks inside a thermally controlled unit precisely
//! because sustained floating-point microbenchmarks throttle the chip and
//! make results unrepeatable. The simulator's default is that thermal
//! chamber (no throttling); enabling [`ThermalConfig`] reproduces the
//! throttling behaviour the chamber avoids, which the ablation bench uses.

/// A first-order lumped thermal model with linear frequency derating.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Ambient (and initial) temperature, °C.
    pub ambient_c: f64,
    /// Junction temperature at which derating begins, °C.
    pub throttle_threshold_c: f64,
    /// Heating rate at full activity, °C per second.
    pub heat_rate_c_per_s: f64,
    /// Cooling coefficient, per second (Newtonian cooling toward ambient).
    pub cool_rate_per_s: f64,
    /// Derating slope: fraction of peak lost per °C above the threshold.
    pub derate_per_c: f64,
    /// Floor on the derate factor.
    pub min_derate: f64,
    /// Simulation timestep when the thermal model is active, seconds.
    pub timestep_s: f64,
}

impl ThermalConfig {
    /// A phone-like default: 3 W-class SoC that throttles after a few
    /// seconds of sustained full-rate floating point.
    pub fn phone_default() -> Self {
        Self {
            ambient_c: 30.0,
            throttle_threshold_c: 70.0,
            heat_rate_c_per_s: 8.0,
            cool_rate_per_s: 0.05,
            derate_per_c: 0.02,
            min_derate: 0.4,
            timestep_s: 0.05,
        }
    }
}

/// Evolving thermal state during a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalState {
    config: ThermalConfig,
    temperature_c: f64,
}

impl ThermalState {
    /// Starts at ambient.
    pub fn new(config: ThermalConfig) -> Self {
        let temperature_c = config.ambient_c;
        Self {
            config,
            temperature_c,
        }
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// The current compute derate factor in `[min_derate, 1]`.
    pub fn derate(&self) -> f64 {
        let over = (self.temperature_c - self.config.throttle_threshold_c).max(0.0);
        (1.0 - self.config.derate_per_c * over).max(self.config.min_derate)
    }

    /// Advances the thermal state by `dt` seconds at the given activity
    /// level (0 = idle, 1 = all engines at full rate).
    pub fn step(&mut self, dt: f64, activity: f64) {
        let heating = self.config.heat_rate_c_per_s * activity.clamp(0.0, 1.0);
        let cooling = self.config.cool_rate_per_s * (self.temperature_c - self.config.ambient_c);
        self.temperature_c += dt * (heating - cooling);
    }

    /// The configured timestep.
    pub fn timestep_s(&self) -> f64 {
        self.config.timestep_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient_with_no_derate() {
        let s = ThermalState::new(ThermalConfig::phone_default());
        assert_eq!(s.temperature_c(), 30.0);
        assert_eq!(s.derate(), 1.0);
    }

    #[test]
    fn sustained_activity_heats_and_derates() {
        let mut s = ThermalState::new(ThermalConfig::phone_default());
        for _ in 0..400 {
            s.step(0.05, 1.0); // 20 simulated seconds at full tilt
        }
        assert!(s.temperature_c() > 70.0);
        assert!(s.derate() < 1.0);
        assert!(s.derate() >= 0.4);
    }

    #[test]
    fn idle_cools_toward_ambient() {
        let mut s = ThermalState::new(ThermalConfig::phone_default());
        for _ in 0..400 {
            s.step(0.05, 1.0);
        }
        let hot = s.temperature_c();
        for _ in 0..4000 {
            s.step(0.05, 0.0);
        }
        assert!(s.temperature_c() < hot);
        assert!(s.temperature_c() >= 30.0 - 1e-6);
    }

    #[test]
    fn derate_floor_holds() {
        let mut s = ThermalState::new(ThermalConfig {
            derate_per_c: 10.0, // absurd slope
            ..ThermalConfig::phone_default()
        });
        for _ in 0..2000 {
            s.step(0.05, 1.0);
        }
        assert_eq!(s.derate(), 0.4);
    }
}
