//! Trace-driven cache simulation with 3C miss classification.
//!
//! Section VI cites the 3C model (Hill & Smith) — compulsory, capacity,
//! and conflict misses — among the models computer architecture is built
//! on. This module implements it operationally: a set-associative LRU
//! cache simulated alongside a same-capacity fully-associative LRU
//! shadow, classifying each miss as
//!
//! * **compulsory** — first-ever reference to the line;
//! * **capacity** — the fully-associative shadow misses too;
//! * **conflict** — only the set-associative cache misses.
//!
//! Its practical role in this reproduction: measuring the Gables SRAM
//! extension's per-IP miss ratios `mi` from a usecase's reference pattern
//! ([`measure_miss_ratio`]) instead of assuming them.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};

use gables_model::units::MissRatio;

use crate::error::SimError;
use crate::trace::{Access, TracePattern};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Ways per set; use [`CacheConfig::fully_associative`] for one set.
    pub associativity: u32,
}

impl CacheConfig {
    /// A fully-associative configuration of the given capacity.
    pub fn fully_associative(capacity_bytes: u64, line_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            line_bytes,
            associativity: (capacity_bytes / line_bytes.max(1)).max(1) as u32,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.capacity_bytes / (self.line_bytes * u64::from(self.associativity))).max(1)
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(SimError::Config {
                what: format!("cache line size {} must be a power of two", self.line_bytes),
            });
        }
        if self.associativity == 0 {
            return Err(SimError::Config {
                what: "cache associativity must be >= 1".into(),
            });
        }
        let way_bytes = self.line_bytes * u64::from(self.associativity);
        if self.capacity_bytes < way_bytes {
            return Err(SimError::Config {
                what: format!(
                    "cache capacity {} smaller than one set ({} bytes)",
                    self.capacity_bytes, way_bytes
                ),
            });
        }
        if !self.sets().is_power_of_two() {
            return Err(SimError::Config {
                what: format!("cache set count {} must be a power of two", self.sets()),
            });
        }
        Ok(())
    }
}

/// The 3C classification of a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the line.
    Compulsory,
    /// Would miss even fully-associatively at this capacity.
    Capacity,
    /// Misses only because of limited associativity.
    Conflict,
}

/// The outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present.
    Hit,
    /// Line absent; classified per the 3C model.
    Miss(MissClass),
}

/// Aggregate statistics for a simulated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total references.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Compulsory misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Miss ratio (0 for an empty trace).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Off-chip traffic implied by the trace: fills plus writebacks, in
    /// bytes (given the line size).
    pub fn offchip_bytes(&self, line_bytes: u64) -> u64 {
        (self.misses() + self.writebacks) * line_bytes
    }
}

/// A set-associative LRU cache with a fully-associative shadow for 3C
/// classification.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: line -> (last-use time, dirty).
    sets: Vec<HashMap<u64, (u64, bool)>>,
    /// Fully-associative shadow: line -> last-use time.
    shadow: HashMap<u64, u64>,
    /// Shadow eviction order: time -> line.
    shadow_lru: BTreeMap<u64, u64>,
    shadow_capacity_lines: u64,
    /// Every line ever referenced (for compulsory classification).
    seen: HashSet<u64>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for invalid geometry (non-power-of-two
    /// line size or set count, zero associativity, capacity below one
    /// set).
    pub fn new(config: CacheConfig) -> Result<Self, SimError> {
        config.validate()?;
        let sets = config.sets();
        Ok(Self {
            config,
            sets: (0..sets).map(|_| HashMap::new()).collect(),
            shadow: HashMap::new(),
            shadow_lru: BTreeMap::new(),
            shadow_capacity_lines: (config.capacity_bytes / config.line_bytes).max(1),
            seen: HashSet::new(),
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Simulates one access, also reporting any dirty victim line evicted
    /// to make room (its *line address*, for propagation to the next
    /// hierarchy level).
    pub fn access_detailed(&mut self, access: Access) -> (AccessOutcome, Option<u64>) {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = access.addr / self.config.line_bytes;
        let set_index = (line % self.sets.len() as u64) as usize;

        // Shadow (fully-associative) result first — it must be updated on
        // every access regardless of the real cache's outcome.
        let shadow_hit = self.touch_shadow(line);
        let first_touch = self.seen.insert(line);

        let way_count = self.config.associativity as usize;
        let line_bytes = self.config.line_bytes;
        let set = &mut self.sets[set_index];
        match set.entry(line) {
            Entry::Occupied(mut e) => {
                let v = e.get_mut();
                v.0 = self.clock;
                v.1 |= access.write;
                self.stats.hits += 1;
                (AccessOutcome::Hit, None)
            }
            Entry::Vacant(_) => {
                // Miss: classify, then fill with LRU eviction.
                let class = if first_touch {
                    self.stats.compulsory += 1;
                    MissClass::Compulsory
                } else if !shadow_hit {
                    self.stats.capacity += 1;
                    MissClass::Capacity
                } else {
                    self.stats.conflict += 1;
                    MissClass::Conflict
                };
                let mut writeback = None;
                if set.len() >= way_count {
                    let (&victim, &(_, dirty)) = set
                        .iter()
                        .min_by_key(|(_, (t, _))| *t)
                        .expect("nonempty set");
                    set.remove(&victim);
                    if dirty {
                        self.stats.writebacks += 1;
                        writeback = Some(victim * line_bytes);
                    }
                }
                set.insert(line, (self.clock, access.write));
                (AccessOutcome::Miss(class), writeback)
            }
        }
    }

    /// Simulates one access (see [`access_detailed`](Self::access_detailed)
    /// for the writeback-reporting variant).
    pub fn access(&mut self, access: Access) -> AccessOutcome {
        self.access_detailed(access).0
    }

    /// Runs an entire trace and returns the final statistics.
    pub fn run_trace(&mut self, trace: &[Access]) -> CacheStats {
        for &a in trace {
            self.access(a);
        }
        self.stats
    }

    /// Touches the fully-associative shadow; returns whether it hit.
    fn touch_shadow(&mut self, line: u64) -> bool {
        let hit = if let Some(&old) = self.shadow.get(&line) {
            self.shadow_lru.remove(&old);
            true
        } else {
            if self.shadow.len() as u64 >= self.shadow_capacity_lines {
                if let Some((&t, &victim)) = self.shadow_lru.iter().next() {
                    self.shadow_lru.remove(&t);
                    self.shadow.remove(&victim);
                }
            }
            false
        };
        self.shadow.insert(line, self.clock);
        self.shadow_lru.insert(self.clock, line);
        hit
    }
}

/// Derives the *effective DRAM operational intensity* `Ii` of a workload
/// behind a cache: `total ops / off-chip bytes`. This is the paper's
/// fourth conjecture made computable — operational intensity depends on
/// hardware (cache size) and software (reuse) together, and the same code
/// has a different `Ii` behind a different cache.
///
/// `ops_per_access` is the compute performed per memory reference in the
/// trace. Returns `None` when the trace generates no off-chip traffic at
/// all (intensity is unbounded — the flat-roof regime).
pub fn effective_dram_intensity(
    stats: &CacheStats,
    line_bytes: u64,
    ops_per_access: f64,
) -> Option<f64> {
    let offchip = stats.offchip_bytes(line_bytes);
    if offchip == 0 {
        return None;
    }
    Some(stats.accesses as f64 * ops_per_access / offchip as f64)
}

/// Measures the Gables SRAM-extension miss ratio `mi` for one IP: the
/// fraction of its references that reach DRAM when a memory-side SRAM of
/// the given geometry sits in front of it (Section V-A).
///
/// # Errors
///
/// Returns [`SimError::Config`] for an invalid cache geometry.
pub fn measure_miss_ratio(
    config: CacheConfig,
    pattern: &TracePattern,
) -> Result<MissRatio, SimError> {
    let mut sim = CacheSim::new(config)?;
    let stats = sim.run_trace(&pattern.generate());
    MissRatio::new(stats.miss_ratio()).map_err(|e| SimError::Config {
        what: format!("measured miss ratio invalid: {e}"),
    })
}

#[cfg(test)]
mod invariant_tests {
    use gables_model::rng::SplitMix64;

    use super::*;
    use crate::trace::TracePattern;

    fn random_pattern(rng: &mut SplitMix64) -> TracePattern {
        match rng.range_u64(0, 2) {
            0 => TracePattern::Stream {
                bytes: rng.range_u64(1, 63) << 10,
                stride: 4,
                passes: rng.range_u64(1, 3) as u32,
                write_back: rng.chance(0.5),
            },
            1 => {
                let bytes = rng.range_u64(4, 63) << 10;
                let tiles = rng.range_u64(1, 7);
                TracePattern::Tiled {
                    bytes,
                    tile_bytes: bytes / tiles,
                    stride: 16,
                    reuse: rng.range_u64(0, 3) as u32,
                }
            }
            _ => TracePattern::RandomChase {
                bytes: rng.range_u64(1, 63) << 10,
                stride: 64,
                count: rng.range_u64(1, 1999),
            },
        }
    }

    /// The 3C identity holds and compulsory misses equal the number
    /// of distinct lines touched.
    #[test]
    fn three_c_identity() {
        let mut rng = SplitMix64::new(0x3C3C);
        for _ in 0..48 {
            let pattern = random_pattern(&mut rng);
            let cfg = CacheConfig {
                capacity_bytes: 8 << 10,
                line_bytes: 64,
                associativity: 1 << rng.range_u64(0, 3),
            };
            let trace = pattern.generate();
            let mut sim = CacheSim::new(cfg).unwrap();
            let s = sim.run_trace(&trace);
            assert_eq!(s.accesses as usize, trace.len(), "{pattern:?}");
            assert_eq!(s.hits + s.misses(), s.accesses, "{pattern:?}");
            let unique: std::collections::HashSet<u64> =
                trace.iter().map(|a| a.addr / 64).collect();
            assert_eq!(s.compulsory as usize, unique.len(), "{pattern:?}");
        }
    }

    /// A fully-associative cache never records conflict misses, and
    /// doubling a fully-associative LRU capacity never adds misses
    /// (LRU is a stack algorithm).
    #[test]
    fn fully_associative_inclusion() {
        let mut rng = SplitMix64::new(0xFA11);
        for _ in 0..48 {
            let pattern = random_pattern(&mut rng);
            let trace = pattern.generate();
            let small = CacheConfig::fully_associative(8 << 10, 64);
            let big = CacheConfig::fully_associative(16 << 10, 64);
            let mut a = CacheSim::new(small).unwrap();
            let sa = a.run_trace(&trace);
            let mut b = CacheSim::new(big).unwrap();
            let sb = b.run_trace(&trace);
            assert_eq!(sa.conflict, 0, "{pattern:?}");
            assert_eq!(sb.conflict, 0, "{pattern:?}");
            assert!(sb.misses() <= sa.misses(), "{pattern:?}");
        }
    }

    /// Writebacks never exceed the number of write accesses (clean
    /// evictions are free) and never occur for read-only traces.
    #[test]
    fn writeback_sanity() {
        let mut rng = SplitMix64::new(0x3B5A);
        for _ in 0..48 {
            let pattern = random_pattern(&mut rng);
            let trace = pattern.generate();
            let cfg = CacheConfig {
                capacity_bytes: 4 << 10,
                line_bytes: 64,
                associativity: 2,
            };
            let mut sim = CacheSim::new(cfg).unwrap();
            let s = sim.run_trace(&trace);
            // Each writeback requires at least one write since the line
            // was last filled, so writebacks can never exceed writes.
            let writes = trace.iter().filter(|a| a.write).count() as u64;
            assert!(s.writebacks <= writes, "{pattern:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(assoc: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: 4096,
            line_bytes: 64,
            associativity: assoc,
        }
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheSim::new(small(1)).is_ok());
        assert!(CacheSim::new(CacheConfig {
            line_bytes: 48,
            ..small(1)
        })
        .is_err());
        assert!(CacheSim::new(CacheConfig {
            associativity: 0,
            ..small(1)
        })
        .is_err());
        assert!(CacheSim::new(CacheConfig {
            capacity_bytes: 32,
            ..small(1)
        })
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheSim::new(CacheConfig {
            capacity_bytes: 3 * 64,
            line_bytes: 64,
            associativity: 1,
        })
        .is_err());
        assert_eq!(small(4).sets(), 16);
    }

    #[test]
    fn repeated_access_hits() {
        let mut sim = CacheSim::new(small(4)).unwrap();
        assert_eq!(
            sim.access(Access::read(0)),
            AccessOutcome::Miss(MissClass::Compulsory)
        );
        assert_eq!(sim.access(Access::read(0)), AccessOutcome::Hit);
        assert_eq!(sim.access(Access::read(32)), AccessOutcome::Hit); // same line
        assert_eq!(sim.stats().hits, 2);
        assert_eq!(sim.stats().compulsory, 1);
    }

    #[test]
    fn conflict_misses_in_direct_mapped_vanish_fully_associative() {
        // Two lines mapping to the same set of a direct-mapped cache,
        // alternated: all conflict misses after the compulsory pair.
        let cfg = small(1); // 64 sets
        let a = 0u64;
        let b = 64 * 64; // same set index, different tag
        let mut trace = Vec::new();
        for _ in 0..20 {
            trace.push(Access::read(a));
            trace.push(Access::read(b));
        }
        let mut dm = CacheSim::new(cfg).unwrap();
        let s = dm.run_trace(&trace);
        assert_eq!(s.compulsory, 2);
        assert_eq!(s.conflict, 38);
        assert_eq!(s.capacity, 0);

        let mut fa = CacheSim::new(CacheConfig::fully_associative(4096, 64)).unwrap();
        let s = fa.run_trace(&trace);
        assert_eq!(s.misses(), 2); // only compulsory
        assert_eq!(s.conflict, 0);
    }

    #[test]
    fn streaming_larger_than_cache_is_compulsory_then_capacity() {
        let cfg = small(8);
        let pattern = TracePattern::Stream {
            bytes: 64 * 1024, // 16x capacity
            stride: 64,
            passes: 2,
            write_back: false,
        };
        let mut sim = CacheSim::new(cfg).unwrap();
        let s = sim.run_trace(&pattern.generate());
        assert_eq!(s.hits, 0);
        assert_eq!(s.compulsory, 1024);
        assert_eq!(s.capacity, 1024); // second pass re-misses at capacity
        assert_eq!(s.conflict, 0); // streaming has no conflicts under LRU
        assert!((s.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_that_fits_hits_after_warmup() {
        let cfg = small(8);
        let pattern = TracePattern::Stream {
            bytes: 2048, // half the capacity
            stride: 64,
            passes: 10,
            write_back: false,
        };
        let mut sim = CacheSim::new(cfg).unwrap();
        let s = sim.run_trace(&pattern.generate());
        assert_eq!(s.misses(), 32); // compulsory only
        assert_eq!(s.compulsory, 32);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12); // 32 of 320
    }

    #[test]
    fn three_c_identity_holds() {
        let cfg = small(2);
        let pattern = TracePattern::RandomChase {
            bytes: 32 << 10,
            stride: 64,
            count: 5000,
        };
        let mut sim = CacheSim::new(cfg).unwrap();
        let s = sim.run_trace(&pattern.generate());
        assert_eq!(s.accesses, 5000);
        assert_eq!(s.hits + s.misses(), s.accesses);
        assert!(s.capacity > 0);
    }

    #[test]
    fn writebacks_only_for_dirty_lines() {
        let cfg = CacheConfig {
            capacity_bytes: 128,
            line_bytes: 64,
            associativity: 1,
        }; // 2 sets, 1 way
        let mut sim = CacheSim::new(cfg).unwrap();
        // Dirty line 0, then evict it with a same-set line.
        sim.access(Access::write(0));
        sim.access(Access::read(128)); // set 0 again
        assert_eq!(sim.stats().writebacks, 1);
        // Clean eviction generates none.
        sim.access(Access::read(0));
        assert_eq!(sim.stats().writebacks, 1);
    }

    #[test]
    fn offchip_traffic_accounting() {
        let s = CacheStats {
            accesses: 100,
            hits: 80,
            compulsory: 10,
            capacity: 5,
            conflict: 5,
            writebacks: 3,
        };
        assert_eq!(s.misses(), 20);
        assert_eq!(s.offchip_bytes(64), 23 * 64);
        assert!((s.miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn measured_miss_ratio_feeds_the_gables_extension() {
        use gables_model::ext::sram::MemorySideSram;
        use gables_model::two_ip::TwoIpModel;

        // The GPU's frame traffic as a tiled pattern with reuse fits a
        // 2 MiB memory-side SRAM well; measure mi and plug it in.
        let sram_geometry = CacheConfig {
            capacity_bytes: 2 << 20,
            line_bytes: 64,
            associativity: 16,
        };
        let gpu_pattern = TracePattern::Tiled {
            bytes: 8 << 20,
            tile_bytes: 256 << 10,
            stride: 64,
            reuse: 7,
        };
        let m1 = measure_miss_ratio(sram_geometry, &gpu_pattern).unwrap();
        assert!(m1.value() < 0.2, "tiled reuse should mostly hit: {m1}");

        let model = TwoIpModel::figure_6b();
        let soc = model.soc().unwrap();
        let w = model.workload().unwrap();
        let base = gables_model::evaluate(&soc, &w).unwrap().attainable();
        let ext = MemorySideSram::new(vec![MissRatio::CERTAIN, m1]);
        let with_sram = ext.evaluate(&soc, &w).unwrap().attainable();
        assert!(with_sram.value() > base.value());
    }

    #[test]
    fn empty_trace() {
        let mut sim = CacheSim::new(small(4)).unwrap();
        let s = sim.run_trace(&[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.miss_ratio(), 0.0);
    }

    #[test]
    fn effective_intensity_rises_with_reuse() {
        // Same code (2 ops per 4-byte access) behind the same cache: the
        // tiled version has far higher effective DRAM intensity than the
        // streaming version — the conjecture-4 story.
        let cfg = CacheConfig {
            capacity_bytes: 64 << 10,
            line_bytes: 64,
            associativity: 8,
        };
        let stream = TracePattern::Stream {
            bytes: 1 << 20,
            stride: 4,
            passes: 2,
            write_back: false,
        };
        let tiled = TracePattern::Tiled {
            bytes: 1 << 20,
            tile_bytes: 16 << 10,
            stride: 4,
            reuse: 7,
        };
        let mut a = CacheSim::new(cfg).unwrap();
        let sa = a.run_trace(&stream.generate());
        let mut b = CacheSim::new(cfg).unwrap();
        let sb = b.run_trace(&tiled.generate());
        let ia = effective_dram_intensity(&sa, 64, 2.0).unwrap();
        let ib = effective_dram_intensity(&sb, 64, 2.0).unwrap();
        assert!(ib > 4.0 * ia, "tiled {ib} vs stream {ia}");
    }

    #[test]
    fn effective_intensity_unbounded_when_fully_cached() {
        let cfg = CacheConfig {
            capacity_bytes: 64 << 10,
            line_bytes: 64,
            associativity: 8,
        };
        // After-the-fact stats with zero misses.
        let mut sim = CacheSim::new(cfg).unwrap();
        sim.access(Access::read(0));
        sim.access(Access::read(0));
        let stats = *sim.stats();
        // One compulsory miss: finite intensity.
        assert!(effective_dram_intensity(&stats, 64, 1.0).is_some());
        let no_traffic = CacheStats {
            accesses: 10,
            hits: 10,
            ..CacheStats::default()
        };
        assert_eq!(effective_dram_intensity(&no_traffic, 64, 1.0), None);
    }
}
