//! Trace-driven cache simulation with 3C miss classification.
//!
//! Section VI cites the 3C model (Hill & Smith) — compulsory, capacity,
//! and conflict misses — among the models computer architecture is built
//! on. This module implements it operationally: a set-associative LRU
//! cache simulated alongside a same-capacity fully-associative LRU
//! shadow, classifying each miss as
//!
//! * **compulsory** — first-ever reference to the line;
//! * **capacity** — the fully-associative shadow misses too;
//! * **conflict** — only the set-associative cache misses.
//!
//! Its practical role in this reproduction: measuring the Gables SRAM
//! extension's per-IP miss ratios `mi` from a usecase's reference pattern
//! ([`measure_miss_ratio`]) instead of assuming them.
//!
//! The second half of the module is a *hierarchy* simulator for the
//! cache-aware roofline (CARM) extension: multi-level configs with
//! per-level line size/associativity/latency ([`HierarchyConfig`]),
//! LRU/MRU/way-prediction replacement ([`ReplacementPolicy`]), an
//! optional per-level victim cache, and working-set/block-size sweep
//! drivers ([`measure_bandwidth_ladder`], [`sweep_block_sizes`]) that
//! measure the effective bandwidth of every level from simulated time —
//! never wall-clock time, so results are bit-identical across machines
//! and `--threads` policies.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};

use gables_model::par::{self, Parallelism};
use gables_model::rng::SplitMix64;
use gables_model::units::MissRatio;

use crate::error::SimError;
use crate::trace::{Access, TracePattern};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Ways per set; use [`CacheConfig::fully_associative`] for one set.
    pub associativity: u32,
}

impl CacheConfig {
    /// A fully-associative configuration of the given capacity.
    pub fn fully_associative(capacity_bytes: u64, line_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            line_bytes,
            associativity: (capacity_bytes / line_bytes.max(1)).max(1) as u32,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.capacity_bytes / (self.line_bytes * u64::from(self.associativity))).max(1)
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(SimError::Config {
                what: format!("cache line size {} must be a power of two", self.line_bytes),
            });
        }
        if self.associativity == 0 {
            return Err(SimError::Config {
                what: "cache associativity must be >= 1".into(),
            });
        }
        let way_bytes = self.line_bytes * u64::from(self.associativity);
        if self.capacity_bytes < way_bytes {
            return Err(SimError::Config {
                what: format!(
                    "cache capacity {} smaller than one set ({} bytes)",
                    self.capacity_bytes, way_bytes
                ),
            });
        }
        if !self.sets().is_power_of_two() {
            return Err(SimError::Config {
                what: format!("cache set count {} must be a power of two", self.sets()),
            });
        }
        Ok(())
    }
}

/// The 3C classification of a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the line.
    Compulsory,
    /// Would miss even fully-associatively at this capacity.
    Capacity,
    /// Misses only because of limited associativity.
    Conflict,
}

/// The outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present.
    Hit,
    /// Line absent; classified per the 3C model.
    Miss(MissClass),
}

/// Aggregate statistics for a simulated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total references.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Compulsory misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Miss ratio (0 for an empty trace).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Off-chip traffic implied by the trace: fills plus writebacks, in
    /// bytes (given the line size).
    pub fn offchip_bytes(&self, line_bytes: u64) -> u64 {
        (self.misses() + self.writebacks) * line_bytes
    }
}

/// A set-associative LRU cache with a fully-associative shadow for 3C
/// classification.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: line -> (last-use time, dirty).
    sets: Vec<HashMap<u64, (u64, bool)>>,
    /// Fully-associative shadow: line -> last-use time.
    shadow: HashMap<u64, u64>,
    /// Shadow eviction order: time -> line.
    shadow_lru: BTreeMap<u64, u64>,
    shadow_capacity_lines: u64,
    /// Every line ever referenced (for compulsory classification).
    seen: HashSet<u64>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for invalid geometry (non-power-of-two
    /// line size or set count, zero associativity, capacity below one
    /// set).
    pub fn new(config: CacheConfig) -> Result<Self, SimError> {
        config.validate()?;
        let sets = config.sets();
        Ok(Self {
            config,
            sets: (0..sets).map(|_| HashMap::new()).collect(),
            shadow: HashMap::new(),
            shadow_lru: BTreeMap::new(),
            shadow_capacity_lines: (config.capacity_bytes / config.line_bytes).max(1),
            seen: HashSet::new(),
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Simulates one access, also reporting any dirty victim line evicted
    /// to make room (its *line address*, for propagation to the next
    /// hierarchy level).
    pub fn access_detailed(&mut self, access: Access) -> (AccessOutcome, Option<u64>) {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = access.addr / self.config.line_bytes;
        let set_index = (line % self.sets.len() as u64) as usize;

        // Shadow (fully-associative) result first — it must be updated on
        // every access regardless of the real cache's outcome.
        let shadow_hit = self.touch_shadow(line);
        let first_touch = self.seen.insert(line);

        let way_count = self.config.associativity as usize;
        let line_bytes = self.config.line_bytes;
        let set = &mut self.sets[set_index];
        match set.entry(line) {
            Entry::Occupied(mut e) => {
                let v = e.get_mut();
                v.0 = self.clock;
                v.1 |= access.write;
                self.stats.hits += 1;
                (AccessOutcome::Hit, None)
            }
            Entry::Vacant(_) => {
                // Miss: classify, then fill with LRU eviction.
                let class = if first_touch {
                    self.stats.compulsory += 1;
                    MissClass::Compulsory
                } else if !shadow_hit {
                    self.stats.capacity += 1;
                    MissClass::Capacity
                } else {
                    self.stats.conflict += 1;
                    MissClass::Conflict
                };
                let mut writeback = None;
                if set.len() >= way_count {
                    let (&victim, &(_, dirty)) = set
                        .iter()
                        .min_by_key(|(_, (t, _))| *t)
                        .expect("nonempty set");
                    set.remove(&victim);
                    if dirty {
                        self.stats.writebacks += 1;
                        writeback = Some(victim * line_bytes);
                    }
                }
                set.insert(line, (self.clock, access.write));
                (AccessOutcome::Miss(class), writeback)
            }
        }
    }

    /// Simulates one access (see [`access_detailed`](Self::access_detailed)
    /// for the writeback-reporting variant).
    pub fn access(&mut self, access: Access) -> AccessOutcome {
        self.access_detailed(access).0
    }

    /// Runs an entire trace and returns the final statistics.
    pub fn run_trace(&mut self, trace: &[Access]) -> CacheStats {
        for &a in trace {
            self.access(a);
        }
        self.stats
    }

    /// Touches the fully-associative shadow; returns whether it hit.
    fn touch_shadow(&mut self, line: u64) -> bool {
        let hit = if let Some(&old) = self.shadow.get(&line) {
            self.shadow_lru.remove(&old);
            true
        } else {
            if self.shadow.len() as u64 >= self.shadow_capacity_lines {
                if let Some((&t, &victim)) = self.shadow_lru.iter().next() {
                    self.shadow_lru.remove(&t);
                    self.shadow.remove(&victim);
                }
            }
            false
        };
        self.shadow.insert(line, self.clock);
        self.shadow_lru.insert(self.clock, line);
        hit
    }
}

/// Derives the *effective DRAM operational intensity* `Ii` of a workload
/// behind a cache: `total ops / off-chip bytes`. This is the paper's
/// fourth conjecture made computable — operational intensity depends on
/// hardware (cache size) and software (reuse) together, and the same code
/// has a different `Ii` behind a different cache.
///
/// `ops_per_access` is the compute performed per memory reference in the
/// trace. Returns `None` when the trace generates no off-chip traffic at
/// all (intensity is unbounded — the flat-roof regime).
pub fn effective_dram_intensity(
    stats: &CacheStats,
    line_bytes: u64,
    ops_per_access: f64,
) -> Option<f64> {
    let offchip = stats.offchip_bytes(line_bytes);
    if offchip == 0 {
        return None;
    }
    Some(stats.accesses as f64 * ops_per_access / offchip as f64)
}

/// Measures the Gables SRAM-extension miss ratio `mi` for one IP: the
/// fraction of its references that reach DRAM when a memory-side SRAM of
/// the given geometry sits in front of it (Section V-A).
///
/// # Errors
///
/// Returns [`SimError::Config`] for an invalid cache geometry.
pub fn measure_miss_ratio(
    config: CacheConfig,
    pattern: &TracePattern,
) -> Result<MissRatio, SimError> {
    let mut sim = CacheSim::new(config)?;
    let stats = sim.run_trace(&pattern.generate());
    MissRatio::new(stats.miss_ratio()).map_err(|e| SimError::Config {
        what: format!("measured miss ratio invalid: {e}"),
    })
}

// ---------------------------------------------------------------------------
// Cache hierarchy simulation (CARM substrate)
// ---------------------------------------------------------------------------

/// Replacement policy for one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the stack algorithm).
    Lru,
    /// Evict the most-recently-used way — thrash-resistant for cyclic
    /// working sets one way larger than the set.
    Mru,
    /// LRU replacement plus an MRU way predictor: a hit in the predicted
    /// way costs one probe, any other hit costs a second probe.
    WayPrediction,
}

impl ReplacementPolicy {
    /// Parses the spec-file spelling (`lru`, `mru`, `way_prediction`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(Self::Lru),
            "mru" => Some(Self::Mru),
            "way_prediction" => Some(Self::WayPrediction),
            _ => None,
        }
    }

    /// The spec-file spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Lru => "lru",
            Self::Mru => "mru",
            Self::WayPrediction => "way_prediction",
        }
    }
}

/// One level of a cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelConfig {
    /// Level name as it appears in ladders and reports (`l1`, `slc`, ...).
    pub name: String,
    /// Geometry (capacity, line size, associativity).
    pub geometry: CacheConfig,
    /// Time for one tag+data probe of this level, in nanoseconds.
    pub latency_ns: f64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
    /// Entries in the level's fully-associative victim cache (0 disables
    /// it). Evicted lines park here and hit back without a refill from
    /// the next level.
    pub victim_lines: u32,
}

/// A multi-level cache hierarchy backed by DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Levels ordered nearest-first (L1 at index 0).
    pub levels: Vec<LevelConfig>,
    /// Time for one DRAM line transfer, in nanoseconds.
    pub dram_latency_ns: f64,
}

impl HierarchyConfig {
    /// Validates the whole hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an empty hierarchy, an invalid
    /// per-level geometry, a non-finite/non-positive latency, or a level
    /// ordering violation (capacities must strictly increase outward).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.levels.is_empty() {
            return Err(SimError::Config {
                what: "cache hierarchy must have at least one level".into(),
            });
        }
        let mut prev: Option<(&str, u64)> = None;
        for level in &self.levels {
            level.geometry.validate().map_err(|e| match e {
                SimError::Config { what } => SimError::Config {
                    what: format!("level {}: {what}", level.name),
                },
                other => other,
            })?;
            if !level.latency_ns.is_finite() || level.latency_ns <= 0.0 {
                return Err(SimError::Config {
                    what: format!(
                        "level {}: latency {} ns must be finite and positive",
                        level.name, level.latency_ns
                    ),
                });
            }
            if let Some((prev_name, prev_cap)) = prev {
                if level.geometry.capacity_bytes <= prev_cap {
                    return Err(SimError::Config {
                        what: format!(
                            "level ordering violation: {} ({} bytes) must be larger \
                             than {} ({} bytes)",
                            level.name, level.geometry.capacity_bytes, prev_name, prev_cap
                        ),
                    });
                }
            }
            prev = Some((&level.name, level.geometry.capacity_bytes));
        }
        if !self.dram_latency_ns.is_finite() || self.dram_latency_ns <= 0.0 {
            return Err(SimError::Config {
                what: format!(
                    "dram latency {} ns must be finite and positive",
                    self.dram_latency_ns
                ),
            });
        }
        Ok(())
    }
}

/// Per-level counters from a hierarchy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Probes that reached this level.
    pub accesses: u64,
    /// Hits in the main array (including mispredicted-way hits).
    pub hits: u64,
    /// Hits found in the predicted way (way-prediction policy only; other
    /// policies count every hit here — a single probe always suffices).
    pub predicted_hits: u64,
    /// Hits recovered from the victim cache.
    pub victim_hits: u64,
    /// Dirty lines pushed to the next level on eviction.
    pub writebacks: u64,
}

impl LevelStats {
    /// Probes that missed both the main array and the victim cache.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits - self.victim_hits
    }

    /// Fraction of probes served by this level (0 for no probes).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.hits + self.victim_hits) as f64 / self.accesses as f64
        }
    }
}

/// Aggregate counters for a hierarchy run, including the simulated time
/// the run would take — the quantity every effective bandwidth in the
/// CARM ladder is derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyStats {
    /// Per-level counters, nearest level first.
    pub levels: Vec<LevelStats>,
    /// Demand fills that reached DRAM.
    pub dram_accesses: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Requests issued to the hierarchy.
    pub accesses: u64,
    /// Simulated time: the sum of every probe/transfer latency on the
    /// demand path (writebacks are posted and cost no time).
    pub time_ns: f64,
}

impl HierarchyStats {
    /// Bytes served by each rung of the ladder: per cache level
    /// `(hits + victim hits) * line_bytes`, and as a final entry the
    /// DRAM fill traffic. This is the hit/miss profile the CARM model
    /// turns into per-level effective intensities.
    pub fn bytes_per_level(&self, config: &HierarchyConfig) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .levels
            .iter()
            .zip(&config.levels)
            .map(|(s, l)| ((s.hits + s.victim_hits) * l.geometry.line_bytes) as f64)
            .collect();
        let dram_line = config.levels.last().map_or(64, |l| l.geometry.line_bytes);
        out.push((self.dram_accesses * dram_line) as f64);
        out
    }
}

/// A single way slot. `last` is a per-level logical clock, unique per
/// touch, so replacement decisions never depend on iteration order.
#[derive(Debug, Clone, Copy)]
struct Way {
    line: u64,
    dirty: bool,
    last: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeResult {
    /// Hit in the main array; `predicted` is true when the way predictor
    /// pointed at the right way (always true for non-predicting policies).
    Hit {
        predicted: bool,
    },
    /// Hit recovered from the victim cache.
    VictimHit,
    Miss,
}

/// One policy-aware level: fixed way slots per set (stable indices for
/// the way predictor) plus an optional fully-associative victim queue.
#[derive(Debug, Clone)]
struct PolicyLevel {
    line_bytes: u64,
    set_count: u64,
    policy: ReplacementPolicy,
    /// `sets[s][w]` is way slot `w` of set `s`.
    sets: Vec<Vec<Option<Way>>>,
    /// Predicted way slot per set (way-prediction policy).
    predicted: Vec<usize>,
    /// Victim queue, oldest first: (line, dirty).
    victim: Vec<(u64, bool)>,
    victim_cap: usize,
    clock: u64,
}

impl PolicyLevel {
    fn new(config: &LevelConfig) -> Self {
        let set_count = config.geometry.sets();
        let assoc = config.geometry.associativity as usize;
        Self {
            line_bytes: config.geometry.line_bytes,
            set_count,
            policy: config.policy,
            sets: (0..set_count).map(|_| vec![None; assoc]).collect(),
            predicted: vec![0; set_count as usize],
            victim: Vec::new(),
            victim_cap: config.victim_lines as usize,
            clock: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Looks the address up without filling on a miss. A victim hit
    /// swaps the line back into the main array (possibly spilling a
    /// dirty line, returned as a writeback byte address).
    fn probe(&mut self, addr: u64, write: bool) -> (ProbeResult, Option<u64>) {
        self.clock += 1;
        let line = self.line_of(addr);
        let set_index = (line % self.set_count) as usize;
        let clock = self.clock;
        let set = &mut self.sets[set_index];
        for (slot, way) in set.iter_mut().enumerate() {
            if let Some(w) = way {
                if w.line == line {
                    w.last = clock;
                    w.dirty |= write;
                    let predicted = self.policy != ReplacementPolicy::WayPrediction
                        || self.predicted[set_index] == slot;
                    self.predicted[set_index] = slot;
                    return (ProbeResult::Hit { predicted }, None);
                }
            }
        }
        if let Some(pos) = self.victim.iter().position(|&(l, _)| l == line) {
            let (_, mut dirty) = self.victim.remove(pos);
            dirty |= write;
            let wb = self.fill(addr, dirty);
            return (ProbeResult::VictimHit, wb);
        }
        (ProbeResult::Miss, None)
    }

    /// Installs the line, evicting per policy. The evicted line parks in
    /// the victim cache when one is configured; a dirty line spilled out
    /// of the level entirely is returned as a writeback byte address.
    fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.clock += 1;
        let line = self.line_of(addr);
        let set_index = (line % self.set_count) as usize;
        let clock = self.clock;
        let line_bytes = self.line_bytes;
        let set = &mut self.sets[set_index];
        // Refill after a victim swap may find the line already present.
        for way in set.iter_mut().flatten() {
            if way.line == line {
                way.last = clock;
                way.dirty |= dirty;
                return None;
            }
        }
        let slot = if let Some(empty) = set.iter().position(Option::is_none) {
            empty
        } else {
            match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::WayPrediction => set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.map_or(0, |w| w.last))
                    .map(|(i, _)| i)
                    .expect("nonempty set"),
                ReplacementPolicy::Mru => set
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, w)| w.map_or(0, |w| w.last))
                    .map(|(i, _)| i)
                    .expect("nonempty set"),
            }
        };
        let evicted = set[slot].replace(Way {
            line,
            dirty,
            last: clock,
        });
        self.predicted[set_index] = slot;
        let mut writeback = None;
        if let Some(victim_way) = evicted {
            if self.victim_cap > 0 {
                self.victim.push((victim_way.line, victim_way.dirty));
                if self.victim.len() > self.victim_cap {
                    let (spilled, spilled_dirty) = self.victim.remove(0);
                    if spilled_dirty {
                        writeback = Some(spilled * line_bytes);
                    }
                }
            } else if victim_way.dirty {
                writeback = Some(victim_way.line * line_bytes);
            }
        }
        writeback
    }
}

/// An execution-driven multi-level cache hierarchy simulator.
///
/// Every access probes levels nearest-first; the serving level fills all
/// nearer levels, and dirty evictions propagate outward as writebacks.
/// Time accounting is purely simulated (per-level probe latencies plus
/// the DRAM transfer latency), which makes measured effective bandwidths
/// deterministic.
#[derive(Debug, Clone)]
pub struct HierarchySim {
    config: HierarchyConfig,
    levels: Vec<PolicyLevel>,
    stats: HierarchyStats,
}

impl HierarchySim {
    /// Creates a hierarchy simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when [`HierarchyConfig::validate`]
    /// rejects the configuration.
    pub fn new(config: HierarchyConfig) -> Result<Self, SimError> {
        config.validate()?;
        let levels = config.levels.iter().map(PolicyLevel::new).collect();
        let stats = HierarchyStats {
            levels: vec![LevelStats::default(); config.levels.len()],
            dram_accesses: 0,
            dram_writebacks: 0,
            accesses: 0,
            time_ns: 0.0,
        };
        Ok(Self {
            config,
            levels,
            stats,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zeroes the counters (cache contents stay warm) — used by the
    /// sweep drivers to measure steady state after a warm-up pass.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats.levels {
            *s = LevelStats::default();
        }
        self.stats.dram_accesses = 0;
        self.stats.dram_writebacks = 0;
        self.stats.accesses = 0;
        self.stats.time_ns = 0.0;
    }

    /// Simulates one access and returns the index of the serving level
    /// (`levels.len()` means DRAM).
    pub fn access(&mut self, access: Access) -> usize {
        self.stats.accesses += 1;
        let mut served = self.levels.len();
        for k in 0..self.levels.len() {
            self.stats.levels[k].accesses += 1;
            self.stats.time_ns += self.config.levels[k].latency_ns;
            let (result, wb) = self.levels[k].probe(access.addr, access.write);
            if let Some(addr) = wb {
                self.writeback(k + 1, addr);
            }
            match result {
                ProbeResult::Hit { predicted } => {
                    self.stats.levels[k].hits += 1;
                    if predicted {
                        self.stats.levels[k].predicted_hits += 1;
                    } else {
                        // Mispredicted way: a second probe of the array.
                        self.stats.time_ns += self.config.levels[k].latency_ns;
                    }
                    served = k;
                    break;
                }
                ProbeResult::VictimHit => {
                    self.stats.levels[k].victim_hits += 1;
                    // The swap re-reads the array.
                    self.stats.time_ns += self.config.levels[k].latency_ns;
                    served = k;
                    break;
                }
                ProbeResult::Miss => {}
            }
        }
        if served == self.levels.len() {
            self.stats.dram_accesses += 1;
            self.stats.time_ns += self.config.dram_latency_ns;
        }
        // Fill every level nearer than the serving one.
        for k in (0..served.min(self.levels.len())).rev() {
            let wb = self.levels[k].fill(access.addr, access.write);
            if let Some(addr) = wb {
                self.stats.levels[k].writebacks += 1;
                self.writeback(k + 1, addr);
            }
        }
        served
    }

    /// Runs a whole trace.
    pub fn run_trace(&mut self, trace: &[Access]) {
        for &a in trace {
            self.access(a);
        }
    }

    /// Delivers a (posted, zero-latency) writeback to level `k`,
    /// propagating any spill further outward; past the last level it
    /// counts as a DRAM writeback.
    fn writeback(&mut self, k: usize, addr: u64) {
        let mut k = k;
        let mut addr = addr;
        loop {
            if k >= self.levels.len() {
                self.stats.dram_writebacks += 1;
                return;
            }
            match self.levels[k].fill(addr, true) {
                Some(spilled) => {
                    self.stats.levels[k].writebacks += 1;
                    addr = spilled;
                    k += 1;
                }
                None => return,
            }
        }
    }
}

/// Effective bandwidth measured for one rung of the CARM ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelBandwidth {
    /// Rung name (a level name, or `dram` for the final rung).
    pub level: String,
    /// Working-set size the rung was measured at.
    pub working_set_bytes: u64,
    /// Measured effective bandwidth in GB/s (bytes per simulated ns).
    pub gbps: f64,
    /// Fraction of probes the rung itself served during measurement.
    pub hit_ratio: f64,
}

/// Picks the working set that isolates rung `k`: comfortably inside the
/// first level, between consecutive capacities for middle rungs, and 4x
/// the last level for the DRAM rung.
fn working_set_for(config: &HierarchyConfig, k: usize) -> u64 {
    let line = config.levels[0].geometry.line_bytes;
    let ws = if k == 0 {
        config.levels[0].geometry.capacity_bytes / 2
    } else if k < config.levels.len() {
        let below = config.levels[k - 1].geometry.capacity_bytes;
        let here = config.levels[k].geometry.capacity_bytes;
        below + (here - below) / 2
    } else {
        config
            .levels
            .last()
            .expect("validated")
            .geometry
            .capacity_bytes
            * 4
    };
    ws.max(line * 2)
}

/// Working-set sweep driver: measures the effective bandwidth of every
/// rung of the hierarchy (each cache level, then DRAM) by replaying a
/// SplitMix64 uniform-random address stream over a rung-sized working
/// set — one sequential warm-up pass, then `accesses_per_level` timed
/// probes. Rungs run through [`par::try_map`], so results are
/// bit-identical across `--threads` policies.
///
/// The ladder is returned nearest rung first and its bandwidths are
/// strictly decreasing by construction: deeper rungs pay every nearer
/// level's probe latency on top of their own.
///
/// # Errors
///
/// Returns [`SimError::Config`] for an invalid hierarchy or when
/// `accesses_per_level` is zero.
pub fn measure_bandwidth_ladder(
    config: &HierarchyConfig,
    accesses_per_level: u64,
    seed: u64,
    parallelism: Parallelism,
) -> Result<Vec<LevelBandwidth>, SimError> {
    config.validate()?;
    if accesses_per_level == 0 {
        return Err(SimError::Config {
            what: "bandwidth sweep needs at least one access per level".into(),
        });
    }
    let rungs = config.levels.len() + 1;
    par::try_map(parallelism, rungs, |k| {
        let ws = working_set_for(config, k);
        let line = config.levels[0].geometry.line_bytes;
        let lines = (ws / line).max(1);
        let mut sim = HierarchySim::new(config.clone())?;
        for i in 0..lines {
            sim.access(Access::read(i * line));
        }
        sim.reset_stats();
        let mut rng = SplitMix64::new(seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..accesses_per_level {
            let pick = rng.range_u64(0, lines - 1);
            sim.access(Access::read(pick * line));
        }
        let stats = sim.stats();
        let bytes = accesses_per_level as f64 * line as f64;
        let hit_ratio = if k < config.levels.len() {
            stats.levels[k].hit_ratio()
        } else {
            stats.dram_accesses as f64 / stats.accesses as f64
        };
        Ok(LevelBandwidth {
            level: if k < config.levels.len() {
                config.levels[k].name.clone()
            } else {
                "dram".to_string()
            },
            working_set_bytes: ws,
            gbps: bytes / stats.time_ns,
            hit_ratio,
        })
    })
}

/// One point of a block-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSweepPoint {
    /// Transfer block size in bytes.
    pub block_bytes: u64,
    /// Measured effective bandwidth in GB/s.
    pub gbps: f64,
}

/// Block-size sweep driver: random block chase over a DRAM-sized region
/// (4x the last level), reading each picked block sequentially at the
/// first level's line granularity. Larger blocks amortize deep-level
/// transfers across spatially-adjacent near-level lines, so effective
/// bandwidth rises with block size. Deterministic for the same reasons
/// as [`measure_bandwidth_ladder`].
///
/// # Errors
///
/// Returns [`SimError::Config`] for an invalid hierarchy, an empty block
/// list, or a block smaller than the first level's line size.
pub fn sweep_block_sizes(
    config: &HierarchyConfig,
    block_sizes: &[u64],
    accesses_per_block_size: u64,
    seed: u64,
    parallelism: Parallelism,
) -> Result<Vec<BlockSweepPoint>, SimError> {
    config.validate()?;
    if block_sizes.is_empty() {
        return Err(SimError::Config {
            what: "block-size sweep needs at least one block size".into(),
        });
    }
    let line = config.levels[0].geometry.line_bytes;
    if let Some(&bad) = block_sizes
        .iter()
        .find(|&&b| b < line || !b.is_power_of_two())
    {
        return Err(SimError::Config {
            what: format!(
                "block size {bad} must be a power of two and at least one \
                 first-level line ({line} bytes)"
            ),
        });
    }
    let region = config
        .levels
        .last()
        .expect("validated")
        .geometry
        .capacity_bytes
        * 4;
    par::try_map(parallelism, block_sizes.len(), |i| {
        let block = block_sizes[i];
        let lines_per_block = block / line;
        let blocks = (region / block).max(1);
        let mut sim = HierarchySim::new(config.clone())?;
        let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut done = 0u64;
        while done < accesses_per_block_size {
            let base = rng.range_u64(0, blocks - 1) * block;
            for j in 0..lines_per_block {
                sim.access(Access::read(base + j * line));
                done += 1;
                if done >= accesses_per_block_size {
                    break;
                }
            }
        }
        let stats = sim.stats();
        Ok(BlockSweepPoint {
            block_bytes: block,
            gbps: stats.accesses as f64 * line as f64 / stats.time_ns,
        })
    })
}

#[cfg(test)]
mod invariant_tests {
    use gables_model::rng::SplitMix64;

    use super::*;
    use crate::trace::TracePattern;

    fn random_pattern(rng: &mut SplitMix64) -> TracePattern {
        match rng.range_u64(0, 2) {
            0 => TracePattern::Stream {
                bytes: rng.range_u64(1, 63) << 10,
                stride: 4,
                passes: rng.range_u64(1, 3) as u32,
                write_back: rng.chance(0.5),
            },
            1 => {
                let bytes = rng.range_u64(4, 63) << 10;
                let tiles = rng.range_u64(1, 7);
                TracePattern::Tiled {
                    bytes,
                    tile_bytes: bytes / tiles,
                    stride: 16,
                    reuse: rng.range_u64(0, 3) as u32,
                }
            }
            _ => TracePattern::RandomChase {
                bytes: rng.range_u64(1, 63) << 10,
                stride: 64,
                count: rng.range_u64(1, 1999),
            },
        }
    }

    /// The 3C identity holds and compulsory misses equal the number
    /// of distinct lines touched.
    #[test]
    fn three_c_identity() {
        let mut rng = SplitMix64::new(0x3C3C);
        for _ in 0..48 {
            let pattern = random_pattern(&mut rng);
            let cfg = CacheConfig {
                capacity_bytes: 8 << 10,
                line_bytes: 64,
                associativity: 1 << rng.range_u64(0, 3),
            };
            let trace = pattern.generate();
            let mut sim = CacheSim::new(cfg).unwrap();
            let s = sim.run_trace(&trace);
            assert_eq!(s.accesses as usize, trace.len(), "{pattern:?}");
            assert_eq!(s.hits + s.misses(), s.accesses, "{pattern:?}");
            let unique: std::collections::HashSet<u64> =
                trace.iter().map(|a| a.addr / 64).collect();
            assert_eq!(s.compulsory as usize, unique.len(), "{pattern:?}");
        }
    }

    /// A fully-associative cache never records conflict misses, and
    /// doubling a fully-associative LRU capacity never adds misses
    /// (LRU is a stack algorithm).
    #[test]
    fn fully_associative_inclusion() {
        let mut rng = SplitMix64::new(0xFA11);
        for _ in 0..48 {
            let pattern = random_pattern(&mut rng);
            let trace = pattern.generate();
            let small = CacheConfig::fully_associative(8 << 10, 64);
            let big = CacheConfig::fully_associative(16 << 10, 64);
            let mut a = CacheSim::new(small).unwrap();
            let sa = a.run_trace(&trace);
            let mut b = CacheSim::new(big).unwrap();
            let sb = b.run_trace(&trace);
            assert_eq!(sa.conflict, 0, "{pattern:?}");
            assert_eq!(sb.conflict, 0, "{pattern:?}");
            assert!(sb.misses() <= sa.misses(), "{pattern:?}");
        }
    }

    /// Writebacks never exceed the number of write accesses (clean
    /// evictions are free) and never occur for read-only traces.
    #[test]
    fn writeback_sanity() {
        let mut rng = SplitMix64::new(0x3B5A);
        for _ in 0..48 {
            let pattern = random_pattern(&mut rng);
            let trace = pattern.generate();
            let cfg = CacheConfig {
                capacity_bytes: 4 << 10,
                line_bytes: 64,
                associativity: 2,
            };
            let mut sim = CacheSim::new(cfg).unwrap();
            let s = sim.run_trace(&trace);
            // Each writeback requires at least one write since the line
            // was last filled, so writebacks can never exceed writes.
            let writes = trace.iter().filter(|a| a.write).count() as u64;
            assert!(s.writebacks <= writes, "{pattern:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(assoc: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: 4096,
            line_bytes: 64,
            associativity: assoc,
        }
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheSim::new(small(1)).is_ok());
        assert!(CacheSim::new(CacheConfig {
            line_bytes: 48,
            ..small(1)
        })
        .is_err());
        assert!(CacheSim::new(CacheConfig {
            associativity: 0,
            ..small(1)
        })
        .is_err());
        assert!(CacheSim::new(CacheConfig {
            capacity_bytes: 32,
            ..small(1)
        })
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheSim::new(CacheConfig {
            capacity_bytes: 3 * 64,
            line_bytes: 64,
            associativity: 1,
        })
        .is_err());
        assert_eq!(small(4).sets(), 16);
    }

    #[test]
    fn repeated_access_hits() {
        let mut sim = CacheSim::new(small(4)).unwrap();
        assert_eq!(
            sim.access(Access::read(0)),
            AccessOutcome::Miss(MissClass::Compulsory)
        );
        assert_eq!(sim.access(Access::read(0)), AccessOutcome::Hit);
        assert_eq!(sim.access(Access::read(32)), AccessOutcome::Hit); // same line
        assert_eq!(sim.stats().hits, 2);
        assert_eq!(sim.stats().compulsory, 1);
    }

    #[test]
    fn conflict_misses_in_direct_mapped_vanish_fully_associative() {
        // Two lines mapping to the same set of a direct-mapped cache,
        // alternated: all conflict misses after the compulsory pair.
        let cfg = small(1); // 64 sets
        let a = 0u64;
        let b = 64 * 64; // same set index, different tag
        let mut trace = Vec::new();
        for _ in 0..20 {
            trace.push(Access::read(a));
            trace.push(Access::read(b));
        }
        let mut dm = CacheSim::new(cfg).unwrap();
        let s = dm.run_trace(&trace);
        assert_eq!(s.compulsory, 2);
        assert_eq!(s.conflict, 38);
        assert_eq!(s.capacity, 0);

        let mut fa = CacheSim::new(CacheConfig::fully_associative(4096, 64)).unwrap();
        let s = fa.run_trace(&trace);
        assert_eq!(s.misses(), 2); // only compulsory
        assert_eq!(s.conflict, 0);
    }

    #[test]
    fn streaming_larger_than_cache_is_compulsory_then_capacity() {
        let cfg = small(8);
        let pattern = TracePattern::Stream {
            bytes: 64 * 1024, // 16x capacity
            stride: 64,
            passes: 2,
            write_back: false,
        };
        let mut sim = CacheSim::new(cfg).unwrap();
        let s = sim.run_trace(&pattern.generate());
        assert_eq!(s.hits, 0);
        assert_eq!(s.compulsory, 1024);
        assert_eq!(s.capacity, 1024); // second pass re-misses at capacity
        assert_eq!(s.conflict, 0); // streaming has no conflicts under LRU
        assert!((s.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_that_fits_hits_after_warmup() {
        let cfg = small(8);
        let pattern = TracePattern::Stream {
            bytes: 2048, // half the capacity
            stride: 64,
            passes: 10,
            write_back: false,
        };
        let mut sim = CacheSim::new(cfg).unwrap();
        let s = sim.run_trace(&pattern.generate());
        assert_eq!(s.misses(), 32); // compulsory only
        assert_eq!(s.compulsory, 32);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12); // 32 of 320
    }

    #[test]
    fn three_c_identity_holds() {
        let cfg = small(2);
        let pattern = TracePattern::RandomChase {
            bytes: 32 << 10,
            stride: 64,
            count: 5000,
        };
        let mut sim = CacheSim::new(cfg).unwrap();
        let s = sim.run_trace(&pattern.generate());
        assert_eq!(s.accesses, 5000);
        assert_eq!(s.hits + s.misses(), s.accesses);
        assert!(s.capacity > 0);
    }

    #[test]
    fn writebacks_only_for_dirty_lines() {
        let cfg = CacheConfig {
            capacity_bytes: 128,
            line_bytes: 64,
            associativity: 1,
        }; // 2 sets, 1 way
        let mut sim = CacheSim::new(cfg).unwrap();
        // Dirty line 0, then evict it with a same-set line.
        sim.access(Access::write(0));
        sim.access(Access::read(128)); // set 0 again
        assert_eq!(sim.stats().writebacks, 1);
        // Clean eviction generates none.
        sim.access(Access::read(0));
        assert_eq!(sim.stats().writebacks, 1);
    }

    #[test]
    fn offchip_traffic_accounting() {
        let s = CacheStats {
            accesses: 100,
            hits: 80,
            compulsory: 10,
            capacity: 5,
            conflict: 5,
            writebacks: 3,
        };
        assert_eq!(s.misses(), 20);
        assert_eq!(s.offchip_bytes(64), 23 * 64);
        assert!((s.miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn measured_miss_ratio_feeds_the_gables_extension() {
        use gables_model::ext::sram::MemorySideSram;
        use gables_model::two_ip::TwoIpModel;

        // The GPU's frame traffic as a tiled pattern with reuse fits a
        // 2 MiB memory-side SRAM well; measure mi and plug it in.
        let sram_geometry = CacheConfig {
            capacity_bytes: 2 << 20,
            line_bytes: 64,
            associativity: 16,
        };
        let gpu_pattern = TracePattern::Tiled {
            bytes: 8 << 20,
            tile_bytes: 256 << 10,
            stride: 64,
            reuse: 7,
        };
        let m1 = measure_miss_ratio(sram_geometry, &gpu_pattern).unwrap();
        assert!(m1.value() < 0.2, "tiled reuse should mostly hit: {m1}");

        let model = TwoIpModel::figure_6b();
        let soc = model.soc().unwrap();
        let w = model.workload().unwrap();
        let base = gables_model::evaluate(&soc, &w).unwrap().attainable();
        let ext = MemorySideSram::new(vec![MissRatio::CERTAIN, m1]);
        let with_sram = ext.evaluate(&soc, &w).unwrap().attainable();
        assert!(with_sram.value() > base.value());
    }

    #[test]
    fn empty_trace() {
        let mut sim = CacheSim::new(small(4)).unwrap();
        let s = sim.run_trace(&[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.miss_ratio(), 0.0);
    }

    #[test]
    fn effective_intensity_rises_with_reuse() {
        // Same code (2 ops per 4-byte access) behind the same cache: the
        // tiled version has far higher effective DRAM intensity than the
        // streaming version — the conjecture-4 story.
        let cfg = CacheConfig {
            capacity_bytes: 64 << 10,
            line_bytes: 64,
            associativity: 8,
        };
        let stream = TracePattern::Stream {
            bytes: 1 << 20,
            stride: 4,
            passes: 2,
            write_back: false,
        };
        let tiled = TracePattern::Tiled {
            bytes: 1 << 20,
            tile_bytes: 16 << 10,
            stride: 4,
            reuse: 7,
        };
        let mut a = CacheSim::new(cfg).unwrap();
        let sa = a.run_trace(&stream.generate());
        let mut b = CacheSim::new(cfg).unwrap();
        let sb = b.run_trace(&tiled.generate());
        let ia = effective_dram_intensity(&sa, 64, 2.0).unwrap();
        let ib = effective_dram_intensity(&sb, 64, 2.0).unwrap();
        assert!(ib > 4.0 * ia, "tiled {ib} vs stream {ia}");
    }

    #[test]
    fn effective_intensity_unbounded_when_fully_cached() {
        let cfg = CacheConfig {
            capacity_bytes: 64 << 10,
            line_bytes: 64,
            associativity: 8,
        };
        // After-the-fact stats with zero misses.
        let mut sim = CacheSim::new(cfg).unwrap();
        sim.access(Access::read(0));
        sim.access(Access::read(0));
        let stats = *sim.stats();
        // One compulsory miss: finite intensity.
        assert!(effective_dram_intensity(&stats, 64, 1.0).is_some());
        let no_traffic = CacheStats {
            accesses: 10,
            hits: 10,
            ..CacheStats::default()
        };
        assert_eq!(effective_dram_intensity(&no_traffic, 64, 1.0), None);
    }
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;

    fn level(name: &str, cap: u64, assoc: u32, lat: f64) -> LevelConfig {
        LevelConfig {
            name: name.to_string(),
            geometry: CacheConfig {
                capacity_bytes: cap,
                line_bytes: 64,
                associativity: assoc,
            },
            latency_ns: lat,
            policy: ReplacementPolicy::Lru,
            victim_lines: 0,
        }
    }

    fn three_level() -> HierarchyConfig {
        let mut l2 = level("l2", 32 << 10, 8, 4.0);
        l2.geometry.line_bytes = 128;
        let mut slc = level("slc", 256 << 10, 16, 12.0);
        slc.geometry.line_bytes = 256;
        HierarchyConfig {
            levels: vec![level("l1", 4 << 10, 4, 1.0), l2, slc],
            dram_latency_ns: 80.0,
        }
    }

    /// One set, `assoc` ways, a cyclic stream over `assoc + 1` lines:
    /// LRU thrashes to a 0% steady-state hit rate while MRU keeps
    /// `assoc - 1` lines resident.
    #[test]
    fn mru_survives_the_thrash_loop_that_kills_lru() {
        let run = |policy: ReplacementPolicy| {
            let cfg = HierarchyConfig {
                levels: vec![LevelConfig {
                    name: "l1".into(),
                    geometry: CacheConfig {
                        capacity_bytes: 4 * 64,
                        line_bytes: 64,
                        associativity: 4,
                    },
                    latency_ns: 1.0,
                    policy,
                    victim_lines: 0,
                }],
                dram_latency_ns: 50.0,
            };
            let mut sim = HierarchySim::new(cfg).unwrap();
            // Warm the loop once, then measure many cyclic passes.
            for addr in (0..5u64).map(|i| i * 64) {
                sim.access(Access::read(addr));
            }
            sim.reset_stats();
            for _ in 0..40 {
                for addr in (0..5u64).map(|i| i * 64) {
                    sim.access(Access::read(addr));
                }
            }
            sim.stats().levels[0].hit_ratio()
        };
        let lru = run(ReplacementPolicy::Lru);
        let mru = run(ReplacementPolicy::Mru);
        assert_eq!(lru, 0.0, "LRU thrashes a loop one line over capacity");
        assert!(mru > 0.5, "MRU keeps most of the loop resident: {mru}");
    }

    /// A stride stream inside capacity hits after warm-up under every
    /// policy; the reuse-distance ladder loses hits exactly when the
    /// distance exceeds associativity (one set, LRU).
    #[test]
    fn stride_and_reuse_distance_ladder() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Mru,
            ReplacementPolicy::WayPrediction,
        ] {
            let cfg = HierarchyConfig {
                levels: vec![LevelConfig {
                    policy,
                    ..level("l1", 8 << 10, 4, 1.0)
                }],
                dram_latency_ns: 50.0,
            };
            let mut sim = HierarchySim::new(cfg).unwrap();
            let lines = 32u64; // 2 KiB of 64 B lines, fits easily
            for i in 0..lines {
                sim.access(Access::read(i * 64));
            }
            sim.reset_stats();
            for _ in 0..4 {
                for i in 0..lines {
                    sim.access(Access::read(i * 64));
                }
            }
            assert_eq!(
                sim.stats().levels[0].hit_ratio(),
                1.0,
                "in-capacity stride must fully hit under {policy:?}"
            );
        }

        // Reuse-distance ladder on a single 4-way set: distance d means
        // d distinct interleaved lines between reuses. d <= 4 hits,
        // d > 4 misses every time under LRU.
        let one_set = HierarchyConfig {
            levels: vec![level("l1", 4 * 64, 4, 1.0)],
            dram_latency_ns: 50.0,
        };
        let mut ratios = Vec::new();
        for distance in [2u64, 4, 6] {
            let mut sim = HierarchySim::new(one_set.clone()).unwrap();
            for _ in 0..50 {
                for i in 0..distance {
                    sim.access(Access::read(i * 64));
                }
            }
            ratios.push(sim.stats().levels[0].hit_ratio());
        }
        assert!(ratios[0] > 0.9, "distance 2 of 4 ways: {}", ratios[0]);
        assert!(ratios[1] > 0.9, "distance 4 of 4 ways: {}", ratios[1]);
        assert!(ratios[2] < 0.1, "distance 6 of 4 ways: {}", ratios[2]);
    }

    /// Two lines conflicting in a direct-mapped level: hopeless without
    /// a victim cache, fully recovered with one.
    #[test]
    fn victim_cache_rescues_conflict_misses() {
        let run = |victim_lines: u32| {
            let cfg = HierarchyConfig {
                levels: vec![LevelConfig {
                    victim_lines,
                    ..level("l1", 64 * 64, 1, 1.0)
                }],
                dram_latency_ns: 50.0,
            };
            let mut sim = HierarchySim::new(cfg).unwrap();
            let a = 0u64;
            let b = 64 * 64; // same set, different tag
            sim.access(Access::read(a));
            sim.access(Access::read(b));
            sim.reset_stats();
            for _ in 0..30 {
                sim.access(Access::read(a));
                sim.access(Access::read(b));
            }
            let s = sim.stats().levels[0];
            (s.hit_ratio(), s.victim_hits)
        };
        let (bare_ratio, bare_victim) = run(0);
        let (rescued_ratio, rescued_victim) = run(4);
        assert_eq!(bare_ratio, 0.0);
        assert_eq!(bare_victim, 0);
        assert_eq!(rescued_ratio, 1.0, "victim cache absorbs the ping-pong");
        assert!(rescued_victim > 0);
    }

    /// Way prediction: a repeated single line always hits the predicted
    /// way; ping-ponging two lines in one set mispredicts every time.
    #[test]
    fn way_prediction_counts_mispredictions_and_costs_time() {
        let cfg = HierarchyConfig {
            levels: vec![LevelConfig {
                policy: ReplacementPolicy::WayPrediction,
                ..level("l1", 4 * 64, 4, 1.0)
            }],
            dram_latency_ns: 50.0,
        };
        let mut sim = HierarchySim::new(cfg.clone()).unwrap();
        for _ in 0..10 {
            sim.access(Access::read(0));
        }
        let s = sim.stats().levels[0];
        assert_eq!(s.hits, 9);
        assert_eq!(s.predicted_hits, 9, "stable line predicts perfectly");

        let mut pingpong = HierarchySim::new(cfg).unwrap();
        pingpong.access(Access::read(0));
        pingpong.access(Access::read(64));
        pingpong.reset_stats();
        let before = pingpong.stats().time_ns;
        for _ in 0..10 {
            pingpong.access(Access::read(0));
            pingpong.access(Access::read(64));
        }
        let s = pingpong.stats().levels[0];
        assert_eq!(s.hits, 20);
        assert_eq!(s.predicted_hits, 0, "alternating ways always mispredict");
        // Every mispredicted hit pays a second probe: 2 ns per access.
        assert!((pingpong.stats().time_ns - before - 40.0).abs() < 1e-9);
    }

    /// Dirty evictions propagate outward as writebacks and reach DRAM.
    #[test]
    fn writebacks_propagate_to_dram() {
        let cfg = HierarchyConfig {
            levels: vec![level("l1", 2 * 64, 1, 1.0), level("l2", 4 * 64, 1, 4.0)],
            dram_latency_ns: 50.0,
        };
        let mut sim = HierarchySim::new(cfg).unwrap();
        // Dirty a line, then stream enough same-set lines to push it
        // out of both levels.
        sim.access(Access::write(0));
        for i in 1..16u64 {
            sim.access(Access::read(i * 2 * 64)); // all map to set 0
        }
        assert!(sim.stats().levels[0].writebacks > 0);
        assert!(sim.stats().dram_writebacks > 0);
    }

    /// The measured ladder has one rung per level plus DRAM, strictly
    /// decreasing bandwidth, and each cache rung's working set is served
    /// mostly by its own level.
    #[test]
    fn bandwidth_ladder_is_strictly_decreasing() {
        let ladder =
            measure_bandwidth_ladder(&three_level(), 20_000, 7, Parallelism::Serial).unwrap();
        assert_eq!(ladder.len(), 4);
        assert_eq!(ladder[0].level, "l1");
        assert_eq!(ladder[3].level, "dram");
        for pair in ladder.windows(2) {
            assert!(
                pair[0].gbps > pair[1].gbps,
                "{} ({}) must out-run {} ({})",
                pair[0].level,
                pair[0].gbps,
                pair[1].level,
                pair[1].gbps
            );
        }
        for rung in &ladder[..3] {
            assert!(
                rung.hit_ratio > 0.5,
                "{} serves its own working set: {}",
                rung.level,
                rung.hit_ratio
            );
        }
    }

    /// Satellite: serial vs `Threads(2)` sweeps are bit-identical — the
    /// CARM determinism contract.
    #[test]
    fn ladder_and_block_sweep_are_bit_identical_across_threads() {
        let cfg = three_level();
        let serial = measure_bandwidth_ladder(&cfg, 5_000, 42, Parallelism::Serial).unwrap();
        let threaded = measure_bandwidth_ladder(&cfg, 5_000, 42, Parallelism::Threads(2)).unwrap();
        assert_eq!(serial, threaded);

        let blocks = [64u64, 256, 1024];
        let serial = sweep_block_sizes(&cfg, &blocks, 4_000, 42, Parallelism::Serial).unwrap();
        let threaded =
            sweep_block_sizes(&cfg, &blocks, 4_000, 42, Parallelism::Threads(2)).unwrap();
        assert_eq!(serial, threaded);
    }

    /// Block-size sweep: bandwidth rises with block size (spatial
    /// locality amortizes deep transfers).
    #[test]
    fn block_sweep_rewards_spatial_locality() {
        let pts =
            sweep_block_sizes(&three_level(), &[64, 1024], 10_000, 3, Parallelism::Serial).unwrap();
        assert!(
            pts[1].gbps > pts[0].gbps,
            "1 KiB blocks ({}) beat single lines ({})",
            pts[1].gbps,
            pts[0].gbps
        );
    }

    /// Hierarchy validation: empty ladder, bad geometry, bad latency,
    /// and ordering violations are all rejected.
    #[test]
    fn hierarchy_validation() {
        let ok = three_level();
        assert!(ok.validate().is_ok());
        assert!(HierarchyConfig {
            levels: vec![],
            dram_latency_ns: 80.0
        }
        .validate()
        .is_err());
        let mut bad_line = ok.clone();
        bad_line.levels[0].geometry.line_bytes = 48;
        assert!(bad_line.validate().is_err());
        let mut bad_lat = ok.clone();
        bad_lat.levels[1].latency_ns = f64::NAN;
        assert!(bad_lat.validate().is_err());
        let mut inverted = ok.clone();
        // Still a valid geometry on its own (256 B lines, 16 ways, two
        // sets) but smaller than l2: the ordering check must fire.
        inverted.levels[2].geometry.capacity_bytes = 8 << 10;
        let err = inverted.validate().unwrap_err();
        assert!(
            err.to_string().contains("ordering"),
            "ordering violation reported: {err}"
        );
        let mut bad_dram = ok;
        bad_dram.dram_latency_ns = 0.0;
        assert!(bad_dram.validate().is_err());
    }

    /// The hit/miss profile accounts for every rung and feeds
    /// normalizable per-level byte counts.
    #[test]
    fn bytes_per_level_profile() {
        let cfg = three_level();
        let mut sim = HierarchySim::new(cfg.clone()).unwrap();
        let mut rng = SplitMix64::new(9);
        for _ in 0..5_000 {
            let addr = rng.range_u64(0, (16 << 10) - 1) & !63;
            sim.access(Access::read(addr));
        }
        let profile = sim.stats().bytes_per_level(&cfg);
        assert_eq!(profile.len(), 4);
        let total: f64 = profile.iter().sum();
        assert!(total > 0.0);
        assert!(
            profile[0] + profile[1] > profile[3],
            "a 16 KiB working set lives in l1+l2, not DRAM: {profile:?}"
        );
    }

    #[test]
    fn replacement_policy_names_round_trip() {
        for p in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Mru,
            ReplacementPolicy::WayPrediction,
        ] {
            assert_eq!(ReplacementPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(ReplacementPolicy::parse("fifo"), None);
    }
}
