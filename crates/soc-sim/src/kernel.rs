//! The Gables roofline microbenchmark kernel (Algorithm 1 of the paper).
//!
//! The kernel walks an array of `size` words for `trials` passes,
//! performing a compile-time-selected number of floating-point operations
//! on each word. Varying the array size probes different levels of the
//! memory hierarchy; varying the operations per word sets the operational
//! intensity. This module describes the kernel's *demands* — total ops,
//! total bytes moved, and working-set size — which the rate-based engine
//! then executes against a hardware configuration.

use crate::config::TrafficPattern;
use crate::error::SimError;

/// The numeric type of the kernel's operations. The paper's default is
/// single-precision float — "a compromise between double-precision ...
/// and the half-precision (or less) favored by emerging algorithms" —
/// with all three evaluated engines supporting IEEE single precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// IEEE single-precision floating point (the paper's kernel).
    #[default]
    Fp32,
    /// Integer operations (what the Hexagon HVX vector unit requires).
    Int,
}

/// The microbenchmark of Algorithm 1: `trials` passes over `words` array
/// elements with `flops_per_word` operations each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineKernel {
    /// Number of passes over the array (`trials` in Algorithm 1).
    pub trials: u64,
    /// Array length in words (`size` in Algorithm 1).
    pub words: u64,
    /// Bytes per word (4 for the paper's single-precision float).
    pub word_bytes: u32,
    /// Floating-point operations applied to each word per pass
    /// (`FLOPS_PER_BYTE` preprocessor knob in Algorithm 1 — despite its
    /// name it counts flops per *element*).
    pub flops_per_word: u32,
    /// The access pattern, which sets both the bytes moved per word and
    /// the DRAM-path efficiency.
    pub pattern: TrafficPattern,
    /// The numeric type of the per-word operations.
    pub data_type: DataType,
}

impl RooflineKernel {
    /// A kernel sized to stream from DRAM (64 MiB working set) with the
    /// paper's defaults: 32-bit words, read-modify-write.
    pub fn dram_resident(flops_per_word: u32) -> Self {
        Self {
            trials: 4,
            words: (64 << 20) / 4,
            word_bytes: 4,
            flops_per_word,
            pattern: TrafficPattern::ReadModifyWrite,
            data_type: DataType::Fp32,
        }
    }

    /// The integer variant of the kernel (same traffic, integer ops) —
    /// what targeting the HVX vector unit requires (Section IV-D).
    pub fn with_data_type(self, data_type: DataType) -> Self {
        Self { data_type, ..self }
    }

    /// Validates the kernel parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Kernel`] for zero trials/words/word size/flops.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.trials == 0 {
            return Err(SimError::Kernel {
                what: "trials must be >= 1".into(),
            });
        }
        if self.words == 0 {
            return Err(SimError::Kernel {
                what: "array size must be >= 1 word".into(),
            });
        }
        if self.word_bytes == 0 {
            return Err(SimError::Kernel {
                what: "word size must be >= 1 byte".into(),
            });
        }
        if self.flops_per_word == 0 {
            return Err(SimError::Kernel {
                what: "flops per word must be >= 1".into(),
            });
        }
        Ok(())
    }

    /// The working-set size in bytes (what must fit in a cache level for
    /// the kernel to be served there).
    pub fn working_set_bytes(&self) -> u64 {
        let arrays = match self.pattern {
            TrafficPattern::ReadModifyWrite | TrafficPattern::StreamRead => 1,
            TrafficPattern::StreamCopy => 2,
        };
        self.words * u64::from(self.word_bytes) * arrays
    }

    /// Total floating-point operations executed.
    pub fn total_flops(&self) -> f64 {
        self.trials as f64 * self.words as f64 * f64::from(self.flops_per_word)
    }

    /// Total bytes moved between the engine and the serving memory level.
    ///
    /// Read-modify-write touches each word twice per pass (load + store);
    /// stream copy reads one array and writes another; stream read only
    /// loads.
    pub fn total_bytes(&self) -> f64 {
        let per_word = match self.pattern {
            TrafficPattern::ReadModifyWrite => 2.0,
            TrafficPattern::StreamCopy => 2.0,
            TrafficPattern::StreamRead => 1.0,
        };
        self.trials as f64 * self.words as f64 * f64::from(self.word_bytes) * per_word
    }

    /// The kernel's operational intensity in flops per byte moved.
    pub fn intensity(&self) -> f64 {
        self.total_flops() / self.total_bytes()
    }

    /// Returns a copy with a different array size in bytes (rounded down
    /// to whole words), for working-set sweeps.
    pub fn with_array_bytes(&self, bytes: u64) -> Self {
        Self {
            words: (bytes / u64::from(self.word_bytes)).max(1),
            ..*self
        }
    }

    /// Returns a copy with a different flops-per-word, for intensity
    /// sweeps.
    pub fn with_flops_per_word(&self, flops_per_word: u32) -> Self {
        Self {
            flops_per_word,
            ..*self
        }
    }

    /// Returns a copy scaled to `fraction` of the work by shortening the
    /// array (used by the Figure 8 mixing harness to split one workload
    /// across IPs). The scaled kernel keeps the same intensity.
    pub fn scaled(&self, fraction: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&fraction));
        Self {
            words: ((self.words as f64 * fraction).round() as u64).max(1),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_for_read_modify_write() {
        let k = RooflineKernel {
            trials: 10,
            words: 1000,
            word_bytes: 4,
            flops_per_word: 8,
            pattern: TrafficPattern::ReadModifyWrite,
            data_type: DataType::Fp32,
        };
        assert_eq!(k.total_flops(), 80_000.0);
        assert_eq!(k.total_bytes(), 80_000.0); // 2 × 4 B × 10 × 1000
        assert_eq!(k.intensity(), 1.0);
        assert_eq!(k.working_set_bytes(), 4000);
    }

    #[test]
    fn stream_read_halves_traffic() {
        let k = RooflineKernel {
            trials: 1,
            words: 100,
            word_bytes: 4,
            flops_per_word: 2,
            pattern: TrafficPattern::StreamRead,
            data_type: DataType::Fp32,
        };
        assert_eq!(k.total_bytes(), 400.0);
        assert_eq!(k.intensity(), 0.5);
    }

    #[test]
    fn stream_copy_doubles_working_set() {
        let k = RooflineKernel {
            trials: 1,
            words: 100,
            word_bytes: 4,
            flops_per_word: 2,
            pattern: TrafficPattern::StreamCopy,
            data_type: DataType::Fp32,
        };
        assert_eq!(k.working_set_bytes(), 800);
        assert_eq!(k.total_bytes(), 800.0);
    }

    #[test]
    fn intensity_scales_with_flops_per_word() {
        let base = RooflineKernel::dram_resident(2);
        assert!((base.intensity() - 0.25).abs() < 1e-12);
        let heavy = base.with_flops_per_word(1024);
        assert!((heavy.intensity() - 128.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_preserves_intensity() {
        let k = RooflineKernel::dram_resident(16);
        let half = k.scaled(0.5);
        assert!((half.intensity() - k.intensity()).abs() < 1e-12);
        assert!((half.total_flops() - k.total_flops() * 0.5).abs() / k.total_flops() < 1e-3);
        // Degenerate fractions stay valid.
        assert_eq!(k.scaled(0.0).words, 1);
    }

    #[test]
    fn with_array_bytes_rounds_to_words() {
        let k = RooflineKernel::dram_resident(2).with_array_bytes(1023);
        assert_eq!(k.words, 255);
        assert_eq!(k.with_array_bytes(2).words, 1); // never zero
    }

    #[test]
    fn validation() {
        let ok = RooflineKernel::dram_resident(2);
        assert!(ok.validate().is_ok());
        assert!(RooflineKernel { trials: 0, ..ok }.validate().is_err());
        assert!(RooflineKernel { words: 0, ..ok }.validate().is_err());
        assert!(RooflineKernel {
            word_bytes: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RooflineKernel {
            flops_per_word: 0,
            ..ok
        }
        .validate()
        .is_err());
    }
}
