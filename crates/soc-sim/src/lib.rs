//! # gables-soc-sim
//!
//! An execution-driven, rate-based SoC simulator — the substrate this
//! reproduction substitutes for the Qualcomm Snapdragon 835/821 hardware
//! the Gables paper (HPCA 2019) benchmarks (see the repository DESIGN.md).
//!
//! The simulator models IP blocks (compute engine + private caches +
//! optional scratchpad + a port onto an interconnect fabric), the fabrics,
//! and a DRAM controller whose bandwidth is shared among all concurrently
//! active IPs under max-min arbitration. It executes the paper's
//! Algorithm-1 roofline microbenchmark and the Section IV-C CPU/GPU
//! "mixing" experiment.
//!
//! ## Example
//!
//! ```
//! use gables_soc_sim::{presets, Job, RooflineKernel, Simulator};
//!
//! let sim = Simulator::new(presets::snapdragon_835_like())?;
//! let run = sim.run(&[Job {
//!     ip: presets::CPU,
//!     kernel: RooflineKernel::dram_resident(1024),
//! }])?;
//! // Compute-bound at the calibrated 7.5 GFLOPS/s ceiling.
//! assert!((run.jobs[0].achieved_flops_per_sec / 1e9 - 7.5).abs() < 0.1);
//! # Ok::<(), gables_soc_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod cache_sim;
pub mod config;
pub mod energy;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod kernel;
pub mod presets;
pub mod run;
pub mod telemetry;
pub mod thermal;
pub mod trace;

pub use arbiter::ArbiterPolicy;
pub use cache_sim::{
    measure_bandwidth_ladder, sweep_block_sizes, BlockSweepPoint, HierarchyConfig, HierarchySim,
    HierarchyStats, LevelBandwidth, LevelConfig, LevelStats, ReplacementPolicy,
};
pub use config::{SocConfig, TrafficPattern};
pub use engine::{Job, JobResult, RunResult, ServedFrom, Simulator};
pub use error::SimError;
pub use kernel::RooflineKernel;
pub use run::{
    gables_jobs, run_gables_batch, run_gables_workload, run_serialized, run_single,
    CoordinationOverhead, MixHarness, MixPoint, SerializedRun,
};
pub use telemetry::{
    BindingConstraint, BottleneckBreakdown, Epoch, EpochFlow, NullRecorder, Recorder,
    TimelineRecorder,
};

#[cfg(test)]
mod invariant_tests {
    //! Invariants from DESIGN.md: the simulator never exceeds its
    //! configured rooflines, and agrees with the analytical model on
    //! cacheless single-IP runs. Deterministic seeded sweeps stand in for
    //! the original property-based tests (no registry deps offline).

    use gables_model::rng::SplitMix64;

    use crate::config::TrafficPattern;
    use crate::engine::{Job, Simulator};
    use crate::kernel::RooflineKernel;
    use crate::presets;

    fn random_kernel(rng: &mut SplitMix64) -> RooflineKernel {
        let patterns = [
            TrafficPattern::ReadModifyWrite,
            TrafficPattern::StreamCopy,
            TrafficPattern::StreamRead,
        ];
        let bytes = rng.range_u64(64 << 10, 64 << 20);
        RooflineKernel {
            trials: rng.range_u64(1, 3),
            words: bytes / 4,
            word_bytes: 4,
            flops_per_word: rng.range_u64(1, 2047) as u32,
            pattern: patterns[rng.range_usize(0, patterns.len() - 1)],
            data_type: crate::kernel::DataType::Fp32,
        }
    }

    /// No job ever exceeds its engine peak or its DRAM-path ceiling.
    #[test]
    fn rooflines_are_respected() {
        let mut rng = SplitMix64::new(0x50C5);
        let sim = Simulator::new(presets::snapdragon_835_like()).unwrap();
        for _ in 0..64 {
            let kernel = random_kernel(&mut rng);
            let ip = rng.range_usize(0, 2);
            let run = sim.run(&[Job { ip, kernel }]).unwrap();
            let job = &run.jobs[0];
            let cfg = &sim.soc().ips[ip];
            assert!(
                job.achieved_flops_per_sec <= cfg.engine.peak_ops_per_sec() * (1.0 + 1e-9),
                "{kernel:?} on IP {ip}"
            );
            if job.served_from == crate::engine::ServedFrom::Dram {
                let path = cfg.port_bandwidth * cfg.pattern_efficiency.factor(kernel.pattern);
                assert!(
                    job.achieved_bytes_per_sec <= path * (1.0 + 1e-9),
                    "{kernel:?} on IP {ip}"
                );
                assert!(
                    job.achieved_bytes_per_sec
                        <= sim.soc().dram.effective_bandwidth() * (1.0 + 1e-9),
                    "{kernel:?} on IP {ip}"
                );
            }
        }
    }

    /// On a cacheless SoC built from a Gables spec, a single-IP run
    /// achieves exactly min(peak, Bi·I) — the IP's roofline.
    #[test]
    fn single_ip_matches_analytical_roofline() {
        use gables_model::two_ip::TwoIpModel;
        let spec = TwoIpModel::figure_6a().soc().unwrap();
        let sim = Simulator::new(presets::from_gables_spec(&spec)).unwrap();
        let mut rng = SplitMix64::new(0x51A7);
        for _ in 0..64 {
            let fpw = rng.range_u64(1, 4095) as u32;
            let kernel = RooflineKernel::dram_resident(fpw);
            let run = sim.run(&[Job { ip: 0, kernel }]).unwrap();
            let i = kernel.intensity();
            let expected = (40.0e9f64).min(6.0e9 * i);
            let got = run.jobs[0].achieved_flops_per_sec;
            assert!(
                (got - expected).abs() / expected < 1e-6,
                "I={i}: expected {expected}, got {got}"
            );
        }
    }
}
