//! Energy and power accounting.
//!
//! The paper's motivation is energy: accelerators exist because they
//! deliver "an order of magnitude improvement in performance and power
//! efficiency compared to the general-purpose application processor",
//! all inside "a tight 3 Watt thermal design point". This module adds
//! per-IP energy coefficients to a simulation run so experiments can
//! check designs against that budget.

use crate::config::SocConfig;
use crate::engine::{RunResult, ServedFrom};
use crate::error::SimError;

/// Energy coefficients for one IP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpEnergy {
    /// Picojoules per operation executed.
    pub pj_per_op: f64,
    /// Picojoules per byte moved through the IP's local hierarchy/port.
    pub pj_per_byte: f64,
}

/// A whole-SoC energy model: per-IP coefficients plus the DRAM cost.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    per_ip: Vec<IpEnergy>,
    /// Picojoules per byte crossing the off-chip DRAM interface.
    dram_pj_per_byte: f64,
    /// Baseline power of the always-on fabric/rail, watts.
    idle_watts: f64,
}

/// Per-job energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEnergy {
    /// The IP index.
    pub ip: usize,
    /// Joules spent executing operations.
    pub compute_joules: f64,
    /// Joules spent moving data locally (caches, scratchpad, port).
    pub movement_joules: f64,
    /// Joules spent on the DRAM interface (zero for cache-resident jobs).
    pub dram_joules: f64,
}

impl JobEnergy {
    /// Total joules for this job.
    pub fn total_joules(&self) -> f64 {
        self.compute_joules + self.movement_joules + self.dram_joules
    }
}

/// The energy report for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Per-job breakdowns, in run order.
    pub jobs: Vec<JobEnergy>,
    /// Idle/baseline energy over the makespan.
    pub idle_joules: f64,
    /// Total joules (jobs + idle).
    pub total_joules: f64,
    /// Average power over the makespan, watts.
    pub average_watts: f64,
    /// Total usecase ops per joule — the efficiency the paper's IPs are
    /// bought for.
    pub ops_per_joule: f64,
}

impl EnergyReport {
    /// Whether the run's average power fits a thermal design point.
    pub fn within_tdp(&self, tdp_watts: f64) -> bool {
        self.average_watts <= tdp_watts
    }
}

impl EnergyModel {
    /// Creates a model from per-IP coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for negative coefficients.
    pub fn new(
        per_ip: Vec<IpEnergy>,
        dram_pj_per_byte: f64,
        idle_watts: f64,
    ) -> Result<Self, SimError> {
        for (i, e) in per_ip.iter().enumerate() {
            let valid = |v: f64| v.is_finite() && v >= 0.0;
            if !valid(e.pj_per_op) || !valid(e.pj_per_byte) {
                return Err(SimError::Config {
                    what: format!("IP {i}: energy coefficients must be finite and >= 0"),
                });
            }
        }
        if !dram_pj_per_byte.is_finite() || dram_pj_per_byte < 0.0 {
            return Err(SimError::Config {
                what: "DRAM pJ/byte must be finite and >= 0".into(),
            });
        }
        if !idle_watts.is_finite() || idle_watts < 0.0 {
            return Err(SimError::Config {
                what: "idle watts must be finite and >= 0".into(),
            });
        }
        Ok(Self {
            per_ip,
            dram_pj_per_byte,
            idle_watts,
        })
    }

    /// Coefficients shaped like the paper's Section II efficiency claims:
    /// the GPU roughly 10x and the DSP roughly 8x more efficient per op
    /// than the CPU; LPDDR-class DRAM interface energy.
    pub fn snapdragon_835_like() -> Self {
        Self {
            per_ip: vec![
                IpEnergy {
                    // Kryo CPU: scalar FP on a big OoO core.
                    pj_per_op: 250.0,
                    pj_per_byte: 12.0,
                },
                IpEnergy {
                    // Adreno GPU: wide SIMD amortizes control.
                    pj_per_op: 25.0,
                    pj_per_byte: 8.0,
                },
                IpEnergy {
                    // Hexagon DSP scalar unit: small in-order engine.
                    pj_per_op: 30.0,
                    pj_per_byte: 6.0,
                },
            ],
            dram_pj_per_byte: 50.0,
            idle_watts: 0.25,
        }
    }

    /// Accounts a finished run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IpIndexOutOfBounds`] if the run references an
    /// IP the model has no coefficients for.
    pub fn account(&self, _soc: &SocConfig, run: &RunResult) -> Result<EnergyReport, SimError> {
        const PJ: f64 = 1.0e-12;
        let mut jobs = Vec::with_capacity(run.jobs.len());
        let mut total = 0.0;
        for job in &run.jobs {
            let coeff = self
                .per_ip
                .get(job.ip)
                .ok_or(SimError::IpIndexOutOfBounds {
                    index: job.ip,
                    len: self.per_ip.len(),
                })?;
            let compute_joules = job.flops * coeff.pj_per_op * PJ;
            let movement_joules = job.bytes * coeff.pj_per_byte * PJ;
            let dram_joules = if job.served_from == ServedFrom::Dram {
                job.bytes * self.dram_pj_per_byte * PJ
            } else {
                0.0
            };
            total += compute_joules + movement_joules + dram_joules;
            jobs.push(JobEnergy {
                ip: job.ip,
                compute_joules,
                movement_joules,
                dram_joules,
            });
        }
        let idle_joules = self.idle_watts * run.makespan_seconds;
        let total_joules = total + idle_joules;
        let average_watts = if run.makespan_seconds > 0.0 {
            total_joules / run.makespan_seconds
        } else {
            0.0
        };
        Ok(EnergyReport {
            jobs,
            idle_joules,
            total_joules,
            average_watts,
            ops_per_joule: if total_joules > 0.0 {
                run.total_flops / total_joules
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Job, Simulator};
    use crate::kernel::RooflineKernel;
    use crate::presets;

    fn run_one(ip: usize, fpw: u32) -> (SocConfig, RunResult) {
        let soc = presets::snapdragon_835_like();
        let sim = Simulator::new(soc.clone()).unwrap();
        let kernel = if ip == presets::GPU {
            RooflineKernel {
                pattern: crate::config::TrafficPattern::StreamCopy,
                ..RooflineKernel::dram_resident(fpw)
            }
        } else {
            RooflineKernel::dram_resident(fpw)
        };
        let run = sim.run(&[Job { ip, kernel }]).unwrap();
        (soc, run)
    }

    #[test]
    fn gpu_is_an_order_of_magnitude_more_efficient_per_op() {
        let model = EnergyModel::snapdragon_835_like();
        let (soc, cpu_run) = run_one(presets::CPU, 1024);
        let (_, gpu_run) = run_one(presets::GPU, 1024);
        let cpu = model.account(&soc, &cpu_run).unwrap();
        let gpu = model.account(&soc, &gpu_run).unwrap();
        let ratio = gpu.ops_per_joule / cpu.ops_per_joule;
        assert!(
            ratio > 5.0,
            "GPU should be far more efficient per op: {ratio}"
        );
    }

    #[test]
    fn dram_energy_only_for_dram_served_jobs() {
        let model = EnergyModel::snapdragon_835_like();
        let soc = presets::snapdragon_835_like();
        let sim = Simulator::new(soc.clone()).unwrap();
        let cached = RooflineKernel::dram_resident(4).with_array_bytes(64 << 10);
        let run = sim
            .run(&[Job {
                ip: presets::CPU,
                kernel: cached,
            }])
            .unwrap();
        let report = model.account(&soc, &run).unwrap();
        assert_eq!(report.jobs[0].dram_joules, 0.0);
        assert!(report.jobs[0].movement_joules > 0.0);

        let (soc, run) = run_one(presets::CPU, 4);
        let report = model.account(&soc, &run).unwrap();
        assert!(report.jobs[0].dram_joules > 0.0);
    }

    #[test]
    fn average_power_is_total_over_makespan() {
        let model = EnergyModel::snapdragon_835_like();
        let (soc, run) = run_one(presets::CPU, 64);
        let report = model.account(&soc, &run).unwrap();
        let expect = report.total_joules / run.makespan_seconds;
        assert!((report.average_watts - expect).abs() < 1e-12);
        assert!(report.total_joules > report.idle_joules);
    }

    #[test]
    fn tdp_check_distinguishes_loads() {
        // The CPU alone at scalar FP fits a phone TDP; the GPU flat out
        // does not (which is why phones throttle).
        let model = EnergyModel::snapdragon_835_like();
        let (soc, cpu_run) = run_one(presets::CPU, 1024);
        let cpu = model.account(&soc, &cpu_run).unwrap();
        assert!(cpu.within_tdp(3.0), "CPU draws {} W", cpu.average_watts);

        let (soc, gpu_run) = run_one(presets::GPU, 1024);
        let gpu = model.account(&soc, &gpu_run).unwrap();
        assert!(
            !gpu.within_tdp(3.0),
            "full-rate GPU should exceed 3 W: {} W",
            gpu.average_watts
        );
    }

    #[test]
    fn validation() {
        assert!(EnergyModel::new(
            vec![IpEnergy {
                pj_per_op: -1.0,
                pj_per_byte: 0.0
            }],
            1.0,
            0.0
        )
        .is_err());
        assert!(EnergyModel::new(vec![], -1.0, 0.0).is_err());
        assert!(EnergyModel::new(vec![], 1.0, f64::NAN).is_err());
        assert!(EnergyModel::new(vec![], 1.0, 0.1).is_ok());
    }

    #[test]
    fn unknown_ip_is_an_error() {
        let model = EnergyModel::new(vec![], 1.0, 0.0).unwrap();
        let (soc, run) = run_one(presets::CPU, 4);
        assert!(matches!(
            model.account(&soc, &run).unwrap_err(),
            SimError::IpIndexOutOfBounds { .. }
        ));
    }

    #[test]
    fn job_energy_total() {
        let j = JobEnergy {
            ip: 0,
            compute_joules: 1.0,
            movement_joules: 2.0,
            dram_joules: 3.0,
        };
        assert_eq!(j.total_joules(), 6.0);
    }
}
