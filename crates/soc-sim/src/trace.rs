//! Synthetic memory-access trace generators.
//!
//! The Gables SRAM extension (Section V-A) needs per-IP miss ratios `mi`,
//! which "depend on properties of both the SoC (e.g., memory size) and
//! the usecase (e.g., reuse by IP\[i\]'s references)". These generators
//! produce the reference patterns mobile usecases exhibit — streaming
//! frames, tiled image processing, strided filters — which the
//! [`cache_sim`](crate::cache_sim) module runs against a cache model to
//! *measure* `mi` instead of guessing it.

/// A memory reference: byte address plus access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Whether the reference writes.
    pub write: bool,
}

impl Access {
    /// A read at `addr`.
    pub fn read(addr: u64) -> Self {
        Self { addr, write: false }
    }

    /// A write at `addr`.
    pub fn write(addr: u64) -> Self {
        Self { addr, write: true }
    }
}

/// A reusable trace description; `generate` materializes the accesses.
#[derive(Debug, Clone, PartialEq)]
pub enum TracePattern {
    /// Sequential streaming over a buffer, repeated `passes` times —
    /// a video frame scan or the Algorithm-1 kernel.
    Stream {
        /// Buffer size in bytes.
        bytes: u64,
        /// Element size in bytes.
        stride: u64,
        /// Number of passes over the buffer.
        passes: u32,
        /// Whether each element is written back (read-modify-write).
        write_back: bool,
    },
    /// Strided access (e.g. column walks of a row-major image).
    Strided {
        /// Buffer size in bytes.
        bytes: u64,
        /// Distance between consecutive references.
        stride: u64,
        /// Number of passes.
        passes: u32,
    },
    /// Tiled processing: the buffer is visited tile by tile, each tile
    /// re-read `reuse` times before moving on — an ISP/IPU working on
    /// line buffers or tiles.
    Tiled {
        /// Buffer size in bytes.
        bytes: u64,
        /// Tile size in bytes.
        tile_bytes: u64,
        /// Element stride within a tile.
        stride: u64,
        /// Times each tile is revisited.
        reuse: u32,
    },
    /// A pointer-chase through a pseudo-random permutation — worst-case
    /// locality (the "can't use the added capacity" pitfall of the
    /// paper's fourth conjecture).
    RandomChase {
        /// Buffer size in bytes.
        bytes: u64,
        /// Element size in bytes.
        stride: u64,
        /// Number of references to emit.
        count: u64,
    },
}

impl TracePattern {
    /// Materializes the trace.
    pub fn generate(&self) -> Vec<Access> {
        match *self {
            TracePattern::Stream {
                bytes,
                stride,
                passes,
                write_back,
            } => {
                let n = (bytes / stride.max(1)).max(1);
                let mut out = Vec::with_capacity((n * u64::from(passes) * 2) as usize);
                for _ in 0..passes {
                    for i in 0..n {
                        out.push(Access::read(i * stride));
                        if write_back {
                            out.push(Access::write(i * stride));
                        }
                    }
                }
                out
            }
            TracePattern::Strided {
                bytes,
                stride,
                passes,
            } => {
                let stride = stride.max(1);
                let mut out = Vec::new();
                for _ in 0..passes {
                    // Walk each congruence class so all bytes are touched.
                    let mut start = 0;
                    while start < stride.min(bytes) {
                        let mut a = start;
                        while a < bytes {
                            out.push(Access::read(a));
                            a += stride;
                        }
                        start += stride.min(64);
                        if stride <= 64 {
                            break;
                        }
                    }
                }
                out
            }
            TracePattern::Tiled {
                bytes,
                tile_bytes,
                stride,
                reuse,
            } => {
                let stride = stride.max(1);
                let tile_bytes = tile_bytes.max(stride);
                let mut out = Vec::new();
                let mut base = 0;
                while base < bytes {
                    let end = (base + tile_bytes).min(bytes);
                    for _ in 0..=reuse {
                        let mut a = base;
                        while a < end {
                            out.push(Access::read(a));
                            a += stride;
                        }
                    }
                    base = end;
                }
                out
            }
            TracePattern::RandomChase {
                bytes,
                stride,
                count,
            } => {
                let stride = stride.max(1);
                let n = (bytes / stride).max(1);
                // Deterministic LCG permutation walk (no RNG dependency
                // needed; full-period parameters for power-of-two n are
                // not required — we mod into range).
                let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
                let mut out = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let idx = (state >> 11) % n;
                    out.push(Access::read(idx * stride));
                }
                out
            }
        }
    }

    /// The trace's footprint in bytes (upper bound on unique data).
    pub fn footprint_bytes(&self) -> u64 {
        match *self {
            TracePattern::Stream { bytes, .. }
            | TracePattern::Strided { bytes, .. }
            | TracePattern::Tiled { bytes, .. }
            | TracePattern::RandomChase { bytes, .. } => bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_emits_reads_then_writes() {
        let t = TracePattern::Stream {
            bytes: 64,
            stride: 8,
            passes: 2,
            write_back: true,
        };
        let accesses = t.generate();
        assert_eq!(accesses.len(), 8 * 2 * 2);
        assert_eq!(accesses[0], Access::read(0));
        assert_eq!(accesses[1], Access::write(0));
        assert_eq!(accesses[2], Access::read(8));
    }

    #[test]
    fn stream_read_only() {
        let t = TracePattern::Stream {
            bytes: 64,
            stride: 8,
            passes: 1,
            write_back: false,
        };
        assert!(t.generate().iter().all(|a| !a.write));
    }

    #[test]
    fn strided_touches_all_congruence_classes() {
        let t = TracePattern::Strided {
            bytes: 4096,
            stride: 1024,
            passes: 1,
        };
        let accesses = t.generate();
        // Addresses cover multiple 64 B-aligned starts within the stride.
        let starts: std::collections::HashSet<u64> =
            accesses.iter().map(|a| a.addr % 1024).collect();
        assert!(starts.len() > 1);
    }

    #[test]
    fn tiled_revisits_each_tile() {
        let t = TracePattern::Tiled {
            bytes: 256,
            tile_bytes: 64,
            stride: 64,
            reuse: 3,
        };
        let accesses = t.generate();
        // 4 tiles x 1 element each x (1 + 3) visits.
        assert_eq!(accesses.len(), 16);
        // First four references are the same tile element.
        assert!(accesses[..4].iter().all(|a| a.addr == 0));
    }

    #[test]
    fn random_chase_is_deterministic_and_bounded() {
        let t = TracePattern::RandomChase {
            bytes: 1024,
            stride: 64,
            count: 100,
        };
        let a = t.generate();
        let b = t.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|x| x.addr < 1024));
    }

    #[test]
    fn footprint_matches_bytes() {
        for t in [
            TracePattern::Stream {
                bytes: 4096,
                stride: 4,
                passes: 1,
                write_back: false,
            },
            TracePattern::RandomChase {
                bytes: 4096,
                stride: 64,
                count: 10,
            },
        ] {
            assert_eq!(t.footprint_bytes(), 4096);
        }
    }

    #[test]
    fn degenerate_strides_do_not_panic() {
        TracePattern::Stream {
            bytes: 8,
            stride: 0,
            passes: 1,
            write_back: false,
        }
        .generate();
        TracePattern::Tiled {
            bytes: 8,
            tile_bytes: 0,
            stride: 0,
            reuse: 0,
        }
        .generate();
    }
}
