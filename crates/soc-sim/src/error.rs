//! Error types for the SoC simulator.

use core::fmt;

/// The error type returned by all fallible simulator operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration field was invalid.
    Config {
        /// Description of the offending field.
        what: String,
    },
    /// No IP with the given name exists in the SoC.
    UnknownIp {
        /// The requested name.
        name: String,
    },
    /// An IP index was out of range.
    IpIndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// The number of IPs.
        len: usize,
    },
    /// A kernel was invalid (zero size, non-positive intensity, …).
    Kernel {
        /// Description of the problem.
        what: String,
    },
    /// The simulation failed to make progress (e.g. all rates zero).
    Stalled {
        /// Simulated time at which progress stopped.
        at_seconds: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config { what } => write!(f, "invalid configuration: {what}"),
            SimError::UnknownIp { name } => write!(f, "no IP named {name:?}"),
            SimError::IpIndexOutOfBounds { index, len } => {
                write!(f, "IP[{index}] is out of bounds for a SoC with {len} IPs")
            }
            SimError::Kernel { what } => write!(f, "invalid kernel: {what}"),
            SimError::Stalled { at_seconds } => {
                write!(f, "simulation stalled at t = {at_seconds}s")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::Config { what: "x".into() }
            .to_string()
            .contains("invalid configuration"));
        assert!(SimError::UnknownIp { name: "GPU".into() }
            .to_string()
            .contains("GPU"));
        assert!(SimError::Stalled { at_seconds: 1.0 }
            .to_string()
            .contains("stalled"));
        assert!(SimError::IpIndexOutOfBounds { index: 9, len: 2 }
            .to_string()
            .contains('9'));
        assert!(SimError::Kernel {
            what: "zero".into()
        }
        .to_string()
        .contains("zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
