//! Multi-level, trace-driven cache-hierarchy simulation.
//!
//! The execution engine models an IP's caches with a working-set
//! threshold ("fits in L2 → served at L2 bandwidth"), which is exact for
//! the paper's streaming kernel. This module is the higher-fidelity tier:
//! it propagates an access trace through L1 → L2 → … → DRAM, with misses
//! and dirty writebacks at each level becoming accesses at the next, and
//! derives per-level traffic and a bandwidth-bound time estimate. Tests
//! validate the two tiers against each other on the regimes where the
//! threshold model is exact — the cross-check DESIGN.md's ablation story
//! relies on.

use crate::cache_sim::{AccessOutcome, CacheConfig, CacheSim, CacheStats};
use crate::error::SimError;
use crate::trace::Access;

/// One level of the simulated hierarchy.
#[derive(Debug, Clone)]
struct Level {
    name: String,
    sim: CacheSim,
}

/// Per-level traffic observed by a hierarchy run.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTraffic {
    /// Level name (e.g. `"L1"`).
    pub name: String,
    /// Accesses arriving at this level.
    pub accesses: u64,
    /// Bytes arriving at this level (access count × line size of the
    /// level above, or the raw reference size at L1).
    pub bytes: f64,
    /// This level's cache statistics.
    pub stats: CacheStats,
}

/// The result of pushing a trace through the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyStats {
    /// Per-level traffic, outermost (L1) first.
    pub levels: Vec<LevelTraffic>,
    /// Bytes that reached DRAM (last-level misses + dirty writebacks, at
    /// line granularity).
    pub dram_bytes: f64,
}

impl HierarchyStats {
    /// The effective DRAM intensity of the traced computation:
    /// `total flops / DRAM bytes` (`None` when nothing reached DRAM).
    pub fn dram_intensity(&self, total_flops: f64) -> Option<f64> {
        if self.dram_bytes > 0.0 {
            Some(total_flops / self.dram_bytes)
        } else {
            None
        }
    }

    /// A bandwidth-bound lower time estimate: every level's bytes must
    /// move through that level's bandwidth, DRAM bytes through the DRAM
    /// path, and flops through the engine — all overlappable, so the max
    /// binds. `level_bandwidths` is index-aligned with
    /// [`levels`](Self::levels).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] on a bandwidth-list length mismatch or
    /// non-positive rates.
    pub fn time_lower_bound(
        &self,
        total_flops: f64,
        compute_rate: f64,
        level_bandwidths: &[f64],
        dram_bandwidth: f64,
    ) -> Result<f64, SimError> {
        if level_bandwidths.len() != self.levels.len() {
            return Err(SimError::Config {
                what: format!(
                    "expected {} level bandwidths, got {}",
                    self.levels.len(),
                    level_bandwidths.len()
                ),
            });
        }
        for &b in level_bandwidths
            .iter()
            .chain([&compute_rate, &dram_bandwidth])
        {
            if !b.is_finite() || b <= 0.0 {
                return Err(SimError::Config {
                    what: "rates must be finite and > 0".into(),
                });
            }
        }
        let mut t: f64 = total_flops / compute_rate;
        for (lvl, &bw) in self.levels.iter().zip(level_bandwidths) {
            t = t.max(lvl.bytes / bw);
        }
        Ok(t.max(self.dram_bytes / dram_bandwidth))
    }
}

/// A multi-level trace-driven hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchySim {
    levels: Vec<Level>,
    /// Reference size charged per L1 access (the word size).
    access_bytes: u64,
}

impl HierarchySim {
    /// Builds a hierarchy from `(name, geometry)` pairs, outermost (L1)
    /// first. `access_bytes` is the reference size seen by L1.
    ///
    /// # Errors
    ///
    /// * [`SimError::Config`] for an empty level list, invalid geometry,
    ///   non-increasing capacities, or a zero access size.
    pub fn new(levels: Vec<(String, CacheConfig)>, access_bytes: u64) -> Result<Self, SimError> {
        if levels.is_empty() {
            return Err(SimError::Config {
                what: "hierarchy needs at least one level".into(),
            });
        }
        if access_bytes == 0 {
            return Err(SimError::Config {
                what: "access size must be >= 1 byte".into(),
            });
        }
        for pair in levels.windows(2) {
            if pair[1].1.capacity_bytes <= pair[0].1.capacity_bytes {
                return Err(SimError::Config {
                    what: format!(
                        "hierarchy capacities must strictly increase ({} then {})",
                        pair[0].0, pair[1].0
                    ),
                });
            }
            if pair[1].1.line_bytes < pair[0].1.line_bytes {
                return Err(SimError::Config {
                    what: "line sizes must not shrink down the hierarchy".into(),
                });
            }
        }
        let levels = levels
            .into_iter()
            .map(|(name, cfg)| {
                Ok(Level {
                    name,
                    sim: CacheSim::new(cfg)?,
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        Ok(Self {
            levels,
            access_bytes,
        })
    }

    /// Pushes a trace through the hierarchy: each level's misses (demand
    /// fills) and dirty-victim writebacks become the access stream of the
    /// level below; whatever falls out of the last level is DRAM traffic.
    pub fn run_trace(&mut self, trace: &[Access]) -> HierarchyStats {
        let n = self.levels.len();
        let mut accesses: Vec<u64> = vec![0; n];
        let mut bytes: Vec<f64> = vec![0.0; n];
        let mut dram_bytes = 0.0f64;
        let last_line = self.levels[n - 1].sim.config().line_bytes as f64;

        for &access in trace {
            let mut current = vec![access];
            for k in 0..n {
                if current.is_empty() {
                    break;
                }
                let charge = if k == 0 {
                    self.access_bytes as f64
                } else {
                    self.levels[k - 1].sim.config().line_bytes as f64
                };
                let mut next = Vec::new();
                for a in current {
                    accesses[k] += 1;
                    bytes[k] += charge;
                    let (outcome, writeback) = self.levels[k].sim.access_detailed(a);
                    if matches!(outcome, AccessOutcome::Miss(_)) {
                        next.push(Access::read(a.addr)); // fill from below
                    }
                    if let Some(victim_addr) = writeback {
                        next.push(Access::write(victim_addr));
                    }
                }
                current = next;
            }
            dram_bytes += current.len() as f64 * last_line;
        }
        // Lines still resident (dirty or not) at the end never washed
        // out; standing-traffic estimates intentionally exclude them.
        let levels = self
            .levels
            .iter()
            .zip(accesses)
            .zip(bytes)
            .map(|((lvl, accesses), bytes)| LevelTraffic {
                name: lvl.name.clone(),
                accesses,
                bytes,
                stats: *lvl.sim.stats(),
            })
            .collect();
        HierarchyStats { levels, dram_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePattern;

    fn two_level(access_bytes: u64) -> HierarchySim {
        HierarchySim::new(
            vec![
                (
                    "L1".into(),
                    CacheConfig {
                        capacity_bytes: 32 << 10,
                        line_bytes: 64,
                        associativity: 8,
                    },
                ),
                (
                    "L2".into(),
                    CacheConfig {
                        capacity_bytes: 512 << 10,
                        line_bytes: 64,
                        associativity: 16,
                    },
                ),
            ],
            access_bytes,
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(HierarchySim::new(vec![], 4).is_err());
        let l1 = (
            "L1".to_string(),
            CacheConfig {
                capacity_bytes: 64 << 10,
                line_bytes: 64,
                associativity: 8,
            },
        );
        assert!(HierarchySim::new(vec![l1.clone()], 0).is_err());
        // Shrinking capacity.
        let tiny = (
            "L2".to_string(),
            CacheConfig {
                capacity_bytes: 32 << 10,
                line_bytes: 64,
                associativity: 8,
            },
        );
        assert!(HierarchySim::new(vec![l1.clone(), tiny], 4).is_err());
        // Shrinking line size.
        let thin = (
            "L2".to_string(),
            CacheConfig {
                capacity_bytes: 256 << 10,
                line_bytes: 32,
                associativity: 8,
            },
        );
        assert!(HierarchySim::new(vec![l1, thin], 4).is_err());
    }

    #[test]
    fn l1_resident_trace_only_pays_cold_fills() {
        let mut h = two_level(4);
        let trace = TracePattern::Stream {
            bytes: 8 << 10, // fits L1
            stride: 4,
            passes: 4,
            write_back: false,
        }
        .generate();
        let stats = h.run_trace(&trace);
        // L2 and DRAM see only the one-time compulsory fills; the three
        // further passes stay entirely in L1.
        let l1_lines = (8 << 10) / 64;
        assert_eq!(stats.levels[1].accesses, l1_lines);
        assert_eq!(stats.dram_bytes, (l1_lines * 64) as f64);
        // Re-running the same passes on the warm hierarchy generates no
        // new traffic below L1 at all.
        let warm = h.run_trace(&trace);
        assert_eq!(warm.dram_bytes, 0.0);
        assert_eq!(warm.levels[1].accesses, 0);
        assert!(warm.dram_intensity(1000.0).is_none());
    }

    #[test]
    fn l2_resident_trace_stops_at_l2() {
        let mut h = two_level(4);
        let trace = TracePattern::Stream {
            bytes: 256 << 10, // fits L2, not L1
            stride: 4,
            passes: 3,
            write_back: false,
        }
        .generate();
        let stats = h.run_trace(&trace);
        // After the compulsory pass, every pass misses L1 (capacity) but
        // hits L2; DRAM sees only the compulsory fills.
        let lines = (256 << 10) / 64;
        assert_eq!(stats.dram_bytes, (lines * 64) as f64);
        assert!(stats.levels[1].accesses >= 3 * lines - 1);
    }

    #[test]
    fn dram_resident_stream_traffic_matches_threshold_model() {
        // For a stream far larger than L2, the trace-driven DRAM traffic
        // equals the kernel's total bytes — exactly what the engine's
        // threshold model charges. This is the two-tier cross-check.
        let mut h = two_level(64); // line-granular accesses
        let buffer = 2 << 20;
        let trace = TracePattern::Stream {
            bytes: buffer,
            stride: 64,
            passes: 2,
            write_back: false,
        }
        .generate();
        let stats = h.run_trace(&trace);
        let expected = (2 * buffer) as f64;
        let rel = (stats.dram_bytes - expected).abs() / expected;
        assert!(rel < 0.01, "dram {} vs {}", stats.dram_bytes, expected);
    }

    #[test]
    fn dirty_writebacks_propagate_to_dram() {
        let mut h = two_level(64);
        let buffer = 2 << 20;
        let rmw = TracePattern::Stream {
            bytes: buffer,
            stride: 64,
            passes: 1,
            write_back: true,
        }
        .generate();
        let stats = h.run_trace(&rmw);
        // Reads fill every line once; dirty lines wash back out: about
        // 2x the buffer crosses DRAM (fills + writebacks), minus lines
        // still resident at the end.
        let resident = (512 << 10) as f64;
        let expected_lo = 2.0 * buffer as f64 - 2.0 * resident;
        assert!(
            stats.dram_bytes >= expected_lo,
            "dram {} < {}",
            stats.dram_bytes,
            expected_lo
        );
        assert!(stats.dram_bytes <= 2.0 * buffer as f64);
    }

    #[test]
    fn time_lower_bound_picks_the_binding_resource() {
        let mut h = two_level(4);
        let trace = TracePattern::Stream {
            bytes: 2 << 20,
            stride: 4,
            passes: 1,
            write_back: false,
        }
        .generate();
        let stats = h.run_trace(&trace);
        let flops = trace.len() as f64 * 2.0;
        // Generous everything except DRAM: DRAM binds.
        let t = stats
            .time_lower_bound(flops, 1.0e15, &[1.0e15, 1.0e15], 10.0e9)
            .unwrap();
        assert!((t - stats.dram_bytes / 10.0e9).abs() / t < 1e-12);
        // Generous everything except compute: compute binds.
        let t = stats
            .time_lower_bound(flops, 1.0e3, &[1.0e15, 1.0e15], 1.0e15)
            .unwrap();
        assert!((t - flops / 1.0e3).abs() / t < 1e-12);
        // Validation.
        assert!(stats.time_lower_bound(flops, 1.0, &[1.0], 1.0).is_err());
        assert!(stats
            .time_lower_bound(flops, 0.0, &[1.0, 1.0], 1.0)
            .is_err());
    }

    #[test]
    fn effective_intensity_depends_on_hierarchy_size() {
        // The same tiled computation behind a bigger L2 has higher DRAM
        // intensity — conjecture 4 at hierarchy scale.
        let pattern = TracePattern::Tiled {
            bytes: 2 << 20,
            tile_bytes: 256 << 10,
            stride: 64,
            reuse: 7,
        };
        let trace = pattern.generate();
        let flops = trace.len() as f64 * 8.0;

        let mut small = two_level(64); // 512 KiB L2 holds a tile
        let small_stats = small.run_trace(&trace);
        let mut tiny = HierarchySim::new(
            vec![(
                "L1".into(),
                CacheConfig {
                    capacity_bytes: 32 << 10, // smaller than a tile
                    line_bytes: 64,
                    associativity: 8,
                },
            )],
            64,
        )
        .unwrap();
        let tiny_stats = tiny.run_trace(&trace);
        let i_small = small_stats.dram_intensity(flops).unwrap();
        let i_tiny = tiny_stats.dram_intensity(flops).unwrap();
        assert!(
            i_small > 4.0 * i_tiny,
            "with-L2 {i_small} vs without {i_tiny}"
        );
    }
}
