//! High-level experiment harnesses: single-IP roofline points and the
//! Figure 8 "mixing" sweep.
//!
//! The mixing harness reproduces Section IV-C: one workload of fixed total
//! flops is split — fraction `f` to an accelerator, `1-f` to the CPU — and
//! both halves run *concurrently*, sharing DRAM. Offloaded bytes pay an
//! optional CPU-side coordination cost (Section II-B's third bottleneck:
//! IPs are exposed as devices and the CPU handles dispatch/interrupts),
//! which is what makes low-intensity offload a measured *slowdown* on real
//! hardware even when raw rooflines would predict parity.

use crate::config::TrafficPattern;
use crate::engine::{Job, JobResult, RunResult, Simulator};
use crate::error::SimError;
use crate::kernel::RooflineKernel;

/// CPU-side cost of staging buffers to/from an offload target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinationOverhead {
    /// Serial seconds charged per byte moved on behalf of an accelerator.
    pub seconds_per_byte: f64,
}

impl CoordinationOverhead {
    /// The default calibrated so the Figure 8 sweep peaks near the paper's
    /// measured 39.4x at `I = 1024` instead of the raw roofline ratio of
    /// ~46.6x (349.6 / 7.5).
    pub fn calibrated() -> Self {
        Self {
            seconds_per_byte: 0.536e-9,
        }
    }

    /// No coordination cost (ideal dispatch).
    pub fn none() -> Self {
        Self {
            seconds_per_byte: 0.0,
        }
    }
}

/// One point of the Figure 8 mixing sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MixPoint {
    /// Fraction of work at the accelerator.
    pub f: f64,
    /// The kernel intensity in flops per byte.
    pub intensity: f64,
    /// End-to-end time including coordination overhead, seconds.
    pub seconds: f64,
    /// Total flops divided by end-to-end time.
    pub flops_per_sec: f64,
    /// The underlying engine run (empty at f = 0 or f = 1 for the idle
    /// side).
    pub run: RunResult,
}

/// The Figure 8 harness for one (CPU, accelerator) pair.
#[derive(Debug, Clone)]
pub struct MixHarness<'a> {
    sim: &'a Simulator,
    cpu: usize,
    accelerator: usize,
    overhead: CoordinationOverhead,
    /// Pattern used by the CPU half (the paper's read-modify-write).
    cpu_pattern: TrafficPattern,
    /// Pattern used by the accelerator half (the paper's GPU stream
    /// variant).
    accelerator_pattern: TrafficPattern,
}

impl<'a> MixHarness<'a> {
    /// Creates a harness offloading from `cpu` to `accelerator`.
    pub fn new(sim: &'a Simulator, cpu: usize, accelerator: usize) -> Self {
        Self {
            sim,
            cpu,
            accelerator,
            overhead: CoordinationOverhead::calibrated(),
            cpu_pattern: TrafficPattern::ReadModifyWrite,
            accelerator_pattern: TrafficPattern::StreamCopy,
        }
    }

    /// Overrides the coordination overhead.
    pub fn with_overhead(mut self, overhead: CoordinationOverhead) -> Self {
        self.overhead = overhead;
        self
    }

    /// Builds the paper's kernel at roughly `intensity` flops/byte (the
    /// nearest representable flops-per-word) sized to stream from DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Kernel`] if `intensity` is below what one flop
    /// per word represents (≈ 0.125 for 4-byte read-modify-write words).
    pub fn kernel_at_intensity(&self, intensity: f64) -> Result<RooflineKernel, SimError> {
        let base = RooflineKernel::dram_resident(1);
        // RMW moves 2 × word_bytes per word, so fpw = I × 8 for f32.
        let bytes_per_word = f64::from(base.word_bytes) * 2.0;
        let fpw = (intensity * bytes_per_word).round();
        if fpw < 1.0 {
            return Err(SimError::Kernel {
                what: format!(
                    "intensity {intensity} not representable (needs >= {} flops/byte)",
                    1.0 / bytes_per_word
                ),
            });
        }
        Ok(base.with_flops_per_word(fpw as u32))
    }

    /// Runs one mixing point: fraction `f` of the kernel's work at the
    /// accelerator, concurrently with the remainder on the CPU.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; rejects `f` outside `[0, 1]`.
    pub fn run(&self, kernel: RooflineKernel, f: f64) -> Result<MixPoint, SimError> {
        if !(0.0..=1.0).contains(&f) {
            return Err(SimError::Kernel {
                what: format!("work fraction {f} outside [0, 1]"),
            });
        }
        let mut jobs = Vec::new();
        let mut acc_job_index = None;
        if f < 1.0 {
            jobs.push(Job {
                ip: self.cpu,
                kernel: RooflineKernel {
                    pattern: self.cpu_pattern,
                    ..kernel.scaled(1.0 - f)
                },
            });
        }
        if f > 0.0 {
            acc_job_index = Some(jobs.len());
            jobs.push(Job {
                ip: self.accelerator,
                kernel: RooflineKernel {
                    pattern: self.accelerator_pattern,
                    ..kernel.scaled(f)
                },
            });
        }
        let run = self.sim.run(&jobs)?;

        // Coordination: the accelerator's completion is extended by the
        // CPU-side staging cost of its bytes.
        let mut seconds = 0.0f64;
        for (i, job) in run.jobs.iter().enumerate() {
            let mut t = job.seconds;
            if Some(i) == acc_job_index {
                t += self.overhead.seconds_per_byte * job.bytes;
            }
            seconds = seconds.max(t);
        }
        let total_flops: f64 = run.jobs.iter().map(|j| j.flops).sum();
        Ok(MixPoint {
            f,
            intensity: kernel.intensity(),
            seconds,
            flops_per_sec: total_flops / seconds,
            run,
        })
    }

    /// Runs the full Figure 8 sweep: `f` in `steps + 1` even increments
    /// for each requested intensity. Results are normalized by the caller
    /// (Figure 8 normalizes to `f = 0` at intensity 1).
    ///
    /// # Errors
    ///
    /// Propagates kernel and simulator errors.
    pub fn sweep(&self, intensities: &[f64], steps: usize) -> Result<Vec<Vec<MixPoint>>, SimError> {
        let mut out = Vec::with_capacity(intensities.len());
        for &intensity in intensities {
            let kernel = self.kernel_at_intensity(intensity)?;
            let mut line = Vec::with_capacity(steps + 1);
            for step in 0..=steps {
                let f = step as f64 / steps as f64;
                line.push(self.run(kernel, f)?);
            }
            out.push(line);
        }
        Ok(out)
    }
}

/// Translates a Gables workload into simulator jobs: one job per active
/// IP running the paper's read-modify-write kernel at the assignment's
/// intensity (`fpw = I × 8` for 4-byte words), sized by its work
/// fraction.
///
/// This is the shared entry point behind `gables trace` and the
/// `/simulate` endpoint of `gables-serve`; keeping it here means every
/// consumer agrees on how a spec workload maps onto the engine.
///
/// # Errors
///
/// Returns [`SimError::Kernel`] if an active intensity rounds below one
/// flop per word (not representable by the RMW kernel) or if no IP has
/// work assigned.
pub fn gables_jobs(workload: &gables_model::Workload) -> Result<Vec<Job>, SimError> {
    let mut jobs = Vec::new();
    for (ip, a) in workload.assignments().iter().enumerate() {
        if !a.is_active() {
            continue;
        }
        let intensity = a.intensity().value();
        let fpw = (intensity * 8.0).round();
        if fpw < 1.0 {
            return Err(SimError::Kernel {
                what: format!(
                    "IP {ip} intensity {intensity} is not representable by the RMW \
                     kernel (rounds below 1 flop per word); raise it to simulate"
                ),
            });
        }
        let kernel = RooflineKernel::dram_resident(fpw as u32).scaled(a.fraction().value());
        jobs.push(Job { ip, kernel });
    }
    if jobs.is_empty() {
        return Err(SimError::Kernel {
            what: "workload has no active IPs to run".into(),
        });
    }
    Ok(jobs)
}

/// Runs a Gables spec workload on a cacheless simulator built from the
/// spec's parameters, observing the run with `recorder` (pass a
/// [`NullRecorder`](crate::telemetry::NullRecorder) when the epoch
/// timeline is not needed — the per-job
/// [`BottleneckBreakdown`](crate::telemetry::BottleneckBreakdown) is
/// always produced).
///
/// # Errors
///
/// Propagates [`gables_jobs`] and simulator errors.
pub fn run_gables_workload(
    spec: &gables_model::SocSpec,
    workload: &gables_model::Workload,
    recorder: &mut dyn crate::telemetry::Recorder,
) -> Result<RunResult, SimError> {
    let _span = gables_model::obs::span("sim.run");
    let sim = Simulator::new(crate::presets::from_gables_spec(spec))?;
    sim.run_with_recorder(&gables_jobs(workload)?, recorder)
}

/// Runs a batch of Gables workloads on one simulator built from the spec,
/// fanning the independent runs across workers per `parallelism`. Each
/// run gets its own [`NullRecorder`](crate::telemetry::NullRecorder);
/// results come back in workload order with bits identical to running
/// [`run_gables_workload`] in a loop.
///
/// # Errors
///
/// Propagates [`gables_jobs`] and simulator errors; with multiple workers
/// the reported error is the one a serial loop would have hit first.
pub fn run_gables_batch(
    spec: &gables_model::SocSpec,
    workloads: &[gables_model::Workload],
    parallelism: gables_model::par::Parallelism,
) -> Result<Vec<RunResult>, SimError> {
    let sim = Simulator::new(crate::presets::from_gables_spec(spec))?;
    gables_model::par::try_map(parallelism, workloads.len(), |i| {
        let mut recorder = crate::telemetry::NullRecorder;
        sim.run_with_recorder(&gables_jobs(&workloads[i])?, &mut recorder)
    })
}

/// Runs a single-IP roofline measurement: one kernel on one IP, nothing
/// else on the SoC (Section IV-B's per-IP sweeps).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_single(
    sim: &Simulator,
    ip: usize,
    kernel: RooflineKernel,
) -> Result<JobResult, SimError> {
    let result = sim.run(&[Job { ip, kernel }])?;
    Ok(result.jobs.into_iter().next().expect("one job in, one out"))
}

/// Runs jobs one at a time — the execution regime of the paper's Section
/// V-C serialized-work extension (and of Amdahl's Law / MultiAmdahl).
/// Each job gets the whole SoC to itself; completion times accumulate.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_serialized(sim: &Simulator, jobs: &[Job]) -> Result<SerializedRun, SimError> {
    let mut phases = Vec::with_capacity(jobs.len());
    let mut elapsed = 0.0f64;
    let mut total_flops = 0.0f64;
    for job in jobs {
        let mut result = sim.run(std::slice::from_ref(job))?;
        let solo = result.jobs.pop().expect("one job in, one out");
        elapsed += solo.seconds;
        total_flops += solo.flops;
        phases.push(SerializedPhase {
            ip: job.ip,
            seconds: solo.seconds,
            completes_at: elapsed,
            result: solo,
        });
    }
    Ok(SerializedRun {
        phases,
        total_seconds: elapsed,
        aggregate_flops_per_sec: if elapsed > 0.0 {
            total_flops / elapsed
        } else {
            0.0
        },
    })
}

/// One phase of a serialized run.
#[derive(Debug, Clone, PartialEq)]
pub struct SerializedPhase {
    /// The IP that ran.
    pub ip: usize,
    /// Duration of this phase alone.
    pub seconds: f64,
    /// Cumulative completion time.
    pub completes_at: f64,
    /// The solo job result.
    pub result: JobResult,
}

/// A serialized (one-IP-at-a-time) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SerializedRun {
    /// Phases in execution order.
    pub phases: Vec<SerializedPhase>,
    /// End-to-end time.
    pub total_seconds: f64,
    /// Total flops over end-to-end time.
    pub aggregate_flops_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, snapdragon_835_like};

    fn sim() -> Simulator {
        Simulator::new(snapdragon_835_like()).unwrap()
    }

    #[test]
    fn kernel_at_intensity_rounds_to_flops_per_word() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU);
        let k = h.kernel_at_intensity(1.0).unwrap();
        assert_eq!(k.flops_per_word, 8);
        assert!((k.intensity() - 1.0).abs() < 1e-12);
        let k = h.kernel_at_intensity(1024.0).unwrap();
        assert!((k.intensity() - 1024.0).abs() < 1e-9);
        assert!(h.kernel_at_intensity(0.01).is_err());
    }

    #[test]
    fn f_zero_is_all_cpu() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU);
        let k = h.kernel_at_intensity(1.0).unwrap();
        let p = h.run(k, 0.0).unwrap();
        assert_eq!(p.run.jobs.len(), 1);
        assert_eq!(p.run.jobs[0].ip, presets::CPU);
        // I = 1 on the CPU is compute-bound at 7.5 GFLOPS/s.
        assert!((p.flops_per_sec / 1e9 - 7.5).abs() < 0.1);
    }

    #[test]
    fn high_intensity_full_offload_approaches_paper_speedup() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU);
        let k = h.kernel_at_intensity(1024.0).unwrap();
        let base = h.run(k, 0.0).unwrap().flops_per_sec;
        let full = h.run(k, 1.0).unwrap().flops_per_sec;
        let speedup = full / base;
        // Paper: 39.4x measured. Shape target: tens, not ~46.6 raw.
        assert!(
            (speedup - 39.4).abs() < 2.0,
            "speedup {speedup} not near paper's 39.4"
        );
    }

    #[test]
    fn low_intensity_full_offload_is_a_slowdown() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU);
        let k = h.kernel_at_intensity(1.0).unwrap();
        let base = h.run(k, 0.0).unwrap().flops_per_sec;
        let full = h.run(k, 1.0).unwrap().flops_per_sec;
        assert!(
            full < base,
            "offloading I=1 work should slow down ({} vs {})",
            full,
            base
        );
    }

    #[test]
    fn without_overhead_low_intensity_offload_is_bandwidth_story() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU)
            .with_overhead(CoordinationOverhead::none());
        let k = h.kernel_at_intensity(1.0).unwrap();
        let base = h.run(k, 0.0).unwrap().flops_per_sec;
        let full = h.run(k, 1.0).unwrap().flops_per_sec;
        // With ideal dispatch, the GPU's wider port wins at I = 1.
        assert!(full > base);
    }

    #[test]
    fn sweep_shape_matches_figure_8() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU);
        let lines = h.sweep(&[1.0, 1024.0], 8).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 9);
        let base = lines[0][0].flops_per_sec; // f = 0, I = 1
                                              // Low-intensity line dips below 1; high-intensity line rises far
                                              // above it.
        let low_end = lines[0].last().unwrap().flops_per_sec / base;
        let high_end = lines[1].last().unwrap().flops_per_sec / base;
        assert!(low_end < 1.0, "low-I end {low_end}");
        assert!(high_end > 30.0, "high-I end {high_end}");
        // f increments are even.
        assert!((lines[0][4].f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serialized_run_accumulates_phase_times() {
        let s = sim();
        let jobs = vec![
            Job {
                ip: presets::CPU,
                kernel: RooflineKernel::dram_resident(8),
            },
            Job {
                ip: presets::GPU,
                kernel: RooflineKernel {
                    pattern: TrafficPattern::StreamCopy,
                    ..RooflineKernel::dram_resident(8)
                },
            },
        ];
        let serial = run_serialized(&s, &jobs).unwrap();
        assert_eq!(serial.phases.len(), 2);
        let sum: f64 = serial.phases.iter().map(|p| p.seconds).sum();
        assert!((serial.total_seconds - sum).abs() / sum < 1e-12);
        assert!((serial.phases[1].completes_at - serial.total_seconds).abs() < 1e-12);
        // Concurrent execution of the same jobs finishes no later.
        let concurrent = s.run(&jobs).unwrap();
        assert!(concurrent.makespan_seconds <= serial.total_seconds * (1.0 + 1e-9));
    }

    #[test]
    fn serialized_matches_gables_serialized_extension_on_spec_soc() {
        // On a cacheless SoC built from a Gables spec, the simulator's
        // serialized run time equals the Section V-C model exactly.
        use gables_model::ext::serialized::evaluate_serialized;
        use gables_model::two_ip::TwoIpModel;

        let m = TwoIpModel::figure_6d();
        let spec = m.soc().unwrap();
        let s = Simulator::new(presets::from_gables_spec(&spec)).unwrap();
        // Workload: f = 0.75 at I0 = I1 = 8 -> kernels with matching op
        // split and intensity (fpw 64 on 4-byte RMW words = 8 ops/byte).
        let total = RooflineKernel::dram_resident(64);
        let jobs = vec![
            Job {
                ip: 0,
                kernel: total.scaled(0.25),
            },
            Job {
                ip: 1,
                kernel: total.scaled(0.75),
            },
        ];
        let serial = run_serialized(&s, &jobs).unwrap();
        let model = evaluate_serialized(&spec, &m.workload().unwrap()).unwrap();
        let measured_gops = serial.aggregate_flops_per_sec / 1e9;
        let bound_gops = model.attainable().to_gops();
        assert!(
            (measured_gops - bound_gops).abs() / bound_gops < 1e-3,
            "serialized sim {measured_gops} vs model {bound_gops}"
        );
    }

    #[test]
    fn gables_jobs_builds_one_job_per_active_ip() {
        use gables_model::Workload;
        let w = Workload::two_ip(0.75, 8.0, 8.0).unwrap();
        let jobs = gables_jobs(&w).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].ip, 0);
        assert_eq!(jobs[1].ip, 1);
        // fpw = I × 8; job sizes reflect the 0.25/0.75 split.
        assert_eq!(jobs[0].kernel.flops_per_word, 64);
        let f0 = jobs[0].kernel.words as f64;
        let f1 = jobs[1].kernel.words as f64;
        assert!((f1 / (f0 + f1) - 0.75).abs() < 1e-3);

        // f = 1 leaves the CPU idle: one job only.
        let w = Workload::two_ip(1.0, 8.0, 8.0).unwrap();
        assert_eq!(gables_jobs(&w).unwrap().len(), 1);
    }

    #[test]
    fn gables_jobs_rejects_unrepresentable_intensity() {
        use gables_model::Workload;
        let tiny = Workload::two_ip(0.75, 8.0, 0.01).unwrap();
        let err = gables_jobs(&tiny).unwrap_err();
        assert!(err.to_string().contains("not representable"), "{err}");
    }

    #[test]
    fn run_gables_workload_matches_trace_path() {
        use gables_model::two_ip::TwoIpModel;
        let m = TwoIpModel::figure_6d();
        let spec = m.soc().unwrap();
        let w = m.workload().unwrap();
        let mut recorder = crate::telemetry::NullRecorder;
        let run = run_gables_workload(&spec, &w, &mut recorder).unwrap();
        assert_eq!(run.jobs.len(), 2);
        assert!(run.makespan_seconds > 0.0);
        // Every job carries a normalized bottleneck breakdown.
        for job in &run.jobs {
            assert!((job.breakdown.total() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_matches_looped_single_runs() {
        use gables_model::par::Parallelism;
        use gables_model::two_ip::TwoIpModel;
        use gables_model::Workload;
        let spec = TwoIpModel::figure_6d().soc().unwrap();
        let workloads: Vec<Workload> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&f| Workload::two_ip(f, 8.0, 8.0).unwrap())
            .collect();
        let looped: Vec<RunResult> = workloads
            .iter()
            .map(|w| {
                let mut r = crate::telemetry::NullRecorder;
                run_gables_workload(&spec, w, &mut r).unwrap()
            })
            .collect();
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let batch = run_gables_batch(&spec, &workloads, par).unwrap();
            assert_eq!(batch, looped, "{par:?}");
        }
    }

    #[test]
    fn batch_error_matches_the_first_serial_failure() {
        use gables_model::par::Parallelism;
        use gables_model::two_ip::TwoIpModel;
        use gables_model::Workload;
        let spec = TwoIpModel::figure_6d().soc().unwrap();
        // Index 1 is the first unrepresentable workload (I1 rounds below
        // one flop per word); index 3 also fails.
        let workloads = vec![
            Workload::two_ip(0.5, 8.0, 8.0).unwrap(),
            Workload::two_ip(0.5, 8.0, 0.01).unwrap(),
            Workload::two_ip(0.5, 8.0, 8.0).unwrap(),
            Workload::two_ip(0.5, 8.0, 0.02).unwrap(),
        ];
        let serial = run_gables_batch(&spec, &workloads, Parallelism::Serial).unwrap_err();
        let parallel = run_gables_batch(&spec, &workloads, Parallelism::Threads(4)).unwrap_err();
        assert_eq!(serial, parallel);
        assert!(serial.to_string().contains("0.01"), "{serial}");
    }

    #[test]
    fn run_single_smoke() {
        let s = sim();
        let j = run_single(&s, presets::DSP, RooflineKernel::dram_resident(1024)).unwrap();
        assert!((j.achieved_flops_per_sec / 1e9 - 3.0).abs() < 0.05);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let s = sim();
        let h = MixHarness::new(&s, presets::CPU, presets::GPU);
        let k = h.kernel_at_intensity(1.0).unwrap();
        assert!(h.run(k, -0.1).is_err());
        assert!(h.run(k, 1.1).is_err());
    }
}
