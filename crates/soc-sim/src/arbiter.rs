//! Max-min fair bandwidth arbitration.
//!
//! When several IPs stream concurrently, their request flows share the
//! interconnect fabrics and the DRAM controller. The simulator allocates
//! bandwidth by *progressive filling*: every unfrozen flow's rate rises at
//! the same pace until either the flow hits its private cap (its port or
//! compute limit) or some shared resource saturates, freezing every flow
//! crossing it. The result is the classic max-min fair allocation, the
//! behaviour a round-robin memory-controller arbiter approximates.
//!
//! Beyond the rates themselves, the arbiter reports *why* each flow
//! stopped rising — [`FlowBound::Cap`] for a private limit,
//! [`FlowBound::Resource`] for a saturated shared resource — and how many
//! filling rounds the allocation took. The telemetry layer turns these
//! tags into per-epoch bottleneck attribution without re-deriving the
//! arbitration logic in the engine.
//!
//! An alternative `proportional` policy (each flow gets capacity in
//! proportion to its demand) is provided for the ablation bench.

/// A flow competing for bandwidth: a private rate cap plus the indices of
/// the shared resources its path crosses.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// The flow's standalone maximum rate (port bandwidth, compute/I, …).
    pub cap: f64,
    /// Indices into the shared-resource capacity slice.
    pub resources: Vec<usize>,
}

/// Allocation policy for shared bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterPolicy {
    /// Max-min fairness via progressive filling (default; models a fair
    /// round-robin arbiter).
    MaxMin,
    /// Proportional share: a saturated resource scales all its flows by
    /// the same factor relative to demand (models a demand-proportional
    /// arbiter; used by the ablation bench).
    Proportional,
}

/// The constraint that pinned one flow's allocated rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowBound {
    /// The flow froze at its private cap (port bandwidth or compute
    /// limit). Zero-demand flows (cap == 0) freeze here immediately.
    Cap,
    /// The flow froze because shared resource `j` (an index into the
    /// capacity slice handed to [`allocate`]) saturated.
    Resource(usize),
}

/// The result of one arbitration round-trip: per-flow rates, the binding
/// constraint that froze each flow, and the number of arbiter iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Allocated rate per flow, in input order. Respects every private
    /// cap and every resource capacity.
    pub rates: Vec<f64>,
    /// The constraint that froze each flow, in input order.
    pub bounds: Vec<FlowBound>,
    /// Number of progressive-filling (or proportional scale-down) rounds
    /// the arbiter ran before converging.
    pub rounds: u32,
}

/// Computes per-flow rates under the given policy.
///
/// `capacities[j]` is the capacity of shared resource `j`. Flows with an
/// empty resource list are limited only by their private cap. Rates are
/// guaranteed to respect every private cap and every resource capacity,
/// and every flow carries the [`FlowBound`] that pinned it.
///
/// # Panics
///
/// Panics in debug builds if a flow references a resource index out of
/// range or a cap/capacity is negative or NaN.
pub fn allocate(flows: &[Flow], capacities: &[f64], policy: ArbiterPolicy) -> Allocation {
    for f in flows {
        debug_assert!(f.cap >= 0.0 && !f.cap.is_nan());
        for &r in &f.resources {
            debug_assert!(r < capacities.len(), "resource index out of range");
        }
    }
    for &c in capacities {
        debug_assert!(c >= 0.0 && !c.is_nan());
    }
    match policy {
        ArbiterPolicy::MaxMin => max_min(flows, capacities),
        ArbiterPolicy::Proportional => proportional(flows, capacities),
    }
}

fn max_min(flows: &[Flow], capacities: &[f64]) -> Allocation {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    // Until proven otherwise, a flow is pinned by its own cap; the freeze
    // pass overwrites this with the saturated resource where applicable.
    let mut bounds = vec![FlowBound::Cap; n];
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut rounds = 0u32;

    // Each round freezes at least one flow or saturates at least one
    // resource, so n + |resources| rounds suffice.
    for _ in 0..(n + capacities.len() + 1) {
        // Unfrozen flows and the per-resource unfrozen user counts.
        let mut users = vec![0usize; capacities.len()];
        let mut any_unfrozen = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any_unfrozen = true;
            for &r in &f.resources {
                users[r] += 1;
            }
        }
        if !any_unfrozen {
            break;
        }
        rounds += 1;
        // The common increment: limited by the tightest resource share and
        // the smallest private headroom.
        let mut alpha = f64::INFINITY;
        for (j, &u) in users.iter().enumerate() {
            if u > 0 {
                alpha = alpha.min(remaining[j] / u as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                alpha = alpha.min(f.cap - rates[i]);
            }
        }
        let alpha = alpha.max(0.0);

        // Raise every unfrozen flow and charge its resources.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rates[i] += alpha;
            for &r in &f.resources {
                remaining[r] -= alpha;
            }
        }
        // Freeze flows at their private cap or crossing a saturated
        // resource. The private cap is checked first, so a flow that hits
        // both in the same round is attributed to its own limit.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let eps_cap = f.cap * 1e-12 + 1e-12;
            if rates[i] >= f.cap - eps_cap {
                rates[i] = f.cap;
                frozen[i] = true;
                bounds[i] = FlowBound::Cap;
                continue;
            }
            for &r in &f.resources {
                let eps_res = capacities[r] * 1e-12 + 1e-12;
                if remaining[r] <= eps_res {
                    frozen[i] = true;
                    bounds[i] = FlowBound::Resource(r);
                    break;
                }
            }
        }
    }
    Allocation {
        rates,
        bounds,
        rounds,
    }
}

fn proportional(flows: &[Flow], capacities: &[f64]) -> Allocation {
    // Start from full demand, then repeatedly scale down the flows of the
    // most-oversubscribed resource until all constraints hold. A flow that
    // is never scaled runs at its demand, i.e. its private cap binds.
    let mut rates: Vec<f64> = flows.iter().map(|f| f.cap).collect();
    let mut bounds = vec![FlowBound::Cap; flows.len()];
    let mut rounds = 0u32;
    for _ in 0..(capacities.len() * 4 + 4) {
        let mut worst: Option<(usize, f64)> = None;
        for (j, &cap) in capacities.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.contains(&j))
                .map(|(_, &r)| r)
                .sum();
            if load > cap * (1.0 + 1e-12) {
                // A zero-capacity resource admits no traffic at all; treat
                // its oversubscription as infinite without dividing by it.
                let over = if cap > 0.0 { load / cap } else { f64::INFINITY };
                if worst.is_none_or(|(_, w)| over > w) {
                    worst = Some((j, over));
                }
            }
        }
        let Some((j, over)) = worst else { break };
        rounds += 1;
        for ((f, r), b) in flows.iter().zip(rates.iter_mut()).zip(bounds.iter_mut()) {
            // Zero-demand flows contribute nothing to the load; leave them
            // pinned at their (vacuous) cap rather than attributing them
            // to a resource they never pressured.
            if f.resources.contains(&j) && *r > 0.0 {
                if over.is_finite() {
                    *r /= over;
                } else {
                    *r = 0.0;
                }
                *b = FlowBound::Resource(j);
            }
        }
    }
    Allocation {
        rates,
        bounds,
        rounds,
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use gables_model::rng::SplitMix64;

    fn random_instance(rng: &mut SplitMix64) -> (Vec<Flow>, Vec<f64>) {
        let n_caps = rng.range_usize(1, 4);
        let caps: Vec<f64> = (0..n_caps).map(|_| rng.range_f64(0.1, 100.0)).collect();
        let n_flows = rng.range_usize(1, 7);
        let flows = (0..n_flows)
            .map(|_| {
                let cap = rng.range_f64(0.1, 100.0);
                let n_res = rng.range_usize(0, 3);
                let mut resources: Vec<usize> =
                    (0..n_res).map(|_| rng.range_usize(0, n_caps - 1)).collect();
                resources.sort_unstable();
                resources.dedup();
                Flow { cap, resources }
            })
            .collect();
        (flows, caps)
    }

    /// Both policies always respect every private cap and every
    /// shared-resource capacity.
    #[test]
    fn allocations_are_feasible() {
        let mut rng = SplitMix64::new(0xFEA5);
        for _ in 0..256 {
            let (flows, caps) = random_instance(&mut rng);
            for policy in [ArbiterPolicy::MaxMin, ArbiterPolicy::Proportional] {
                let alloc = allocate(&flows, &caps, policy);
                assert_eq!(alloc.rates.len(), flows.len());
                assert_eq!(alloc.bounds.len(), flows.len());
                for (f, &r) in flows.iter().zip(&alloc.rates) {
                    assert!(r >= -1e-12);
                    assert!(r <= f.cap * (1.0 + 1e-9) + 1e-9);
                }
                for (j, &cap) in caps.iter().enumerate() {
                    let load: f64 = flows
                        .iter()
                        .zip(&alloc.rates)
                        .filter(|(f, _)| f.resources.contains(&j))
                        .map(|(_, &r)| r)
                        .sum();
                    assert!(
                        load <= cap * (1.0 + 1e-9) + 1e-9,
                        "resource {j}: load {load} > cap {cap}"
                    );
                }
            }
        }
    }

    /// Max-min allocations are Pareto-efficient: every flow is pinned
    /// by its own cap or by a saturated resource on its path.
    #[test]
    fn maxmin_leaves_no_free_headroom() {
        let mut rng = SplitMix64::new(0x9A3E);
        for _ in 0..256 {
            let (flows, caps) = random_instance(&mut rng);
            let alloc = allocate(&flows, &caps, ArbiterPolicy::MaxMin);
            for (i, f) in flows.iter().enumerate() {
                let at_cap = alloc.rates[i] >= f.cap * (1.0 - 1e-6) - 1e-9;
                let on_saturated = f.resources.iter().any(|&j| {
                    let load: f64 = flows
                        .iter()
                        .zip(&alloc.rates)
                        .filter(|(g, _)| g.resources.contains(&j))
                        .map(|(_, &r)| r)
                        .sum();
                    load >= caps[j] * (1.0 - 1e-6) - 1e-9
                });
                assert!(
                    at_cap || on_saturated,
                    "flow {i} has headroom: rate {} cap {}",
                    alloc.rates[i],
                    f.cap
                );
            }
        }
    }

    /// The reported bound is consistent with the allocation: a flow
    /// tagged `Cap` runs at (or within epsilon of) its private cap, and a
    /// flow tagged `Resource(j)` sits on a saturated resource `j`.
    #[test]
    fn maxmin_bounds_match_reality() {
        let mut rng = SplitMix64::new(0xB0D5);
        for _ in 0..256 {
            let (flows, caps) = random_instance(&mut rng);
            let alloc = allocate(&flows, &caps, ArbiterPolicy::MaxMin);
            for (i, f) in flows.iter().enumerate() {
                match alloc.bounds[i] {
                    FlowBound::Cap => {
                        assert!(
                            alloc.rates[i] >= f.cap - (f.cap * 1e-9 + 1e-9),
                            "flow {i} tagged Cap but rate {} < cap {}",
                            alloc.rates[i],
                            f.cap
                        );
                    }
                    FlowBound::Resource(j) => {
                        assert!(f.resources.contains(&j), "flow {i} bound off-path");
                        let load: f64 = flows
                            .iter()
                            .zip(&alloc.rates)
                            .filter(|(g, _)| g.resources.contains(&j))
                            .map(|(_, &r)| r)
                            .sum();
                        assert!(
                            load >= caps[j] * (1.0 - 1e-6) - 1e-9,
                            "flow {i} tagged Resource({j}) but load {load} < cap {}",
                            caps[j]
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(cap: f64, resources: &[usize]) -> Flow {
        Flow {
            cap,
            resources: resources.to_vec(),
        }
    }

    #[test]
    fn uncontended_flows_run_at_cap() {
        let alloc = allocate(
            &[flow(5.0, &[0]), flow(3.0, &[0])],
            &[100.0],
            ArbiterPolicy::MaxMin,
        );
        assert_eq!(alloc.rates, vec![5.0, 3.0]);
        assert_eq!(alloc.bounds, vec![FlowBound::Cap, FlowBound::Cap]);
    }

    #[test]
    fn saturated_resource_splits_evenly() {
        let alloc = allocate(
            &[flow(100.0, &[0]), flow(100.0, &[0])],
            &[10.0],
            ArbiterPolicy::MaxMin,
        );
        assert!((alloc.rates[0] - 5.0).abs() < 1e-9);
        assert!((alloc.rates[1] - 5.0).abs() < 1e-9);
        assert_eq!(
            alloc.bounds,
            vec![FlowBound::Resource(0), FlowBound::Resource(0)]
        );
    }

    #[test]
    fn small_flow_frees_share_for_big_flow() {
        // Max-min: the 2-unit flow takes 2; the remainder goes to the other.
        let alloc = allocate(
            &[flow(2.0, &[0]), flow(100.0, &[0])],
            &[10.0],
            ArbiterPolicy::MaxMin,
        );
        assert!((alloc.rates[0] - 2.0).abs() < 1e-9);
        assert!((alloc.rates[1] - 8.0).abs() < 1e-9);
        assert_eq!(alloc.bounds[0], FlowBound::Cap);
        assert_eq!(alloc.bounds[1], FlowBound::Resource(0));
    }

    #[test]
    fn multi_resource_chain_takes_tightest() {
        // One flow crossing fabric (cap 4) and DRAM (cap 10): fabric binds.
        let alloc = allocate(&[flow(100.0, &[0, 1])], &[4.0, 10.0], ArbiterPolicy::MaxMin);
        assert!((alloc.rates[0] - 4.0).abs() < 1e-9);
        assert_eq!(alloc.bounds[0], FlowBound::Resource(0));
    }

    #[test]
    fn separate_fabrics_shared_dram() {
        // Two flows on private fabrics (caps 8 and 3) both crossing DRAM
        // (cap 9): flow B freezes at 3 on its fabric, flow A takes the
        // remaining 6 of DRAM but is also capped by its fabric at 8 -> 6.
        let alloc = allocate(
            &[flow(100.0, &[0, 2]), flow(100.0, &[1, 2])],
            &[8.0, 3.0, 9.0],
            ArbiterPolicy::MaxMin,
        );
        assert!((alloc.rates[1] - 3.0).abs() < 1e-9);
        assert!((alloc.rates[0] - 6.0).abs() < 1e-9);
        assert_eq!(alloc.bounds[1], FlowBound::Resource(1));
        assert_eq!(alloc.bounds[0], FlowBound::Resource(2));
    }

    #[test]
    fn rates_never_violate_constraints_maxmin() {
        let flows = vec![
            flow(7.0, &[0, 1]),
            flow(5.0, &[1]),
            flow(9.0, &[0, 2]),
            flow(2.0, &[]),
        ];
        let caps = [6.0, 8.0, 4.0];
        let alloc = allocate(&flows, &caps, ArbiterPolicy::MaxMin);
        for (f, &r) in flows.iter().zip(&alloc.rates) {
            assert!(r <= f.cap + 1e-9);
            assert!(r >= 0.0);
        }
        for (j, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&alloc.rates)
                .filter(|(f, _)| f.resources.contains(&j))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap + 1e-9, "resource {j} over capacity");
        }
        // Private-cap-only flow gets its cap.
        assert!((alloc.rates[3] - 2.0).abs() < 1e-12);
        assert_eq!(alloc.bounds[3], FlowBound::Cap);
    }

    #[test]
    fn proportional_scales_by_demand() {
        // Demands 9 and 3 on a 6-capacity resource: proportional keeps the
        // 3:1 ratio (4.5 and 1.5) where max-min would give 3 and 3.
        let flows = vec![flow(9.0, &[0]), flow(3.0, &[0])];
        let alloc = allocate(&flows, &[6.0], ArbiterPolicy::Proportional);
        assert!((alloc.rates[0] - 4.5).abs() < 1e-9);
        assert!((alloc.rates[1] - 1.5).abs() < 1e-9);
        assert_eq!(
            alloc.bounds,
            vec![FlowBound::Resource(0), FlowBound::Resource(0)]
        );

        let maxmin = allocate(&flows, &[6.0], ArbiterPolicy::MaxMin);
        assert!((maxmin.rates[0] - 3.0).abs() < 1e-9);
        assert!((maxmin.rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_respects_all_constraints() {
        let flows = vec![flow(7.0, &[0, 1]), flow(5.0, &[1]), flow(9.0, &[0])];
        let caps = [6.0, 8.0];
        let alloc = allocate(&flows, &caps, ArbiterPolicy::Proportional);
        for (j, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&alloc.rates)
                .filter(|(f, _)| f.resources.contains(&j))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap * (1.0 + 1e-9), "resource {j} over capacity");
        }
    }

    #[test]
    fn empty_inputs() {
        let alloc = allocate(&[], &[1.0], ArbiterPolicy::MaxMin);
        assert!(alloc.rates.is_empty());
        assert_eq!(alloc.rounds, 0);
        let alloc = allocate(&[flow(3.0, &[])], &[], ArbiterPolicy::MaxMin);
        assert_eq!(alloc.rates, vec![3.0]);
    }

    #[test]
    fn zero_capacity_resource_starves_its_flows() {
        for policy in [ArbiterPolicy::MaxMin, ArbiterPolicy::Proportional] {
            let alloc = allocate(&[flow(5.0, &[0]), flow(5.0, &[])], &[0.0], policy);
            assert!(alloc.rates[0].abs() < 1e-9, "{policy:?}");
            assert!((alloc.rates[1] - 5.0).abs() < 1e-9, "{policy:?}");
            assert_eq!(alloc.bounds[0], FlowBound::Resource(0));
            assert_eq!(alloc.bounds[1], FlowBound::Cap);
        }
    }

    #[test]
    fn zero_demand_flow_is_tagged_cap_without_panic() {
        // A flow with zero demand must not divide-by-zero anywhere and is
        // attributed to its own (vacuous) cap, never a shared resource.
        for policy in [ArbiterPolicy::MaxMin, ArbiterPolicy::Proportional] {
            let alloc = allocate(&[flow(0.0, &[0]), flow(100.0, &[0])], &[10.0], policy);
            assert_eq!(alloc.rates[0], 0.0, "{policy:?}");
            assert!(alloc.rates[1] <= 10.0 + 1e-9, "{policy:?}");
            assert!(alloc.rates.iter().all(|r| r.is_finite()), "{policy:?}");
            assert_eq!(alloc.bounds[0], FlowBound::Cap, "{policy:?}");
        }
    }

    #[test]
    fn rounds_are_reported() {
        // Two freeze generations: the small flow caps out first, then the
        // big one saturates the resource.
        let alloc = allocate(
            &[flow(2.0, &[0]), flow(100.0, &[0])],
            &[10.0],
            ArbiterPolicy::MaxMin,
        );
        assert!(alloc.rounds >= 2);
        // Uncontended single flow converges in one round.
        let alloc = allocate(&[flow(5.0, &[0])], &[100.0], ArbiterPolicy::MaxMin);
        assert_eq!(alloc.rounds, 1);
    }
}
