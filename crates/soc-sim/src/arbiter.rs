//! Max-min fair bandwidth arbitration.
//!
//! When several IPs stream concurrently, their request flows share the
//! interconnect fabrics and the DRAM controller. The simulator allocates
//! bandwidth by *progressive filling*: every unfrozen flow's rate rises at
//! the same pace until either the flow hits its private cap (its port or
//! compute limit) or some shared resource saturates, freezing every flow
//! crossing it. The result is the classic max-min fair allocation, the
//! behaviour a round-robin memory-controller arbiter approximates.
//!
//! An alternative `proportional` policy (each flow gets capacity in
//! proportion to its demand) is provided for the ablation bench.

/// A flow competing for bandwidth: a private rate cap plus the indices of
/// the shared resources its path crosses.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// The flow's standalone maximum rate (port bandwidth, compute/I, …).
    pub cap: f64,
    /// Indices into the shared-resource capacity slice.
    pub resources: Vec<usize>,
}

/// Allocation policy for shared bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterPolicy {
    /// Max-min fairness via progressive filling (default; models a fair
    /// round-robin arbiter).
    MaxMin,
    /// Proportional share: a saturated resource scales all its flows by
    /// the same factor relative to demand (models a demand-proportional
    /// arbiter; used by the ablation bench).
    Proportional,
}

/// Computes per-flow rates under the given policy.
///
/// `capacities[j]` is the capacity of shared resource `j`. Flows with an
/// empty resource list are limited only by their private cap. Rates are
/// guaranteed to respect every private cap and every resource capacity.
///
/// # Panics
///
/// Panics in debug builds if a flow references a resource index out of
/// range or a cap/capacity is negative or NaN.
pub fn allocate(flows: &[Flow], capacities: &[f64], policy: ArbiterPolicy) -> Vec<f64> {
    for f in flows {
        debug_assert!(f.cap >= 0.0 && !f.cap.is_nan());
        for &r in &f.resources {
            debug_assert!(r < capacities.len(), "resource index out of range");
        }
    }
    for &c in capacities {
        debug_assert!(c >= 0.0 && !c.is_nan());
    }
    match policy {
        ArbiterPolicy::MaxMin => max_min(flows, capacities),
        ArbiterPolicy::Proportional => proportional(flows, capacities),
    }
}

fn max_min(flows: &[Flow], capacities: &[f64]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut remaining: Vec<f64> = capacities.to_vec();

    // Each round freezes at least one flow or saturates at least one
    // resource, so n + |resources| rounds suffice.
    for _ in 0..(n + capacities.len() + 1) {
        // Unfrozen flows and the per-resource unfrozen user counts.
        let mut users = vec![0usize; capacities.len()];
        let mut any_unfrozen = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any_unfrozen = true;
            for &r in &f.resources {
                users[r] += 1;
            }
        }
        if !any_unfrozen {
            break;
        }
        // The common increment: limited by the tightest resource share and
        // the smallest private headroom.
        let mut alpha = f64::INFINITY;
        for (j, &u) in users.iter().enumerate() {
            if u > 0 {
                alpha = alpha.min(remaining[j] / u as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                alpha = alpha.min(f.cap - rates[i]);
            }
        }
        let alpha = alpha.max(0.0);

        // Raise every unfrozen flow and charge its resources.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rates[i] += alpha;
            for &r in &f.resources {
                remaining[r] -= alpha;
            }
        }
        // Freeze flows at their private cap or crossing a saturated
        // resource.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let eps_cap = f.cap * 1e-12 + 1e-12;
            if rates[i] >= f.cap - eps_cap {
                rates[i] = f.cap;
                frozen[i] = true;
                continue;
            }
            for &r in &f.resources {
                let eps_res = capacities[r] * 1e-12 + 1e-12;
                if remaining[r] <= eps_res {
                    frozen[i] = true;
                    break;
                }
            }
        }
    }
    rates
}

fn proportional(flows: &[Flow], capacities: &[f64]) -> Vec<f64> {
    // Start from full demand, then repeatedly scale down the flows of the
    // most-oversubscribed resource until all constraints hold.
    let mut rates: Vec<f64> = flows.iter().map(|f| f.cap).collect();
    for _ in 0..(capacities.len() * 4 + 4) {
        let mut worst: Option<(usize, f64)> = None;
        for (j, &cap) in capacities.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.contains(&j))
                .map(|(_, &r)| r)
                .sum();
            if load > cap * (1.0 + 1e-12) {
                let over = load / cap;
                if worst.is_none_or(|(_, w)| over > w) {
                    worst = Some((j, over));
                }
            }
        }
        let Some((j, over)) = worst else { break };
        for (f, r) in flows.iter().zip(rates.iter_mut()) {
            if f.resources.contains(&j) {
                *r /= over;
            }
        }
    }
    rates
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    fn instance() -> impl Strategy<Value = (Vec<Flow>, Vec<f64>)> {
        let caps = proptest::collection::vec(0.1f64..100.0, 1..5);
        let flows = proptest::collection::vec(
            (0.1f64..100.0, proptest::collection::vec(0usize..5, 0..4)),
            1..8,
        );
        (caps, flows).prop_map(|(caps, flows)| {
            let n = caps.len();
            let flows = flows
                .into_iter()
                .map(|(cap, res)| {
                    let mut resources: Vec<usize> =
                        res.into_iter().map(|r| r % n).collect();
                    resources.sort_unstable();
                    resources.dedup();
                    Flow { cap, resources }
                })
                .collect();
            (flows, caps)
        })
    }

    proptest! {
        /// Both policies always respect every private cap and every
        /// shared-resource capacity.
        #[test]
        fn allocations_are_feasible((flows, caps) in instance()) {
            for policy in [ArbiterPolicy::MaxMin, ArbiterPolicy::Proportional] {
                let rates = allocate(&flows, &caps, policy);
                prop_assert_eq!(rates.len(), flows.len());
                for (f, &r) in flows.iter().zip(&rates) {
                    prop_assert!(r >= -1e-12);
                    prop_assert!(r <= f.cap * (1.0 + 1e-9) + 1e-9);
                }
                for (j, &cap) in caps.iter().enumerate() {
                    let load: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(f, _)| f.resources.contains(&j))
                        .map(|(_, &r)| r)
                        .sum();
                    prop_assert!(load <= cap * (1.0 + 1e-9) + 1e-9,
                        "resource {j}: load {load} > cap {cap}");
                }
            }
        }

        /// Max-min allocations are Pareto-efficient: every flow is pinned
        /// by its own cap or by a saturated resource on its path.
        #[test]
        fn maxmin_leaves_no_free_headroom((flows, caps) in instance()) {
            let rates = allocate(&flows, &caps, ArbiterPolicy::MaxMin);
            for (i, f) in flows.iter().enumerate() {
                let at_cap = rates[i] >= f.cap * (1.0 - 1e-6) - 1e-9;
                let on_saturated = f.resources.iter().any(|&j| {
                    let load: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(g, _)| g.resources.contains(&j))
                        .map(|(_, &r)| r)
                        .sum();
                    load >= caps[j] * (1.0 - 1e-6) - 1e-9
                });
                prop_assert!(at_cap || on_saturated,
                    "flow {i} has headroom: rate {} cap {}", rates[i], f.cap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(cap: f64, resources: &[usize]) -> Flow {
        Flow {
            cap,
            resources: resources.to_vec(),
        }
    }

    #[test]
    fn uncontended_flows_run_at_cap() {
        let rates = allocate(
            &[flow(5.0, &[0]), flow(3.0, &[0])],
            &[100.0],
            ArbiterPolicy::MaxMin,
        );
        assert_eq!(rates, vec![5.0, 3.0]);
    }

    #[test]
    fn saturated_resource_splits_evenly() {
        let rates = allocate(
            &[flow(100.0, &[0]), flow(100.0, &[0])],
            &[10.0],
            ArbiterPolicy::MaxMin,
        );
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn small_flow_frees_share_for_big_flow() {
        // Max-min: the 2-unit flow takes 2; the remainder goes to the other.
        let rates = allocate(
            &[flow(2.0, &[0]), flow(100.0, &[0])],
            &[10.0],
            ArbiterPolicy::MaxMin,
        );
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn multi_resource_chain_takes_tightest() {
        // One flow crossing fabric (cap 4) and DRAM (cap 10): fabric binds.
        let rates = allocate(&[flow(100.0, &[0, 1])], &[4.0, 10.0], ArbiterPolicy::MaxMin);
        assert!((rates[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn separate_fabrics_shared_dram() {
        // Two flows on private fabrics (caps 8 and 3) both crossing DRAM
        // (cap 9): flow B freezes at 3 on its fabric, flow A takes the
        // remaining 6 of DRAM but is also capped by its fabric at 8 -> 6.
        let rates = allocate(
            &[flow(100.0, &[0, 2]), flow(100.0, &[1, 2])],
            &[8.0, 3.0, 9.0],
            ArbiterPolicy::MaxMin,
        );
        assert!((rates[1] - 3.0).abs() < 1e-9);
        assert!((rates[0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn rates_never_violate_constraints_maxmin() {
        let flows = vec![
            flow(7.0, &[0, 1]),
            flow(5.0, &[1]),
            flow(9.0, &[0, 2]),
            flow(2.0, &[]),
        ];
        let caps = [6.0, 8.0, 4.0];
        let rates = allocate(&flows, &caps, ArbiterPolicy::MaxMin);
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.cap + 1e-9);
            assert!(r >= 0.0);
        }
        for (j, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.contains(&j))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap + 1e-9, "resource {j} over capacity");
        }
        // Private-cap-only flow gets its cap.
        assert!((rates[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_scales_by_demand() {
        // Demands 9 and 3 on a 6-capacity resource: proportional keeps the
        // 3:1 ratio (4.5 and 1.5) where max-min would give 3 and 3.
        let flows = vec![flow(9.0, &[0]), flow(3.0, &[0])];
        let rates = allocate(&flows, &[6.0], ArbiterPolicy::Proportional);
        assert!((rates[0] - 4.5).abs() < 1e-9);
        assert!((rates[1] - 1.5).abs() < 1e-9);

        let maxmin = allocate(&flows, &[6.0], ArbiterPolicy::MaxMin);
        assert!((maxmin[0] - 3.0).abs() < 1e-9);
        assert!((maxmin[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_respects_all_constraints() {
        let flows = vec![flow(7.0, &[0, 1]), flow(5.0, &[1]), flow(9.0, &[0])];
        let caps = [6.0, 8.0];
        let rates = allocate(&flows, &caps, ArbiterPolicy::Proportional);
        for (j, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.contains(&j))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap * (1.0 + 1e-9), "resource {j} over capacity");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(allocate(&[], &[1.0], ArbiterPolicy::MaxMin).is_empty());
        let rates = allocate(&[flow(3.0, &[])], &[], ArbiterPolicy::MaxMin);
        assert_eq!(rates, vec![3.0]);
    }

    #[test]
    fn zero_capacity_resource_starves_its_flows() {
        let rates = allocate(
            &[flow(5.0, &[0]), flow(5.0, &[])],
            &[0.0],
            ArbiterPolicy::MaxMin,
        );
        assert!(rates[0].abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }
}
