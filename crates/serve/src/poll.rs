//! A minimal `epoll` readiness facade built on raw Linux syscalls —
//! no `libc`, just `std::os::fd` ownership types and inline-assembly
//! syscall stubs for x86_64 and aarch64. Level-triggered only: the
//! event loop re-arms nothing and simply reads/writes until
//! `WouldBlock`, which keeps the state machine in `server.rs` honest
//! (a missed edge cannot wedge a connection).
//!
//! On non-Linux (or unsupported-architecture) builds every call
//! returns [`std::io::ErrorKind::Unsupported`]; the blocking fallbacks
//! in the CLI remain usable there, and the event loop reports a clean
//! error instead of failing to compile.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// What the caller wants to be told about a file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Readable-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Neither direction: stay registered but silent (hangup/error
    /// events are still delivered — the kernel never masks those).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    fn bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.read {
            bits |= sys::EPOLLIN;
        }
        if self.write {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness event, translated out of the raw `epoll_event`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (or EOF is pending — a read will tell).
    pub readable: bool,
    /// The send buffer has room.
    pub writable: bool,
    /// The peer closed or the fd errored; the next read/write
    /// surfaces the detail.
    pub hangup: bool,
}

/// An owned `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates the kernel error; `Unsupported` on non-Linux builds.
    pub fn new() -> io::Result<Self> {
        let fd = sys::epoll_create1(sys::EPOLL_CLOEXEC)?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        Ok(Self {
            epfd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// Registers `fd` with a caller-chosen `token` (returned verbatim in
    /// events) and an initial interest set.
    ///
    /// # Errors
    ///
    /// Propagates `EPOLL_CTL_ADD` failures (e.g. already registered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest set for an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `EPOLL_CTL_MOD` failures (e.g. not registered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Harmless if the fd is about to be closed anyway
    /// (closing an fd removes it from every epoll set), but explicit
    /// removal keeps the kernel-side set in step with the slab.
    ///
    /// # Errors
    ///
    /// Propagates `EPOLL_CTL_DEL` failures.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev)?;
        Ok(())
    }

    /// Blocks for up to `timeout_ms` (−1 = forever) and appends ready
    /// events to `out` (cleared first). Returns the event count.
    /// `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` kernel failures.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            match sys::epoll_pwait(self.epfd.as_raw_fd(), &mut raw, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in raw.iter().take(n) {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Raw syscall stubs. Numbers from the kernel's per-arch tables;
    //! `epoll_pwait` is used on both architectures because aarch64
    //! never had plain `epoll_wait`.
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    // x86_64 packs epoll_event to 12 bytes; aarch64 keeps natural
    // alignment (16 bytes). Getting this wrong corrupts every token.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub fn epoll_create1(flags: i32) -> io::Result<usize> {
        // SAFETY: no pointers involved; a plain fd-returning syscall.
        check(unsafe { syscall6(nr::EPOLL_CREATE1, flags as usize, 0, 0, 0, 0, 0) })
    }

    pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, ev: &mut EpollEvent) -> io::Result<usize> {
        // SAFETY: `ev` outlives the call; the kernel reads it only
        // during the syscall.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                ev as *mut EpollEvent as usize,
                0,
                0,
            )
        })
    }

    pub fn epoll_pwait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // SAFETY: the buffer pointer/len pair describes owned memory
        // valid for the duration of the call; sigmask is null (no
        // signal-mask swap), for which the size argument is ignored.
        check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8,
            )
        })
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Stubs for unsupported targets: everything reports `Unsupported`.
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on linux x86_64/aarch64 builds",
        )
    }

    pub fn epoll_create1(_flags: i32) -> io::Result<usize> {
        Err(unsupported())
    }

    pub fn epoll_ctl(
        _epfd: RawFd,
        _op: i32,
        _fd: RawFd,
        _ev: &mut EpollEvent,
    ) -> io::Result<usize> {
        Err(unsupported())
    }

    pub fn epoll_pwait(
        _epfd: RawFd,
        _events: &mut [EpollEvent],
        _timeout_ms: i32,
    ) -> io::Result<usize> {
        Err(unsupported())
    }
}

#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wait_times_out_on_silence() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, 10).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "no events yet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1, "connect must wake the poller");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn interest_modification_gates_events() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::NONE).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(
            events.iter().all(|e| !e.readable),
            "NONE interest must suppress readable events, got {events:?}"
        );
        poller
            .modify(server.as_raw_fd(), 1, Interest::BOTH)
            .unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        let ev = events.iter().find(|e| e.token == 1).expect("event");
        assert!(ev.readable, "pending byte must surface after modify");
        assert!(ev.writable, "fresh socket has send-buffer room");
        poller.delete(server.as_raw_fd()).unwrap();
    }
}
