//! A sharded LRU response cache.
//!
//! The Gables analytical core is microsecond-cheap, but a serving tier
//! still wins by caching: repeated evaluations of the same SoC/workload
//! spec (the common case for a dashboard polling a design) skip spec
//! parsing, model evaluation, and response serialization entirely.
//! Keys are expected to be *canonicalized* upstream (comments and
//! insignificant whitespace stripped — see `gables-cli`'s
//! `spec::canonicalize`), so cosmetic edits to a spec still hit.
//!
//! Sharding bounds lock contention: a key hashes to one of `N` shards,
//! each an independently locked LRU map, so concurrent workers only
//! contend when they touch the same shard. Within a shard, eviction is
//! least-recently-used by access stamp; the scan is `O(capacity)` but
//! capacities are small (hundreds), and eviction only runs on insertion
//! into a full shard.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

struct Entry {
    value: String,
    last_used: u64,
}

struct Shard {
    map: HashMap<String, Entry>,
    clock: u64,
}

/// A thread-safe string-to-string cache with per-shard LRU eviction.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("len", &self.len())
            .finish()
    }
}

impl ShardedCache {
    /// Creates a cache of `shards` independent LRU maps holding at most
    /// `capacity_per_shard` entries each. Zeroes are clamped to 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Fetches a value, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        let entry = shard.map.get_mut(key)?;
        entry.last_used = clock;
        Some(entry.value.clone())
    }

    /// Inserts (or refreshes) a value, evicting the shard's
    /// least-recently-used entry if the shard is full.
    pub fn insert(&self, key: String, value: String) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.capacity_per_shard {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ShardedCache::new(4, 8);
        assert!(cache.is_empty());
        assert_eq!(cache.get("k"), None);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k").as_deref(), Some("v"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_refreshes_existing_keys() {
        let cache = ShardedCache::new(1, 4);
        cache.insert("k".into(), "v1".into());
        cache.insert("k".into(), "v2".into());
        assert_eq!(cache.get("k").as_deref(), Some("v2"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn full_shard_evicts_least_recently_used() {
        let cache = ShardedCache::new(1, 2);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), "3".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some(), "recently used entry survives");
        assert!(cache.get("b").is_none(), "LRU entry was evicted");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = ShardedCache::new(8, 4);
        for i in 0..32 {
            cache.insert(format!("key-{i}"), i.to_string());
        }
        // With 8 shards × 4 capacity, at most 32 fit; sharding means not
        // everything lands in one shard (which would cap len at 4).
        assert!(cache.len() > 4, "keys should hash to multiple shards");
        // And every retained key still round-trips.
        let mut hits = 0;
        for i in 0..32 {
            if let Some(v) = cache.get(&format!("key-{i}")) {
                assert_eq!(v, i.to_string());
                hits += 1;
            }
        }
        assert_eq!(hits, cache.len());
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(4, 64));
        let mut handles = Vec::new();
        for t in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = format!("k{}", (t * 31 + i) % 40);
                    cache.insert(key.clone(), format!("{t}:{i}"));
                    let _ = cache.get(&key);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 40);
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let cache = ShardedCache::new(0, 0);
        cache.insert("a".into(), "1".into());
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        cache.insert("b".into(), "2".into());
        // Capacity clamped to 1: inserting "b" evicted "a".
        assert_eq!(cache.len(), 1);
    }
}
