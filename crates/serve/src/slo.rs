//! The serving tier's SLO engine: per-route streaming quantile
//! sketches, windowed error rates, SLO specs with error-budget burn
//! rates, and the mergeable snapshot the `/v1/slo` endpoint speaks.
//!
//! Every handled request lands in a [`SloRegistry`]: a cumulative
//! [`QuantileSketch`] plus a rolling [`WindowRing`] per route, guarded
//! by the same label-cardinality fence as the metrics route map. A
//! [`SloSnapshot`] carries the sketches themselves (integer state, not
//! derived quantiles), so a replica router can merge shard snapshots
//! *exactly* — the merged fleet sketch is bit-identical to one sketch
//! fed the union stream — and only then derive quantiles and burn
//! rates at the fleet level.
//!
//! Burn rate follows the standard error-budget convention: an SLO
//! `err < 0.1%` grants a budget of 0.1% failed requests; a window
//! burning at rate 1.0 consumes exactly its budget, and rate 14.4 on
//! the 1-hour window is the classic "page now" threshold. Latency
//! objectives (`p99 < 2ms`) budget the violating fraction: 1% of
//! requests may exceed the threshold, and the burn rate is the
//! observed violating fraction over that 1%. Only 5xx statuses burn
//! the error budget — 4xx are the client's fault.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use gables_model::json::Json;
use gables_model::sketch::{QuantileSketch, WindowRing, WindowStats, WINDOWS_SECS};

use crate::metrics::{escape_label, MAX_ROUTE_LABELS};

/// The quantiles every SLO surface reports, as (label, q) pairs.
pub const REPORT_QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)];

/// Relative accuracy of all serving-tier sketches: 1%.
pub const SLO_ALPHA_PPM: u32 = 10_000;

/// Wall-clock seconds since the Unix epoch, the time base of every
/// [`WindowRing`] in the registry.
pub fn unix_now_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Wall-clock microseconds since the Unix epoch — the timestamp
/// stamped onto flight records so a fleet view can interleave them.
pub fn unix_now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Per-route tracking state: lifetime sketch plus the windowed ring.
#[derive(Debug)]
struct RouteTrack {
    cumulative: QuantileSketch,
    ring: WindowRing,
    errors: u64,
    total: u64,
}

impl RouteTrack {
    fn new() -> Self {
        RouteTrack {
            cumulative: QuantileSketch::new(SLO_ALPHA_PPM),
            ring: WindowRing::new(SLO_ALPHA_PPM),
            errors: 0,
            total: 0,
        }
    }
}

/// Streaming per-route SLO state, updated once per handled request.
///
/// Shares the metrics module's route-cardinality fence: beyond
/// [`MAX_ROUTE_LABELS`] distinct routes, new labels fold into
/// `"(other)"` so hostile paths cannot grow the map unboundedly.
#[derive(Debug, Default)]
pub struct SloRegistry {
    routes: Mutex<BTreeMap<String, RouteTrack>>,
}

impl SloRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request at an explicit wall time (seconds
    /// since the Unix epoch). Only 5xx statuses count as errors.
    pub fn record_at(&self, now_secs: u64, route: &str, status: u16, latency_us: u64) {
        let is_error = status >= 500;
        let mut routes = self.routes.lock().expect("slo route map poisoned");
        let track = if routes.len() >= MAX_ROUTE_LABELS && !routes.contains_key(route) {
            routes
                .entry("(other)".to_string())
                .or_insert_with(RouteTrack::new)
        } else {
            routes
                .entry(route.to_string())
                .or_insert_with(RouteTrack::new)
        };
        track.cumulative.record(latency_us);
        track.ring.record(now_secs, latency_us, is_error);
        track.total += 1;
        if is_error {
            track.errors += 1;
        }
    }

    /// Records one handled request at the current wall time.
    pub fn record(&self, route: &str, status: u16, latency_us: u64) {
        self.record_at(unix_now_secs(), route, status, latency_us);
    }

    /// A mergeable point-in-time snapshot: cumulative sketch plus the
    /// trailing 1m/5m/1h windows, per route, evaluated at `now_secs`.
    pub fn snapshot_at(&self, now_secs: u64) -> SloSnapshot {
        let routes = self.routes.lock().expect("slo route map poisoned");
        SloSnapshot {
            alpha_ppm: SLO_ALPHA_PPM,
            routes: routes
                .iter()
                .map(|(route, track)| {
                    (
                        route.clone(),
                        RouteSlo {
                            cumulative: track.cumulative.clone(),
                            errors: track.errors,
                            total: track.total,
                            windows: WINDOWS_SECS
                                .iter()
                                .map(|&w| track.ring.window(now_secs, w))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// A snapshot at the current wall time.
    pub fn snapshot(&self) -> SloSnapshot {
        self.snapshot_at(unix_now_secs())
    }
}

/// One route's share of a [`SloSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSlo {
    /// Lifetime latency sketch for the route.
    pub cumulative: QuantileSketch,
    /// Lifetime 5xx count.
    pub errors: u64,
    /// Lifetime handled count.
    pub total: u64,
    /// Trailing windows, one per [`WINDOWS_SECS`] entry, in order.
    pub windows: Vec<WindowStats>,
}

/// A point-in-time, *mergeable* copy of the registry: sketches travel
/// as integer state, so shard snapshots merge exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSnapshot {
    /// Relative accuracy shared by every embedded sketch.
    pub alpha_ppm: u32,
    /// Per-route state, sorted by route label.
    pub routes: Vec<(String, RouteSlo)>,
}

impl SloSnapshot {
    /// An empty snapshot (what a shard with no traffic reports).
    pub fn empty() -> Self {
        SloSnapshot {
            alpha_ppm: SLO_ALPHA_PPM,
            routes: Vec::new(),
        }
    }

    /// Merges another snapshot into this one: sketches bucket-wise
    /// (exact), counters additively, windows paired positionally
    /// (both sides carry [`WINDOWS_SECS`] in order). Returns `false`
    /// on accuracy mismatch, leaving `self` unchanged.
    #[must_use = "a false return means the snapshots were incompatible"]
    pub fn merge(&mut self, other: &SloSnapshot) -> bool {
        if self.alpha_ppm != other.alpha_ppm {
            return false;
        }
        let mut routes: BTreeMap<String, RouteSlo> = self.routes.drain(..).collect();
        for (route, theirs) in &other.routes {
            match routes.get_mut(route) {
                None => {
                    routes.insert(route.clone(), theirs.clone());
                }
                Some(ours) => {
                    if !ours.cumulative.merge(&theirs.cumulative) {
                        return false;
                    }
                    ours.errors += theirs.errors;
                    ours.total += theirs.total;
                    for (mine, their) in ours.windows.iter_mut().zip(&theirs.windows) {
                        if !mine.sketch.merge(&their.sketch) {
                            return false;
                        }
                        mine.errors += their.errors;
                        mine.total += their.total;
                    }
                }
            }
        }
        self.routes = routes.into_iter().collect();
        true
    }

    /// Serializes the mergeable core: route sketches and counters,
    /// every field integral so the round trip is exact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"alpha_ppm\":{},\"routes\":{{", self.alpha_ppm);
        for (i, (route, slo)) in self.routes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"total\":{},\"errors\":{},\"cumulative\":{},\"windows\":[",
                Json::str(route.as_str()),
                slo.total,
                slo.errors,
                slo.cumulative.to_json()
            );
            for (j, window) in slo.windows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"secs\":{},\"total\":{},\"errors\":{},\"sketch\":{}}}",
                    window.window_secs,
                    window.total,
                    window.errors,
                    window.sketch.to_json()
                );
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Decodes a snapshot out of [`to_json`](Self::to_json) output or
    /// any larger document embedding the same `alpha_ppm`/`routes`
    /// shape (the `/v1/slo` body qualifies — derived fields are
    /// ignored). `None` on any shape violation.
    pub fn from_json(doc: &Json) -> Option<SloSnapshot> {
        let alpha_ppm = doc.get("alpha_ppm")?.as_f64()? as u32;
        let mut routes = Vec::new();
        for (route, entry) in doc.get("routes")?.as_object()? {
            let int = |key: &str| -> Option<u64> {
                let x = entry.get(key)?.as_f64()?;
                (x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
            };
            let mut windows = Vec::new();
            for w in entry.get("windows")?.as_array()? {
                windows.push(WindowStats {
                    window_secs: w.get("secs")?.as_f64()? as u64,
                    total: w.get("total")?.as_f64()? as u64,
                    errors: w.get("errors")?.as_f64()? as u64,
                    sketch: QuantileSketch::from_json(w.get("sketch")?)?,
                });
            }
            routes.push((
                route.clone(),
                RouteSlo {
                    cumulative: QuantileSketch::from_json(entry.get("cumulative")?)?,
                    errors: int("errors")?,
                    total: int("total")?,
                    windows,
                },
            ));
        }
        routes.sort_by(|a, b| a.0.cmp(&b.0));
        Some(SloSnapshot { alpha_ppm, routes })
    }

    /// Parses a snapshot from JSON text.
    pub fn parse(text: &str) -> Option<SloSnapshot> {
        SloSnapshot::from_json(&Json::parse(text).ok()?)
    }
}

/// One objective inside an SLO spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Objective {
    /// `pQ < threshold`: at most `100 − Q`% of requests may exceed
    /// the threshold. `quantile_pct` ∈ {50, 90, 99}.
    Latency {
        /// The quantile, as a percentage (50, 90, or 99).
        quantile_pct: u8,
        /// The latency threshold in microseconds.
        threshold_us: u64,
    },
    /// `err < budget`: at most `budget_ppm` parts per million of
    /// requests may fail with a 5xx.
    ErrorRate {
        /// The error budget in parts per million (0.1% = 1000 ppm).
        budget_ppm: u64,
    },
}

impl Objective {
    /// The canonical clause text (`p99<2ms`, `err<0.1%`).
    pub fn label(&self) -> String {
        match self {
            Objective::Latency {
                quantile_pct,
                threshold_us,
            } => format!("p{quantile_pct}<{}", format_us(*threshold_us)),
            Objective::ErrorRate { budget_ppm } => {
                format!("err<{}%", trim_decimal(*budget_ppm as f64 / 10_000.0))
            }
        }
    }

    /// The violating fraction's budget in `[0, 1]`: `1 − Q/100` for a
    /// latency objective, `budget_ppm / 1e6` for an error objective.
    pub fn budget(&self) -> f64 {
        match self {
            Objective::Latency { quantile_pct, .. } => 1.0 - f64::from(*quantile_pct) / 100.0,
            Objective::ErrorRate { budget_ppm } => *budget_ppm as f64 / 1e6,
        }
    }

    /// The observed violating fraction in a window.
    pub fn violation_rate(&self, window: &WindowStats) -> f64 {
        if window.total == 0 {
            return 0.0;
        }
        match self {
            Objective::Latency { threshold_us, .. } => {
                window.sketch.count_above(*threshold_us) as f64 / window.total as f64
            }
            Objective::ErrorRate { .. } => window.error_rate(),
        }
    }

    /// Error-budget burn rate in a window: violating fraction over
    /// budget. 1.0 burns exactly the budget; > 1.0 is out of SLO.
    pub fn burn_rate(&self, window: &WindowStats) -> f64 {
        let budget = self.budget();
        if budget <= 0.0 {
            return 0.0;
        }
        self.violation_rate(window) / budget
    }
}

/// One parsed `--slo` definition: a route and its objectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSpec {
    /// The route label the objectives apply to (e.g. `/v1/eval`).
    pub route: String,
    /// The objectives, in spec order.
    pub objectives: Vec<Objective>,
}

impl SloSpec {
    /// Parses `route=/v1/eval p99<2ms err<0.1%`: whitespace-separated
    /// clauses, exactly one `route=`, at least one objective. Latency
    /// thresholds take `us`/`ms`/`s` suffixes; error budgets are
    /// percentages.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut route = None;
        let mut objectives = Vec::new();
        for clause in text.split_whitespace() {
            if let Some(path) = clause.strip_prefix("route=") {
                if route.replace(path.to_string()).is_some() {
                    return Err(format!("duplicate route= clause in SLO '{text}'"));
                }
            } else if let Some(budget) = clause.strip_prefix("err<") {
                let pct = budget
                    .strip_suffix('%')
                    .ok_or_else(|| format!("error budget '{clause}' must end in %"))?;
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("unparsable error budget '{clause}'"))?;
                if !(0.0..=100.0).contains(&pct) || pct <= 0.0 {
                    return Err(format!("error budget '{clause}' must be in (0, 100]%"));
                }
                objectives.push(Objective::ErrorRate {
                    budget_ppm: (pct * 10_000.0).round() as u64,
                });
            } else if let Some(rest) = clause.strip_prefix('p') {
                let (quantile, threshold) = rest
                    .split_once('<')
                    .ok_or_else(|| format!("objective '{clause}' must be pQ<THRESHOLD"))?;
                let quantile_pct: u8 = quantile
                    .parse()
                    .map_err(|_| format!("unparsable quantile in '{clause}'"))?;
                if ![50, 90, 99].contains(&quantile_pct) {
                    return Err(format!(
                        "quantile p{quantile_pct} unsupported; use p50, p90, or p99"
                    ));
                }
                objectives.push(Objective::Latency {
                    quantile_pct,
                    threshold_us: parse_duration_us(threshold)
                        .ok_or_else(|| format!("unparsable threshold in '{clause}'"))?,
                });
            } else {
                return Err(format!("unrecognized SLO clause '{clause}'"));
            }
        }
        let route = route.ok_or_else(|| format!("SLO '{text}' is missing route="))?;
        if objectives.is_empty() {
            return Err(format!("SLO '{text}' has no objectives"));
        }
        Ok(SloSpec { route, objectives })
    }
}

/// Parses `2ms`, `1500us`, `0.5s` into whole microseconds.
fn parse_duration_us(text: &str) -> Option<u64> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("us") {
        (d, 1.0)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000.0)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000.0)
    } else {
        return None;
    };
    let value: f64 = digits.parse().ok()?;
    (value > 0.0 && value.is_finite()).then(|| (value * scale).round() as u64)
}

/// Formats whole microseconds back into the tersest of `us`/`ms`/`s`.
fn format_us(us: u64) -> String {
    if us >= 1_000_000 && us.is_multiple_of(1_000) {
        format!("{}s", trim_decimal(us as f64 / 1e6))
    } else if us >= 1_000 {
        format!("{}ms", trim_decimal(us as f64 / 1e3))
    } else {
        format!("{us}us")
    }
}

/// `2` for 2.0, `0.1` for 0.1 — drops a trailing `.0`.
fn trim_decimal(x: f64) -> String {
    let text = format!("{x}");
    text.strip_suffix(".0").unwrap_or(&text).to_string()
}

/// Renders the full `/v1/slo` JSON data object: the mergeable core
/// (`alpha_ppm` + `routes` with embedded sketches) plus derived
/// quantiles per window and the burn-rate evaluation of `specs`.
/// `shards` reports how many sources the snapshot aggregates (1 for a
/// single process).
pub fn render_slo_json(snapshot: &SloSnapshot, specs: &[SloSpec], shards: usize) -> String {
    let mut out = String::with_capacity(1024);
    let core = snapshot.to_json();
    // Splice the derived sections into the core object: drop the
    // closing brace and append.
    out.push_str(&core[..core.len() - 1]);
    let _ = write!(out, ",\"shards\":{shards},\"windows_secs\":[");
    for (i, w) in WINDOWS_SECS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    out.push_str("],\"quantiles\":{");
    for (i, (route, slo)) in snapshot.routes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{{\"cumulative\":", Json::str(route.as_str()));
        write_quantiles(&mut out, &slo.cumulative);
        out.push_str(",\"windows\":[");
        for (j, window) in slo.windows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"secs\":{},\"total\":{},\"errors\":{},\"error_rate\":{},\"latency\":",
                window.window_secs,
                window.total,
                window.errors,
                Json::num(window.error_rate())
            );
            write_quantiles(&mut out, &window.sketch);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("},\"slos\":[");
    let mut first = true;
    for spec in specs {
        let slo = snapshot.routes.iter().find(|(r, _)| r == &spec.route);
        for objective in &spec.objectives {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"route\":{},\"objective\":{},\"budget\":{},\"windows\":[",
                Json::str(spec.route.as_str()),
                Json::str(objective.label().as_str()),
                Json::num(objective.budget())
            );
            for (j, &window_secs) in WINDOWS_SECS.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let empty = WindowStats {
                    window_secs,
                    sketch: QuantileSketch::new(snapshot.alpha_ppm),
                    errors: 0,
                    total: 0,
                };
                let window = slo.map(|(_, s)| &s.windows[j]).unwrap_or(&empty);
                let burn = objective.burn_rate(window);
                let _ = write!(
                    out,
                    "{{\"secs\":{},\"violation_rate\":{},\"burn_rate\":{},\"ok\":{}}}",
                    window_secs,
                    Json::num(objective.violation_rate(window)),
                    Json::num(burn),
                    burn <= 1.0
                );
            }
            out.push_str("]}");
        }
    }
    out.push_str("]}");
    out
}

/// Appends `{"count":N,"mean_us":m,"p50_us":...,"p90_us":...,"p99_us":...,"max_us":M}`.
fn write_quantiles(out: &mut String, sketch: &QuantileSketch) {
    let mean = if sketch.count() == 0 {
        0.0
    } else {
        sketch.sum_us() as f64 / sketch.count() as f64
    };
    let _ = write!(
        out,
        "{{\"count\":{},\"mean_us\":{}",
        sketch.count(),
        Json::num(mean)
    );
    for (label, q) in REPORT_QUANTILES {
        let _ = write!(
            out,
            ",\"{label}_us\":{}",
            Json::num(sketch.quantile(q).unwrap_or(0.0))
        );
    }
    let _ = write!(out, ",\"max_us\":{}}}", sketch.max_us().unwrap_or(0));
}

/// Renders the `/v1/slo?format=prom` view: per-route/window quantile
/// series plus `gables_slo_*` burn-rate and compliance gauges.
pub fn render_slo_prometheus(snapshot: &SloSnapshot, specs: &[SloSpec], shards: usize) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(concat!(
        "# HELP gables_slo_shards Shards aggregated into this SLO view.\n",
        "# TYPE gables_slo_shards gauge\n",
    ));
    let _ = writeln!(out, "gables_slo_shards {shards}");
    out.push_str(concat!(
        "# HELP gables_route_latency_quantile_seconds Windowed latency quantiles per route, from the merged sketch.\n",
        "# TYPE gables_route_latency_quantile_seconds gauge\n",
    ));
    for (route, slo) in &snapshot.routes {
        for window in &slo.windows {
            for (label, q) in REPORT_QUANTILES {
                let _ = label;
                let _ = writeln!(
                    out,
                    "gables_route_latency_quantile_seconds{{route=\"{}\",window=\"{}\",quantile=\"{}\"}} {}",
                    escape_label(route),
                    window_label(window.window_secs),
                    q,
                    Json::num(window.sketch.quantile(q).unwrap_or(0.0) / 1e6)
                );
            }
        }
    }
    out.push_str(concat!(
        "# HELP gables_route_error_rate Windowed 5xx error rate per route.\n",
        "# TYPE gables_route_error_rate gauge\n",
    ));
    for (route, slo) in &snapshot.routes {
        for window in &slo.windows {
            let _ = writeln!(
                out,
                "gables_route_error_rate{{route=\"{}\",window=\"{}\"}} {}",
                escape_label(route),
                window_label(window.window_secs),
                Json::num(window.error_rate())
            );
        }
    }
    out.push_str(concat!(
        "# HELP gables_slo_burn_rate Error-budget burn rate per objective and window (1.0 = burning exactly the budget).\n",
        "# TYPE gables_slo_burn_rate gauge\n",
    ));
    let mut ok_lines = String::new();
    for spec in specs {
        let slo = snapshot.routes.iter().find(|(r, _)| r == &spec.route);
        for objective in &spec.objectives {
            let mut all_ok = true;
            for (j, &window_secs) in WINDOWS_SECS.iter().enumerate() {
                let empty = WindowStats {
                    window_secs,
                    sketch: QuantileSketch::new(snapshot.alpha_ppm),
                    errors: 0,
                    total: 0,
                };
                let window = slo.map(|(_, s)| &s.windows[j]).unwrap_or(&empty);
                let burn = objective.burn_rate(window);
                all_ok &= burn <= 1.0;
                let _ = writeln!(
                    out,
                    "gables_slo_burn_rate{{route=\"{}\",objective=\"{}\",window=\"{}\"}} {}",
                    escape_label(&spec.route),
                    escape_label(&objective.label()),
                    window_label(window_secs),
                    Json::num(burn)
                );
            }
            let _ = writeln!(
                ok_lines,
                "gables_slo_ok{{route=\"{}\",objective=\"{}\"}} {}",
                escape_label(&spec.route),
                escape_label(&objective.label()),
                u8::from(all_ok)
            );
        }
    }
    out.push_str(concat!(
        "# HELP gables_slo_ok 1 when the objective is within budget on every window.\n",
        "# TYPE gables_slo_ok gauge\n",
    ));
    out.push_str(&ok_lines);
    out
}

/// `60 → "1m"`, `300 → "5m"`, `3600 → "1h"`, anything else in seconds.
fn window_label(secs: u64) -> String {
    match secs {
        60 => "1m".to_string(),
        300 => "5m".to_string(),
        3600 => "1h".to_string(),
        other => format!("{other}s"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_and_snapshots_per_route() {
        let registry = SloRegistry::new();
        let t0 = 1_700_000_000u64;
        registry.record_at(t0, "/v1/eval", 200, 1_000);
        registry.record_at(t0 + 1, "/v1/eval", 500, 9_000);
        registry.record_at(t0 + 2, "/v1/sweep", 200, 2_000);
        let snapshot = registry.snapshot_at(t0 + 2);
        assert_eq!(snapshot.routes.len(), 2);
        let (route, eval) = &snapshot.routes[0];
        assert_eq!(route, "/v1/eval");
        assert_eq!(eval.total, 2);
        assert_eq!(eval.errors, 1, "only 5xx burns budget");
        assert_eq!(eval.windows.len(), WINDOWS_SECS.len());
        assert_eq!(eval.windows[0].total, 2);
        assert_eq!(eval.cumulative.count(), 2);
    }

    #[test]
    fn route_cardinality_is_fenced() {
        let registry = SloRegistry::new();
        for i in 0..(MAX_ROUTE_LABELS + 25) {
            registry.record_at(0, &format!("/hostile/{i}"), 200, 10);
        }
        let snapshot = registry.snapshot_at(0);
        assert!(snapshot.routes.len() <= MAX_ROUTE_LABELS + 1);
        let other = snapshot
            .routes
            .iter()
            .find(|(r, _)| r == "(other)")
            .unwrap();
        assert_eq!(other.1.total, 25);
    }

    #[test]
    fn snapshot_json_round_trips_and_merges_exactly() {
        let a = SloRegistry::new();
        let b = SloRegistry::new();
        let union = SloRegistry::new();
        let t0 = 1_700_000_000u64;
        for i in 0..200u64 {
            let latency = 100 + i * 7;
            let status = if i % 20 == 0 { 500 } else { 200 };
            let route = if i % 3 == 0 { "/v1/eval" } else { "/v1/sweep" };
            union.record_at(t0 + i % 60, route, status, latency);
            if i % 2 == 0 {
                a.record_at(t0 + i % 60, route, status, latency);
            } else {
                b.record_at(t0 + i % 60, route, status, latency);
            }
        }
        let now = t0 + 59;
        let sa = a.snapshot_at(now);
        let sb = b.snapshot_at(now);
        let direct = union.snapshot_at(now);
        // Round trip is exact.
        let parsed = SloSnapshot::parse(&sa.to_json()).expect("round trip");
        assert_eq!(parsed, sa);
        // Merge equals the union registry, sketches bit-identical.
        let mut merged = sa.clone();
        assert!(merged.merge(&sb));
        assert_eq!(merged, direct);
        // And the same through the JSON codec (the fleet path).
        let mut over_wire = SloSnapshot::parse(&sa.to_json()).unwrap();
        assert!(over_wire.merge(&SloSnapshot::parse(&sb.to_json()).unwrap()));
        assert_eq!(over_wire, direct);
        // The rendered /v1/slo body still parses as the mergeable core.
        let body = render_slo_json(&direct, &[], 2);
        let reparsed = SloSnapshot::parse(&body).expect("body embeds the core");
        assert_eq!(reparsed, direct);
    }

    #[test]
    fn slo_spec_grammar_accepts_the_documented_form() {
        let spec = SloSpec::parse("route=/v1/eval p99<2ms err<0.1%").unwrap();
        assert_eq!(spec.route, "/v1/eval");
        assert_eq!(
            spec.objectives,
            vec![
                Objective::Latency {
                    quantile_pct: 99,
                    threshold_us: 2_000
                },
                Objective::ErrorRate { budget_ppm: 1_000 },
            ]
        );
        assert_eq!(spec.objectives[0].label(), "p99<2ms");
        assert_eq!(spec.objectives[1].label(), "err<0.1%");
        let sub = SloSpec::parse("route=/x p50<1500us").unwrap();
        assert_eq!(
            sub.objectives,
            vec![Objective::Latency {
                quantile_pct: 50,
                threshold_us: 1_500
            }]
        );
        let secs = SloSpec::parse("route=/x p90<0.5s").unwrap();
        assert_eq!(
            secs.objectives,
            vec![Objective::Latency {
                quantile_pct: 90,
                threshold_us: 500_000
            }]
        );
    }

    #[test]
    fn slo_spec_grammar_rejects_malformed_input() {
        for bad in [
            "p99<2ms",                   // no route
            "route=/x",                  // no objectives
            "route=/x route=/y p99<2ms", // duplicate route
            "route=/x p75<2ms",          // unsupported quantile
            "route=/x p99<2",            // missing unit
            "route=/x err<0.1",          // missing %
            "route=/x err<0%",           // empty budget
            "route=/x q99<2ms",          // unknown clause
            "route=/x p99<-3ms",         // negative threshold
        ] {
            assert!(SloSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn burn_rates_scale_with_violations() {
        let mut window = WindowStats {
            window_secs: 60,
            sketch: QuantileSketch::new(SLO_ALPHA_PPM),
            errors: 0,
            total: 0,
        };
        // 100 requests at 1ms, 2 at 100ms.
        for _ in 0..100 {
            window.sketch.record(1_000);
        }
        for _ in 0..2 {
            window.sketch.record(100_000);
        }
        window.total = 102;
        window.errors = 2;
        let p99 = Objective::Latency {
            quantile_pct: 99,
            threshold_us: 2_000,
        };
        // ~2% violating over a 1% budget: burning ~2x.
        let burn = p99.burn_rate(&window);
        assert!((1.5..2.5).contains(&burn), "burn {burn}");
        let err = Objective::ErrorRate { budget_ppm: 10_000 }; // 1%
        let burn = err.burn_rate(&window);
        assert!((burn - (2.0 / 102.0) / 0.01).abs() < 1e-9);
        // An empty window burns nothing.
        let empty = WindowStats {
            window_secs: 60,
            sketch: QuantileSketch::new(SLO_ALPHA_PPM),
            errors: 0,
            total: 0,
        };
        assert_eq!(p99.burn_rate(&empty), 0.0);
    }

    #[test]
    fn rendered_views_carry_slo_series() {
        let registry = SloRegistry::new();
        let t0 = 1_700_000_000u64;
        for i in 0..50 {
            registry.record_at(t0, "/v1/eval", if i < 5 { 500 } else { 200 }, 1_000);
        }
        let snapshot = registry.snapshot_at(t0);
        let specs = vec![SloSpec::parse("route=/v1/eval p99<2ms err<1%").unwrap()];
        let json = render_slo_json(&snapshot, &specs, 1);
        let doc = Json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("shards").and_then(Json::as_f64), Some(1.0));
        let slos = doc.get("slos").unwrap().as_array().unwrap();
        assert_eq!(slos.len(), 2, "one entry per objective");
        // err<1% with a 10% observed error rate: burning 10x.
        let err = &slos[1];
        assert_eq!(err.get("objective").and_then(Json::as_str), Some("err<1%"));
        let windows = err.get("windows").unwrap().as_array().unwrap();
        let burn = windows[0].get("burn_rate").and_then(Json::as_f64).unwrap();
        assert!((burn - 10.0).abs() < 1e-9, "burn {burn}");
        assert_eq!(windows[0].get("ok").and_then(Json::as_bool), Some(false));

        let prom = render_slo_prometheus(&snapshot, &specs, 1);
        for line in prom.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "));
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable: {line}");
        }
        assert!(prom.contains(
            "gables_slo_burn_rate{route=\"/v1/eval\",objective=\"err<1%\",window=\"1m\"}"
        ));
        assert!(prom.contains("gables_slo_ok{route=\"/v1/eval\",objective=\"err<1%\"} 0"));
        assert!(prom.contains("gables_route_latency_quantile_seconds{route=\"/v1/eval\",window=\"1h\",quantile=\"0.99\"}"));
    }
}
