//! # gables-serve
//!
//! A dependency-free HTTP/1.1 JSON serving layer for the Gables suite,
//! built entirely on `std`: a nonblocking epoll event loop ([`poll`] +
//! [`server`]) that holds tens of thousands of idle keep-alive
//! connections while CPU-bound work drains through a bounded worker
//! pool, a tiny incremental request/response codec ([`http`]), a
//! sharded LRU response cache ([`cache`]), always-on request telemetry
//! ([`metrics`]), and a flight recorder of recent requests with their
//! span trees ([`flight`]) — all in the spirit of the simulator's
//! `Recorder` layer: observation never perturbs serving behaviour.
//!
//! This crate is *generic* server infrastructure: it knows nothing
//! about spec files or roofline endpoints. The Gables endpoints
//! (`/eval`, `/sweep`, `/whatif`, `/simulate`, `/metrics`) are wired up
//! in `gables-cli`, which owns the spec parsers, and exposed as the
//! `gables serve` subcommand. Capacity is explicit at every stage —
//! worker count, queue depth, cache size, head/body byte limits — and
//! load beyond the queue is shed immediately with `503` +
//! `Retry-After` rather than buffered unboundedly.
//!
//! ## Response envelope and error codes
//!
//! Every JSON response this layer emits uses one envelope:
//!
//! ```json
//! {"ok": true,  "data": { ... }, "error": null}
//! {"ok": false, "data": null,    "error": {"code": "...", "message": "..."}}
//! {"ok": false, "data": null,    "error": {"code": "...", "kind": "...", "message": "..."}}
//! ```
//!
//! [`Response::error`] produces the failure form;
//! [`Response::error_with_kind`] additionally carries a `kind` — a
//! fine-grained, closed domain code (the model's `ErrorKind` codes such
//! as `invalid_parameter` or `work_fraction_sum`, or the spec parser's
//! `spec_parse`) naming *why* the input was rejected, while `code`
//! stays a pure transport-status mapping. The success form is
//! assembled by the route layer. The `code` field is a closed, stable
//! set mapped from the HTTP status by [`Response::error_code`]:
//!
//! | code                 | status | meaning                                   |
//! |----------------------|--------|-------------------------------------------|
//! | `bad_request`        | 400    | unparsable request, spec, or parameters   |
//! | `not_found`          | 404    | no route at this path                     |
//! | `method_not_allowed` | 405    | path exists, method does not              |
//! | `timeout`            | 408    | the request did not arrive in time        |
//! | `conflict`           | 409    | an exclusive resource is already in use   |
//! | `endpoint_gone`      | 410    | a sunset endpoint; follow the `Link` header |
//! | `too_large`          | 413    | head or body over its byte limit          |
//! | `unprocessable`      | 422    | well-formed but semantically invalid input |
//! | `internal`           | 500    | handler panic or other server-side fault  |
//! | `unavailable`        | 503    | queue full — retry after `Retry-After`    |
//!
//! ## Example
//!
//! ```
//! use gables_serve::{Response, Router, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let handle = server.handle()?;
//! let join = std::thread::spawn(move || {
//!     server.run(Router::new().route("GET", "/ping", |_| Response::text(200, "pong")))
//! });
//! // ... issue requests against handle.addr() ...
//! handle.shutdown();
//! join.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod faults;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod server;
pub mod slo;

pub use cache::ShardedCache;
pub use faults::{FaultCase, FaultKind, FaultOutcome, FaultReport, FaultSchedule};
pub use flight::{FlightRecord, FlightRecorder};
pub use http::{
    parse_request_bytes, read_request, HttpError, Parsed, Request, Response, MAX_BODY_BYTES,
    MAX_HEADERS, MAX_HEAD_BYTES,
};
pub use metrics::{MetricsSnapshot, ServerMetrics, LATENCY_BUCKETS, MAX_ROUTE_LABELS};
pub use server::{Handler, Router, Server, ServerConfig, ServerHandle};
pub use slo::{SloRegistry, SloSnapshot, SloSpec};
