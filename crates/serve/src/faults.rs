//! A deterministic fault-injection harness for the serving stack.
//!
//! Each [`FaultKind`] is one adversarial client behaviour — garbage
//! bytes, a truncated or oversized head, a slow-loris trickle, a
//! duplicate `Content-Length`, a body shorter than declared, a client
//! that vanishes mid-response. [`FaultSchedule`] expands a single seed
//! into a reproducible sequence of [`FaultCase`]s (every case carries
//! its own derived seed, so payload shapes vary but replay exactly),
//! and [`FaultCase::inject`] plays one case against a live server
//! address and reports what came back.
//!
//! The contract under test is the serving analog of the model's closed
//! input domain: a hostile or broken client may cost the server *one
//! connection*, never a worker, and every readable reaction must be a
//! structured non-2xx response ([`FaultReport::acceptable`]). The
//! harness is pure `std` + the suite's own [`SplitMix64`] — runs are
//! reproducible from the seed alone, so a failing case number is a
//! complete bug report.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use gables_model::rng::SplitMix64;

use crate::http::{MAX_BODY_BYTES, MAX_HEADERS, MAX_HEAD_BYTES};

/// One adversarial client behaviour the harness can play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Random bytes that never form an HTTP head.
    GarbageBytes,
    /// A plausible head cut off before the blank line, then EOF.
    TruncatedHead,
    /// A valid head trickled a few bytes at a time, abandoned mid-way.
    SlowLoris,
    /// A head that exceeds [`MAX_HEAD_BYTES`] before its blank line.
    OversizedHead,
    /// Two conflicting `Content-Length` headers on one request.
    DuplicateContentLength,
    /// More than [`MAX_HEADERS`] header fields.
    TooManyHeaders,
    /// A body shorter than its declared `Content-Length`, then EOF.
    BodyShorterThanDeclared,
    /// A `Content-Length` declaring more than [`MAX_BODY_BYTES`].
    OversizedBodyDeclaration,
    /// A well-formed request whose client disconnects without reading
    /// the response.
    MidResponseDisconnect,
}

impl FaultKind {
    /// Every fault the harness knows, in schedule order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::GarbageBytes,
        FaultKind::TruncatedHead,
        FaultKind::SlowLoris,
        FaultKind::OversizedHead,
        FaultKind::DuplicateContentLength,
        FaultKind::TooManyHeaders,
        FaultKind::BodyShorterThanDeclared,
        FaultKind::OversizedBodyDeclaration,
        FaultKind::MidResponseDisconnect,
    ];

    /// A stable lowercase label for logs and failure messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::GarbageBytes => "garbage_bytes",
            FaultKind::TruncatedHead => "truncated_head",
            FaultKind::SlowLoris => "slow_loris",
            FaultKind::OversizedHead => "oversized_head",
            FaultKind::DuplicateContentLength => "duplicate_content_length",
            FaultKind::TooManyHeaders => "too_many_headers",
            FaultKind::BodyShorterThanDeclared => "body_shorter_than_declared",
            FaultKind::OversizedBodyDeclaration => "oversized_body_declaration",
            FaultKind::MidResponseDisconnect => "mid_response_disconnect",
        }
    }
}

/// One playable fault: a kind plus the seed that shapes its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCase {
    /// The behaviour to play.
    pub kind: FaultKind,
    /// Derived seed for this case's payload randomness.
    pub seed: u64,
}

/// What the server observably did in reaction to one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// A parseable HTTP status line came back.
    Status(u16),
    /// The connection closed without a parseable response. Expected
    /// when the *client* broke the exchange first.
    ClosedWithoutResponse,
}

/// The result of injecting one [`FaultCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// The case that was played.
    pub case: FaultCase,
    /// The server's observable reaction.
    pub outcome: FaultOutcome,
}

impl FaultReport {
    /// Whether the server reacted acceptably: a structured client-error
    /// status, or a bare close on an exchange the client itself
    /// abandoned. A 2xx (the fault was *accepted*) or a 5xx (the fault
    /// reached a handler it should never reach) always fails.
    pub fn acceptable(&self) -> bool {
        match self.outcome {
            FaultOutcome::Status(s) => (400..500).contains(&s),
            FaultOutcome::ClosedWithoutResponse => matches!(
                self.case.kind,
                FaultKind::GarbageBytes
                    | FaultKind::TruncatedHead
                    | FaultKind::SlowLoris
                    | FaultKind::BodyShorterThanDeclared
                    | FaultKind::MidResponseDisconnect
            ),
        }
    }
}

/// A reproducible sequence of fault cases derived from one seed.
#[derive(Debug)]
pub struct FaultSchedule {
    rng: SplitMix64,
}

impl FaultSchedule {
    /// A schedule seeded for exact replay.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// The next `n` cases: each round cycles through [`FaultKind::ALL`]
    /// so every kind is exercised, with a fresh per-case payload seed.
    pub fn cases(&mut self, n: usize) -> Vec<FaultCase> {
        (0..n)
            .map(|i| FaultCase {
                kind: FaultKind::ALL[i % FaultKind::ALL.len()],
                seed: self.rng.next_u64(),
            })
            .collect()
    }
}

impl FaultCase {
    /// Plays this fault against a live server and reports the reaction.
    ///
    /// `patience` bounds how long the harness waits for the server's
    /// response (it must comfortably exceed the server's read timeout
    /// for the faults that stall on purpose).
    ///
    /// # Errors
    ///
    /// Returns an error only if the initial connect fails — everything
    /// after that, including resets, is a legitimate observation and
    /// lands in the report.
    pub fn inject(&self, addr: SocketAddr, patience: Duration) -> std::io::Result<FaultReport> {
        let mut rng = SplitMix64::new(self.seed);
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(patience))?;
        stream.set_write_timeout(Some(patience))?;
        let outcome = match self.kind {
            FaultKind::GarbageBytes => {
                let len = rng.range_usize(1, 512);
                let junk: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
                let _ = stream.write_all(&junk);
                finish_sending(&mut stream)
            }
            FaultKind::TruncatedHead => {
                let head = "POST /v1/eval HTTP/1.1\r\nContent-Le";
                let cut = rng.range_usize(1, head.len());
                let _ = stream.write_all(&head.as_bytes()[..cut]);
                finish_sending(&mut stream)
            }
            FaultKind::SlowLoris => {
                // Trickle a plausible head a byte at a time, then give
                // up before the blank line ever arrives.
                let head = b"GET /v1/healthz HTTP/1.1\r\nX-Drip: 1\r\n";
                let drips = rng.range_usize(4, head.len());
                for byte in &head[..drips] {
                    if stream.write_all(std::slice::from_ref(byte)).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                finish_sending(&mut stream)
            }
            FaultKind::OversizedHead => {
                let mut head = String::from("GET /v1/healthz HTTP/1.1\r\n");
                let filler = format!("X-Pad: {}\r\n", "y".repeat(4096));
                while head.len() <= MAX_HEAD_BYTES {
                    head.push_str(&filler);
                }
                // No terminating blank line needed: the size cap must
                // trip before the head ever completes.
                let _ = stream.write_all(head.as_bytes());
                finish_sending(&mut stream)
            }
            FaultKind::DuplicateContentLength => {
                let first = rng.range_usize(0, 64);
                let second = first + rng.range_usize(1, 64);
                let req = format!(
                    "POST /v1/eval HTTP/1.1\r\nContent-Length: {first}\r\nContent-Length: {second}\r\n\r\n"
                );
                let _ = stream.write_all(req.as_bytes());
                finish_sending(&mut stream)
            }
            FaultKind::TooManyHeaders => {
                let mut req = String::from("GET /v1/healthz HTTP/1.1\r\n");
                for i in 0..=MAX_HEADERS {
                    req.push_str(&format!("X-Flood-{i}: {}\r\n", rng.next_u64()));
                }
                req.push_str("\r\n");
                let _ = stream.write_all(req.as_bytes());
                finish_sending(&mut stream)
            }
            FaultKind::BodyShorterThanDeclared => {
                let declared = rng.range_usize(64, 4096);
                let sent = rng.range_usize(0, declared / 2);
                let req = format!(
                    "POST /v1/eval HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n{}",
                    "x".repeat(sent)
                );
                let _ = stream.write_all(req.as_bytes());
                finish_sending(&mut stream)
            }
            FaultKind::OversizedBodyDeclaration => {
                let declared = MAX_BODY_BYTES + rng.range_usize(1, MAX_BODY_BYTES);
                let req = format!("POST /v1/eval HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
                let _ = stream.write_all(req.as_bytes());
                finish_sending(&mut stream)
            }
            FaultKind::MidResponseDisconnect => {
                let _ = stream.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n");
                // Vanish without reading a byte of the response; the
                // server's write may hit a reset and must shrug it off.
                let _ = stream.shutdown(Shutdown::Both);
                drop(stream);
                return Ok(FaultReport {
                    case: *self,
                    outcome: FaultOutcome::ClosedWithoutResponse,
                });
            }
        };
        Ok(FaultReport {
            case: *self,
            outcome,
        })
    }
}

/// Signals end-of-request to the server and reads its reaction: the
/// parsed status line, or [`FaultOutcome::ClosedWithoutResponse`] if
/// the connection died (EOF, reset, timeout) before one arrived.
fn finish_sending(stream: &mut TcpStream) -> FaultOutcome {
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    // Bounded read: enough for any status line + error envelope.
    while raw.len() < 64 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
        }
    }
    parse_status(&raw).map_or(FaultOutcome::ClosedWithoutResponse, FaultOutcome::Status)
}

/// Extracts the status code from a raw `HTTP/1.x NNN ...` response.
fn parse_status(raw: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(raw).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split(' ');
    if !parts.next()?.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;
    use crate::server::{Router, Server, ServerConfig};

    fn started() -> (crate::server::ServerHandle, std::thread::JoinHandle<()>) {
        let config = ServerConfig {
            workers: 2,
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let handle = server.handle().unwrap();
        let router = Router::new().route("GET", "/v1/healthz", |_| Response::text(200, "ok"));
        let join = std::thread::spawn(move || server.run(router).unwrap());
        (handle, join)
    }

    #[test]
    fn schedules_are_deterministic_and_cover_every_kind() {
        let a = FaultSchedule::new(7).cases(2 * FaultKind::ALL.len());
        let b = FaultSchedule::new(7).cases(2 * FaultKind::ALL.len());
        assert_eq!(a, b);
        for kind in FaultKind::ALL {
            assert_eq!(a.iter().filter(|c| c.kind == kind).count(), 2, "{kind:?}");
        }
        let c = FaultSchedule::new(8).cases(4);
        assert_ne!(a[..4], c[..], "different seeds, different payloads");
    }

    #[test]
    fn every_fault_kind_is_survived_with_an_acceptable_reaction() {
        let (handle, join) = started();
        let mut schedule = FaultSchedule::new(0xFA);
        for case in schedule.cases(FaultKind::ALL.len()) {
            let report = case
                .inject(handle.addr(), Duration::from_secs(5))
                .expect("connect");
            assert!(
                report.acceptable(),
                "{}: unacceptable reaction {:?}",
                case.kind.label(),
                report.outcome
            );
        }
        // The server is still healthy after the whole schedule.
        let case = FaultCase {
            kind: FaultKind::MidResponseDisconnect,
            seed: 1,
        };
        let _ = case.inject(handle.addr(), Duration::from_secs(5));
        let mut probe = TcpStream::connect(handle.addr()).unwrap();
        probe
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        let _ = probe.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.metrics().snapshot().panics, 0);
    }

    #[test]
    fn acceptable_is_strict_about_success_and_server_errors() {
        let case = FaultCase {
            kind: FaultKind::DuplicateContentLength,
            seed: 0,
        };
        let report = |outcome| FaultReport { case, outcome };
        assert!(report(FaultOutcome::Status(400)).acceptable());
        assert!(!report(FaultOutcome::Status(200)).acceptable());
        assert!(!report(FaultOutcome::Status(500)).acceptable());
        // A head the server must answer cannot just be dropped...
        assert!(!report(FaultOutcome::ClosedWithoutResponse).acceptable());
        // ...but an exchange the client abandoned can.
        let abandoned = FaultReport {
            case: FaultCase {
                kind: FaultKind::SlowLoris,
                seed: 0,
            },
            outcome: FaultOutcome::ClosedWithoutResponse,
        };
        assert!(abandoned.acceptable());
    }

    #[test]
    fn status_parser_handles_noise() {
        assert_eq!(parse_status(b"HTTP/1.1 404 Not Found\r\n\r\n"), Some(404));
        assert_eq!(parse_status(b""), None);
        assert_eq!(parse_status(b"SMTP 220 hi"), None);
        assert_eq!(parse_status(b"HTTP/1.1 banana"), None);
    }
}
