//! A flight recorder: a bounded ring buffer of the most recent requests,
//! each with its identity, outcome, latency, and collected span tree.
//!
//! Aggregate counters ([`crate::metrics`]) answer "how is the server
//! doing"; the flight recorder answers "what did the last requests
//! actually do" — the serving analog of the simulator's epoch timeline.
//! The ring holds the last [`FlightRecorder::capacity`] requests and
//! overwrites the oldest, so memory stays constant under any traffic
//! volume. A monotonically increasing sequence number counts every
//! request ever recorded, letting `/v1/debug/requests` reconcile the
//! ring against the metrics counters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gables_model::json::Json;
use gables_model::obs::SpanRecord;

/// One recorded request.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Recording sequence number (1-based, never reused).
    pub seq: u64,
    /// The request's `X-Request-Id` (client-provided or generated).
    pub id: String,
    /// HTTP method.
    pub method: String,
    /// Route label as recorded in metrics (`"(unmatched)"`,
    /// `"(unparsed)"`, or a registered path).
    pub route: String,
    /// Response status code.
    pub status: u16,
    /// Wall-clock completion time, microseconds since the Unix epoch.
    /// Lets a replica router interleave shard flight records into one
    /// fleet-wide timeline.
    pub ts_unix_us: u64,
    /// End-to-end service latency in microseconds.
    pub latency_us: u64,
    /// Cache outcome, when the handler reported one.
    pub cache_hit: Option<bool>,
    /// Heap allocations observed while the request was served. The
    /// counter is process-wide ([`gables_model::prof::alloc_totals`]),
    /// so under concurrency this attributes overlapping requests'
    /// allocations to each of them — an honest upper bound.
    pub allocs: u64,
    /// Heap bytes requested while the request was served (same
    /// process-wide caveat as `allocs`).
    pub alloc_bytes: u64,
    /// Total span self-time in microseconds
    /// ([`gables_model::prof::cpu_busy_us`]): time attributed to the
    /// request's own spans across all threads, which exceeds
    /// `latency_us` when parallel workers overlap.
    pub cpu_busy_us: f64,
    /// The request's finished spans (empty when tracing collected none).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the bounded collector was full.
    pub spans_dropped: u64,
}

impl FlightRecord {
    /// The one-line span-tree summary shown in list views.
    pub fn span_summary(&self) -> String {
        gables_plot::span_tree_summary(&self.spans)
    }

    /// Serializes the record for `/v1/debug/requests`. `detail` adds the
    /// full span list on top of the always-present summary fields.
    pub fn to_json(&self, detail: bool) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::num(self.seq as f64)),
            ("id".to_string(), Json::str(&self.id)),
            ("method".to_string(), Json::str(&self.method)),
            ("route".to_string(), Json::str(&self.route)),
            ("status".to_string(), Json::num(f64::from(self.status))),
            ("ts_unix_us".to_string(), Json::num(self.ts_unix_us as f64)),
            ("latency_us".to_string(), Json::num(self.latency_us as f64)),
            (
                "cache".to_string(),
                match self.cache_hit {
                    Some(true) => Json::str("hit"),
                    Some(false) => Json::str("miss"),
                    None => Json::Null,
                },
            ),
            ("allocs".to_string(), Json::num(self.allocs as f64)),
            (
                "alloc_bytes".to_string(),
                Json::num(self.alloc_bytes as f64),
            ),
            ("cpu_busy_us".to_string(), Json::num(self.cpu_busy_us)),
            ("span_count".to_string(), Json::num(self.spans.len() as f64)),
            (
                "spans_dropped".to_string(),
                Json::num(self.spans_dropped as f64),
            ),
            ("span_summary".to_string(), Json::str(self.span_summary())),
        ];
        if detail {
            fields.push((
                "spans".to_string(),
                Json::Array(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::Object(vec![
                                ("name".to_string(), Json::str(&s.name)),
                                ("span".to_string(), Json::str(format!("{:016x}", s.span_id))),
                                (
                                    "parent".to_string(),
                                    Json::str(format!("{:016x}", s.parent_id)),
                                ),
                                ("start_us".to_string(), Json::num(s.start_us)),
                                ("dur_us".to_string(), Json::num(s.dur_us)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::Object(fields)
    }
}

/// The bounded ring of recent [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<FlightRecord>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// How many records the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total requests ever recorded (survives ring eviction).
    pub fn recorded_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Appends a record, evicting the oldest at capacity, and stamps its
    /// sequence number.
    pub fn record(&self, mut record: FlightRecord) {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The most recent `n` records, newest first.
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let ring = self.ring.lock().expect("flight ring poisoned");
        ring.iter().rev().take(n).cloned().collect()
    }

    /// Looks up a retained record by request ID (newest match wins).
    pub fn find(&self, id: &str) -> Option<FlightRecord> {
        let ring = self.ring.lock().expect("flight ring poisoned");
        ring.iter().rev().find(|r| r.id == id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, status: u16) -> FlightRecord {
        FlightRecord {
            seq: 0,
            id: id.to_string(),
            method: "GET".to_string(),
            route: "/v1/eval".to_string(),
            status,
            ts_unix_us: 1_700_000_000_000_000,
            latency_us: 42,
            cache_hit: Some(false),
            allocs: 7,
            alloc_bytes: 512,
            cpu_busy_us: 10.0,
            spans: Vec::new(),
            spans_dropped: 0,
        }
    }

    #[test]
    fn ring_keeps_only_the_most_recent_records() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(record(&format!("r{i}"), 200));
        }
        assert_eq!(rec.recorded_total(), 5);
        let recent = rec.recent(10);
        let ids: Vec<&str> = recent.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["r4", "r3", "r2"], "newest first, oldest evicted");
        assert_eq!(recent[0].seq, 5);
        assert_eq!(rec.recent(1).len(), 1);
    }

    #[test]
    fn find_returns_the_newest_match() {
        let rec = FlightRecorder::new(4);
        rec.record(record("dup", 200));
        rec.record(record("other", 404));
        rec.record(record("dup", 500));
        let hit = rec.find("dup").unwrap();
        assert_eq!(hit.status, 500);
        assert!(rec.find("gone").is_none());
    }

    #[test]
    fn record_json_has_summary_and_optional_spans() {
        let mut r = record("abc", 200);
        r.spans.push(gables_model::obs::SpanRecord {
            name: "server.request".to_string(),
            trace_id: 1,
            span_id: 2,
            parent_id: 0,
            start_us: 0.0,
            dur_us: 10.0,
        });
        let list = r.to_json(false).to_string();
        assert!(list.contains("\"span_summary\":\"server.request\""));
        assert!(list.contains("\"cache\":\"miss\""));
        assert!(list.contains("\"allocs\":7"));
        assert!(list.contains("\"alloc_bytes\":512"));
        assert!(list.contains("\"cpu_busy_us\":10"));
        assert!(!list.contains("\"spans\":["));
        let detail = r.to_json(true).to_string();
        assert!(detail.contains("\"spans\":["));
        assert!(detail.contains("\"0000000000000002\""));
        let parsed = Json::parse(&detail).unwrap();
        assert_eq!(parsed.get("spans").unwrap().as_array().unwrap().len(), 1);
    }
}
