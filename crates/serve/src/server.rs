//! The serving loop: a `TcpListener` accept thread feeding a bounded
//! queue drained by a fixed pool of worker threads.
//!
//! The pool is *explicitly* bounded at both ends. Worker count caps
//! concurrent evaluations (each worker handles one connection at a
//! time), and the queue caps admitted-but-unserved connections. When the
//! queue is full the accept thread answers `503 Service Unavailable`
//! with a `Retry-After` header *inline* and closes the connection — load
//! the server cannot absorb is shed immediately instead of queueing
//! unboundedly or hanging the client. This mirrors how the Gables model
//! treats a saturated resource: past the roofline's knee, extra offered
//! load changes who waits, never the attainable throughput.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] sets a flag,
//! wakes the blocking `accept` with a loopback self-connect, and the
//! accept thread then posts one `Stop` poison per worker and joins them,
//! letting in-flight requests finish.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{read_request, Request, Response};
use crate::metrics::ServerMetrics;

/// A request handler: pure function of the parsed request.
pub type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes requests to handlers by exact `(method, path)` match.
#[derive(Default)]
pub struct Router {
    routes: Vec<(String, String, Handler)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router").field("routes", &routes).finish()
    }
}

impl Router {
    /// An empty router; unmatched requests get 404/405.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for an exact method + path (builder style).
    #[must_use]
    pub fn route(
        mut self,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .push((method.to_string(), path.to_string(), Box::new(handler)));
        self
    }

    /// Dispatches one request: 404 for unknown paths, 405 (with the
    /// allowed methods) for known paths with the wrong method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut path_seen = false;
        for (method, path, handler) in &self.routes {
            if *path == req.path {
                path_seen = true;
                if *method == req.method {
                    return handler(req);
                }
            }
        }
        if path_seen {
            let allowed: Vec<&str> = self
                .routes
                .iter()
                .filter(|(_, p, _)| *p == req.path)
                .map(|(m, _, _)| m.as_str())
                .collect();
            Response::error(
                405,
                &format!(
                    "method {} not allowed; use {}",
                    req.method,
                    allowed.join(", ")
                ),
            )
            .with_header("Allow", allowed.join(", "))
        } else {
            Response::error(404, &format!("no route for {}", req.path))
        }
    }
}

/// Tuning knobs for [`Server`]. `Default` suits tests and local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (concurrent requests). Clamped to at least 1.
    pub workers: usize,
    /// Connections allowed to wait for a worker before 503s start.
    pub queue_depth: usize,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Socket write timeout while sending a response.
    pub write_timeout: Duration,
    /// Value of the `Retry-After` header on backpressure 503s.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
        }
    }
}

enum Work {
    Conn(TcpStream),
    Stop,
}

struct Queue {
    items: Mutex<VecDeque<Work>>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// Pushes unconditionally (used for `Stop` poisons, which must never
    /// be shed).
    fn push(&self, work: Work) {
        self.items.lock().expect("queue poisoned").push_back(work);
        self.ready.notify_one();
    }

    /// Pushes only if under `limit`; returns the work back on overflow.
    fn try_push(&self, work: Work, limit: usize) -> Result<(), Work> {
        let mut items = self.items.lock().expect("queue poisoned");
        if items.len() >= limit {
            return Err(work);
        }
        items.push_back(work);
        drop(items);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Work {
        let mut items = self.items.lock().expect("queue poisoned");
        loop {
            if let Some(work) = items.pop_front() {
                return work;
            }
            items = self.ready.wait(items).expect("queue poisoned");
        }
    }
}

/// A handle for observing and stopping a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    metrics: Arc<ServerMetrics>,
}

impl ServerHandle {
    /// The address the server is actually listening on (useful with
    /// port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The live request counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Requests a graceful stop: sets the flag and wakes the accept
    /// loop with a self-connect so it notices without waiting for an
    /// external connection. Safe to call more than once.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept call blocks until *some* connection arrives; give
        // it one. Errors are fine — any concurrent real connection also
        // wakes it.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr())
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Binds a listener. Use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            config,
            metrics: Arc::new(ServerMetrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket is in a bad state.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The request counters (shared with the eventual workers).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that can stop the server once [`Server::run`] starts.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.listener.local_addr()?,
            metrics: Arc::clone(&self.metrics),
        })
    }

    /// Serves until [`ServerHandle::shutdown`] is called: spawns the
    /// worker pool, accepts connections into the bounded queue, sheds
    /// overflow with 503 + `Retry-After`, then drains and joins the
    /// workers on shutdown. Blocks the calling thread for the server's
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Returns an error only if the listener itself fails fatally;
    /// per-connection errors are answered on that connection (or
    /// dropped) and serving continues.
    pub fn run(self, router: Router) -> std::io::Result<()> {
        let router = Arc::new(router);
        let queue = Arc::new(Queue::new());
        let workers = self.config.workers.max(1);
        // Stop poisons share the queue, so leave room for one per worker
        // beyond the advertised connection depth.
        let queue_limit = self.config.queue_depth.max(1);

        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let metrics = Arc::clone(&self.metrics);
            let config = self.config.clone();
            pool.push(std::thread::spawn(move || loop {
                match queue.pop() {
                    Work::Stop => break,
                    Work::Conn(mut stream) => {
                        // Backstop: `serve_connection` already confines
                        // handler panics, so this only trips on a bug in
                        // the serving plumbing itself — and even then the
                        // worker survives to drain the queue.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(&mut stream, &router, &metrics, &config);
                        }));
                        if outcome.is_err() {
                            metrics.record_panic();
                        }
                    }
                }
            }));
        }

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection (or a late client) lands here;
                // just drop it and stop accepting.
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            if let Err(Work::Conn(mut stream)) = queue.try_push(Work::Conn(stream), queue_limit) {
                self.metrics.record_rejected();
                let resp = Response::error(503, "server busy: request queue is full")
                    .with_header("Retry-After", self.config.retry_after_secs.to_string());
                let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                let _ = resp.write_to(&mut stream);
                // The shed connection's request bytes were never read, so
                // a plain close would RST and could destroy the 503 still
                // in the client's direction. Drain first (bounded).
                drain_and_close(&mut stream);
            }
        }

        for _ in 0..workers {
            queue.push(Work::Stop);
        }
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Decrements the in-flight gauge on scope exit, so the gauge stays
/// honest even when a handler panic unwinds through the serving path.
struct InFlightGuard<'a>(&'a ServerMetrics);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.exit_in_flight();
    }
}

/// Reads one request off the connection, dispatches it, writes the
/// response, and records metrics. All errors — including a panicking
/// handler, which is confined to this request and answered with a
/// structured 500 — are answered on the wire where possible and never
/// propagate.
fn serve_connection(
    stream: &mut TcpStream,
    router: &Router,
    metrics: &ServerMetrics,
    config: &ServerConfig,
) {
    metrics.enter_in_flight();
    let _in_flight = InFlightGuard(metrics);
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let (route, response, fully_read) = match read_request(stream) {
        Ok(req) => {
            let route = req.path.clone();
            // A panic in one handler must cost exactly that request: the
            // worker answers a structured 500 and lives to serve the next
            // connection. Handlers borrow only `&Request`, so no shared
            // state can be left torn by the unwind (`AssertUnwindSafe` is
            // about the borrow checker, not an actual safety waiver).
            let response =
                catch_unwind(AssertUnwindSafe(|| router.dispatch(&req))).unwrap_or_else(|_| {
                    metrics.record_panic();
                    Response::error(500, "internal error: handler panicked")
                });
            (route, response, true)
        }
        Err(err) => (
            "(unparsed)".to_string(),
            Response::error(err.status(), &err.to_string()),
            false,
        ),
    };
    let status = response.status;
    let _ = response.write_to(stream);
    let _ = stream.flush();
    if !fully_read {
        // A parse-rejected request leaves unread bytes on the socket;
        // closing over them would RST and could race the error response
        // off the wire before the client reads it.
        drain_and_close(stream);
    }
    metrics.record_handled(&route, status, started.elapsed());
}

/// Best-effort graceful close for a connection with (possibly) unread
/// request bytes: half-close the write side so the client sees EOF
/// after the response, then drain what the client already sent so the
/// kernel does not turn unread data into an RST that races the
/// response. Both the drain time and the drained bytes are bounded, so
/// a hostile client cannot pin the calling thread.
fn drain_and_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut budget: usize = 64 * 1024;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(
        router: Router,
        config: ServerConfig,
    ) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run(router).unwrap());
        (handle, join)
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn ping_router() -> Router {
        Router::new().route("GET", "/ping", |_| Response::text(200, "pong"))
    }

    #[test]
    fn serves_requests_and_shuts_down_gracefully() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("pong"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        let snapshot = handle.metrics().snapshot();
        assert_eq!(snapshot.handled, 1);
        assert_eq!(snapshot.status_2xx, 1);
        assert_eq!(snapshot.in_flight, 0);
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let reply = roundtrip(handle.addr(), "POST /ping HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
        assert!(reply.contains("Allow: GET"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_request_is_answered_not_dropped() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.metrics().snapshot().status_4xx, 1);
    }

    #[test]
    fn full_queue_sheds_load_with_503_and_retry_after() {
        // One worker, one queue slot. Two silent connections occupy the
        // worker and the slot (they hold until the read timeout), so a
        // third, real request must be shed immediately.
        let config = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let (handle, join) = started(ping_router(), config);
        // Stagger the stallers so the first is already *popped* (worker
        // blocked reading it) before the second fills the queue slot;
        // connecting back-to-back races the worker's pop and could shed
        // the second staller instead of the probe request.
        let _stall_worker = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let _stall_queue = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let start = Instant::now();
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "503 must be immediate, not wait out the stalled worker"
        );
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Retry-After: 1"), "{reply}");
        assert!(handle.metrics().snapshot().rejected >= 1);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn handler_panic_is_a_500_and_the_worker_survives() {
        let router = Router::new()
            .route("GET", "/ping", |_| Response::text(200, "pong"))
            .route("GET", "/boom", |_| panic!("intentional test panic"));
        // One worker: the request after the panic can only be served by
        // the same thread that caught it.
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let (handle, join) = started(router, config);
        let reply = roundtrip(handle.addr(), "GET /boom HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        assert!(reply.contains("handler panicked"), "{reply}");
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(reply.ends_with("pong"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        let snapshot = handle.metrics().snapshot();
        assert_eq!(snapshot.panics, 1);
        assert_eq!(snapshot.status_5xx, 1);
        assert_eq!(snapshot.in_flight, 0);
        assert_eq!(snapshot.handled, 2);
    }

    #[test]
    fn router_dispatch_is_exact_match() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::text(200, "a"))
            .route("POST", "/a", |_| Response::text(200, "posted"));
        let mk = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(router.dispatch(&mk("GET", "/a")).body, b"a");
        assert_eq!(router.dispatch(&mk("POST", "/a")).body, b"posted");
        assert_eq!(router.dispatch(&mk("DELETE", "/a")).status, 405);
        assert_eq!(router.dispatch(&mk("GET", "/b")).status, 404);
    }

    #[test]
    fn shutdown_without_traffic_does_not_hang() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        handle.shutdown();
        join.join().unwrap();
    }
}
