//! The serving loop: a `TcpListener` accept thread feeding a bounded
//! queue drained by a fixed pool of worker threads.
//!
//! The pool is *explicitly* bounded at both ends. Worker count caps
//! concurrent evaluations (each worker handles one connection at a
//! time), and the queue caps admitted-but-unserved connections. When the
//! queue is full the accept thread answers `503 Service Unavailable`
//! with a `Retry-After` header *inline* and closes the connection — load
//! the server cannot absorb is shed immediately instead of queueing
//! unboundedly or hanging the client. This mirrors how the Gables model
//! treats a saturated resource: past the roofline's knee, extra offered
//! load changes who waits, never the attainable throughput.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] sets a flag,
//! wakes the blocking `accept` with a loopback self-connect, and the
//! accept thread then posts one `Stop` poison per worker and joins them,
//! letting in-flight requests finish.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use gables_model::obs;

use crate::flight::{FlightRecord, FlightRecorder};
use crate::http::{read_request, Request, Response};
use crate::metrics::ServerMetrics;

/// Spans retained per request before the collector starts dropping.
const SPAN_CAPACITY: usize = 512;

/// A request handler: pure function of the parsed request.
pub type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes requests to handlers by exact `(method, path)` match.
#[derive(Default)]
pub struct Router {
    routes: Vec<(String, String, Handler)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router").field("routes", &routes).finish()
    }
}

impl Router {
    /// An empty router; unmatched requests get 404/405.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for an exact method + path (builder style).
    #[must_use]
    pub fn route(
        mut self,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .push((method.to_string(), path.to_string(), Box::new(handler)));
        self
    }

    /// Whether any handler is registered at this path (any method).
    /// Metrics label unknown paths `"(unmatched)"` instead of echoing
    /// them, so a client scanning arbitrary paths cannot grow the
    /// per-route counter map.
    pub fn has_path(&self, path: &str) -> bool {
        self.routes.iter().any(|(_, p, _)| p == path)
    }

    /// Dispatches one request: 404 for unknown paths, 405 (with the
    /// allowed methods) for known paths with the wrong method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut path_seen = false;
        for (method, path, handler) in &self.routes {
            if *path == req.path {
                path_seen = true;
                if *method == req.method {
                    return handler(req);
                }
            }
        }
        if path_seen {
            let allowed: Vec<&str> = self
                .routes
                .iter()
                .filter(|(_, p, _)| *p == req.path)
                .map(|(m, _, _)| m.as_str())
                .collect();
            Response::error(
                405,
                &format!(
                    "method {} not allowed; use {}",
                    req.method,
                    allowed.join(", ")
                ),
            )
            .with_header("Allow", allowed.join(", "))
        } else {
            Response::error(404, &format!("no route for {}", req.path))
        }
    }
}

/// Tuning knobs for [`Server`]. `Default` suits tests and local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (concurrent requests). Clamped to at least 1.
    pub workers: usize,
    /// Connections allowed to wait for a worker before 503s start.
    pub queue_depth: usize,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Socket write timeout while sending a response.
    pub write_timeout: Duration,
    /// Value of the `Retry-After` header on backpressure 503s.
    pub retry_after_secs: u64,
    /// Requests retained by the flight recorder ring.
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
            flight_capacity: 64,
        }
    }
}

enum Work {
    Conn(TcpStream),
    Stop,
}

struct Queue {
    items: Mutex<VecDeque<Work>>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// Pushes unconditionally (used for `Stop` poisons, which must never
    /// be shed).
    fn push(&self, work: Work) {
        self.items.lock().expect("queue poisoned").push_back(work);
        self.ready.notify_one();
    }

    /// Pushes only if under `limit`; returns the work back on overflow.
    fn try_push(&self, work: Work, limit: usize) -> Result<(), Work> {
        let mut items = self.items.lock().expect("queue poisoned");
        if items.len() >= limit {
            return Err(work);
        }
        items.push_back(work);
        drop(items);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Work {
        let mut items = self.items.lock().expect("queue poisoned");
        loop {
            if let Some(work) = items.pop_front() {
                return work;
            }
            items = self.ready.wait(items).expect("queue poisoned");
        }
    }
}

/// A handle for observing and stopping a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    metrics: Arc<ServerMetrics>,
    flight: Arc<FlightRecorder>,
}

impl ServerHandle {
    /// The address the server is actually listening on (useful with
    /// port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The live request counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The flight recorder of recent requests.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Requests a graceful stop: sets the flag and wakes the accept
    /// loop with a self-connect so it notices without waiting for an
    /// external connection. Safe to call more than once.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept call blocks until *some* connection arrives; give
        // it one. Errors are fine — any concurrent real connection also
        // wakes it.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    flight: Arc<FlightRecorder>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr())
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Binds a listener. Use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let flight = Arc::new(FlightRecorder::new(config.flight_capacity));
        Ok(Self {
            listener,
            config,
            metrics: Arc::new(ServerMetrics::new()),
            flight,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket is in a bad state.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The request counters (shared with the eventual workers).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The flight recorder (shared with the eventual workers).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// A handle that can stop the server once [`Server::run`] starts.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.listener.local_addr()?,
            metrics: Arc::clone(&self.metrics),
            flight: Arc::clone(&self.flight),
        })
    }

    /// Serves until [`ServerHandle::shutdown`] is called: spawns the
    /// worker pool, accepts connections into the bounded queue, sheds
    /// overflow with 503 + `Retry-After`, then drains and joins the
    /// workers on shutdown. Blocks the calling thread for the server's
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Returns an error only if the listener itself fails fatally;
    /// per-connection errors are answered on that connection (or
    /// dropped) and serving continues.
    pub fn run(self, router: Router) -> std::io::Result<()> {
        let router = Arc::new(router);
        let queue = Arc::new(Queue::new());
        let workers = self.config.workers.max(1);
        // Stop poisons share the queue, so leave room for one per worker
        // beyond the advertised connection depth.
        let queue_limit = self.config.queue_depth.max(1);

        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let router = Arc::clone(&router);
            let metrics = Arc::clone(&self.metrics);
            let flight = Arc::clone(&self.flight);
            let config = self.config.clone();
            pool.push(std::thread::spawn(move || loop {
                match queue.pop() {
                    Work::Stop => break,
                    Work::Conn(mut stream) => {
                        // Backstop: `serve_connection` already confines
                        // handler panics, so this only trips on a bug in
                        // the serving plumbing itself — and even then the
                        // worker survives to drain the queue.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(&mut stream, &router, &metrics, &config, &flight);
                        }));
                        if outcome.is_err() {
                            metrics.record_panic();
                        }
                    }
                }
            }));
        }

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection (or a late client) lands here;
                // just drop it and stop accepting.
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            if let Err(Work::Conn(mut stream)) = queue.try_push(Work::Conn(stream), queue_limit) {
                self.metrics.record_rejected();
                // The request was never read, so the client's request ID
                // (if any) is unknown; a generated one still lets the
                // client correlate the 503 with server logs.
                let request_id = fresh_request_id();
                obs::log(
                    obs::Level::Warn,
                    "serve.access",
                    "request shed: queue full",
                    &[("request_id", request_id.as_str().into())],
                );
                let resp = Response::error(503, "server busy: request queue is full")
                    .with_header("Retry-After", self.config.retry_after_secs.to_string())
                    .with_header("X-Request-Id", request_id);
                let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                let _ = resp.write_to(&mut stream);
                // The shed connection's request bytes were never read, so
                // a plain close would RST and could destroy the 503 still
                // in the client's direction. Drain first (bounded).
                drain_and_close(&mut stream);
            }
        }

        for _ in 0..workers {
            queue.push(Work::Stop);
        }
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Decrements the in-flight gauge on scope exit, so the gauge stays
/// honest even when a handler panic unwinds through the serving path.
struct InFlightGuard<'a>(&'a ServerMetrics);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.exit_in_flight();
    }
}

/// A fresh, process-unique request ID: 16 lowercase hex digits derived
/// from a per-process salt and a counter. Unguessable enough to avoid
/// collisions across restarts, cheap enough for the accept loop.
fn fresh_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SALT: OnceLock<u64> = OnceLock::new();
    let salt = *SALT.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        nanos ^ u64::from(std::process::id()).rotate_left(32)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", obs::hash64(&format!("{salt:x}-{n}")))
}

/// Whether a client-supplied `X-Request-Id` is safe to echo and log:
/// non-empty, at most 64 bytes, only `[A-Za-z0-9._:-]`.
fn is_valid_request_id(value: &str) -> bool {
    !value.is_empty()
        && value.len() <= 64
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

/// Reads one request off the connection, dispatches it inside a span
/// tree, writes the response (always carrying `X-Request-Id`), and
/// records metrics, an access-log line, and a flight-recorder entry. All
/// errors — including a panicking handler, which is confined to this
/// request and answered with a structured 500 — are answered on the wire
/// where possible and never propagate.
fn serve_connection(
    stream: &mut TcpStream,
    router: &Router,
    metrics: &ServerMetrics,
    config: &ServerConfig,
    flight: &FlightRecorder,
) {
    metrics.enter_in_flight();
    let _in_flight = InFlightGuard(metrics);
    let alloc_scope = gables_model::prof::AllocScope::begin();
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let collector = obs::SpanCollector::new(SPAN_CAPACITY);
    let (request_id, method, route, response, fully_read) = match read_request(stream) {
        Ok(req) => {
            let request_id = req
                .header("x-request-id")
                .filter(|v| is_valid_request_id(v))
                .map(str::to_string)
                .unwrap_or_else(fresh_request_id);
            // Label unknown paths "(unmatched)" so metrics and span
            // names stay low-cardinality no matter what paths clients
            // probe (the 404 body still echoes the real path).
            let route = if router.has_path(&req.path) {
                req.path.clone()
            } else {
                "(unmatched)".to_string()
            };
            let response = {
                // The trace ID derives from the request ID, so a client
                // retrying with the same X-Request-Id produces the same
                // trace identity.
                let _root =
                    obs::attach_root(&collector, obs::hash64(&request_id), "server.request");
                let _dispatch = obs::span(&format!("dispatch {route}"));
                // A panic in one handler must cost exactly that request:
                // the worker answers a structured 500 and lives to serve
                // the next connection. Handlers borrow only `&Request`,
                // so no shared state can be left torn by the unwind
                // (`AssertUnwindSafe` is about the borrow checker, not an
                // actual safety waiver).
                catch_unwind(AssertUnwindSafe(|| router.dispatch(&req))).unwrap_or_else(|_| {
                    metrics.record_panic();
                    Response::error(500, "internal error: handler panicked")
                })
            };
            (request_id, req.method.clone(), route, response, true)
        }
        Err(err) => (
            fresh_request_id(),
            "-".to_string(),
            "(unparsed)".to_string(),
            Response::error(err.status(), &err.to_string()),
            false,
        ),
    };
    let response = response.with_header("X-Request-Id", request_id.as_str());
    let status = response.status;
    let _ = response.write_to(stream);
    let _ = stream.flush();
    if !fully_read {
        // A parse-rejected request leaves unread bytes on the socket;
        // closing over them would RST and could race the error response
        // off the wire before the client reads it.
        drain_and_close(stream);
    }
    let latency = started.elapsed();
    metrics.record_handled(&route, status, latency);
    // Handlers report cache attribution out-of-band via an `X-Cache`
    // response header (set in the route layer); surface it per-request.
    let cache_hit = response
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("x-cache"))
        .map(|(_, v)| v == "hit");
    if obs::enabled(obs::Level::Info) {
        obs::log(
            obs::Level::Info,
            "serve.access",
            "request",
            &[
                ("method", method.as_str().into()),
                ("route", route.as_str().into()),
                ("status", status.into()),
                ("latency_us", (latency.as_micros() as u64).into()),
                ("bytes", response.body.len().into()),
                (
                    "cache",
                    match cache_hit {
                        Some(true) => "hit".into(),
                        Some(false) => "miss".into(),
                        None => "-".into(),
                    },
                ),
                ("request_id", request_id.as_str().into()),
            ],
        );
    }
    let (spans, spans_dropped) = collector.take();
    let self_times = gables_model::prof::self_times_us(&spans);
    let cpu_busy_us: f64 = self_times.iter().map(|(_, us)| us).sum();
    for (phase, us) in &self_times {
        metrics.record_phase_self(phase, *us);
    }
    let alloc = alloc_scope.delta();
    flight.record(FlightRecord {
        seq: 0, // stamped by the recorder
        id: request_id,
        method,
        route,
        status,
        latency_us: latency.as_micros() as u64,
        cache_hit,
        allocs: alloc.allocs,
        alloc_bytes: alloc.bytes,
        cpu_busy_us,
        spans,
        spans_dropped,
    });
}

/// Best-effort graceful close for a connection with (possibly) unread
/// request bytes: half-close the write side so the client sees EOF
/// after the response, then drain what the client already sent so the
/// kernel does not turn unread data into an RST that races the
/// response. Both the drain time and the drained bytes are bounded, so
/// a hostile client cannot pin the calling thread.
fn drain_and_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    let mut budget: usize = 64 * 1024;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(
        router: Router,
        config: ServerConfig,
    ) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run(router).unwrap());
        (handle, join)
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn ping_router() -> Router {
        Router::new().route("GET", "/ping", |_| Response::text(200, "pong"))
    }

    #[test]
    fn serves_requests_and_shuts_down_gracefully() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("pong"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        let snapshot = handle.metrics().snapshot();
        assert_eq!(snapshot.handled, 1);
        assert_eq!(snapshot.status_2xx, 1);
        assert_eq!(snapshot.in_flight, 0);
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let reply = roundtrip(handle.addr(), "POST /ping HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
        assert!(reply.contains("Allow: GET"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_request_is_answered_not_dropped() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.metrics().snapshot().status_4xx, 1);
    }

    #[test]
    fn full_queue_sheds_load_with_503_and_retry_after() {
        // One worker, one queue slot. Two silent connections occupy the
        // worker and the slot (they hold until the read timeout), so a
        // third, real request must be shed immediately.
        let config = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let (handle, join) = started(ping_router(), config);
        // Stagger the stallers so the first is already *popped* (worker
        // blocked reading it) before the second fills the queue slot;
        // connecting back-to-back races the worker's pop and could shed
        // the second staller instead of the probe request.
        let _stall_worker = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let _stall_queue = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let start = Instant::now();
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "503 must be immediate, not wait out the stalled worker"
        );
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Retry-After: 1"), "{reply}");
        assert!(handle.metrics().snapshot().rejected >= 1);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn handler_panic_is_a_500_and_the_worker_survives() {
        let router = Router::new()
            .route("GET", "/ping", |_| Response::text(200, "pong"))
            .route("GET", "/boom", |_| panic!("intentional test panic"));
        // One worker: the request after the panic can only be served by
        // the same thread that caught it.
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let (handle, join) = started(router, config);
        let reply = roundtrip(handle.addr(), "GET /boom HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        assert!(reply.contains("handler panicked"), "{reply}");
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(reply.ends_with("pong"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        let snapshot = handle.metrics().snapshot();
        assert_eq!(snapshot.panics, 1);
        assert_eq!(snapshot.status_5xx, 1);
        assert_eq!(snapshot.in_flight, 0);
        assert_eq!(snapshot.handled, 2);
    }

    #[test]
    fn router_dispatch_is_exact_match() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::text(200, "a"))
            .route("POST", "/a", |_| Response::text(200, "posted"));
        let mk = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(router.dispatch(&mk("GET", "/a")).body, b"a");
        assert_eq!(router.dispatch(&mk("POST", "/a")).body, b"posted");
        assert_eq!(router.dispatch(&mk("DELETE", "/a")).status, 405);
        assert_eq!(router.dispatch(&mk("GET", "/b")).status, 404);
    }

    #[test]
    fn shutdown_without_traffic_does_not_hang() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn every_response_carries_a_request_id_and_custom_ids_echo_back() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        assert!(reply.contains("X-Request-Id: "), "{reply}");
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nX-Request-Id: my.custom-id:7\r\n\r\n",
        );
        assert!(reply.contains("X-Request-Id: my.custom-id:7"), "{reply}");
        // A hostile ID (header-injection attempt) is replaced, not echoed.
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nX-Request-Id: evil id\r\n\r\n",
        );
        assert!(!reply.contains("evil id"), "{reply}");
        assert!(reply.contains("X-Request-Id: "), "{reply}");
        // Even a parse failure is answered with an ID.
        let reply = roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.contains("X-Request-Id: "), "{reply}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn request_id_validation_rules() {
        assert!(is_valid_request_id("abc-123_X.z:9"));
        assert!(!is_valid_request_id(""));
        assert!(!is_valid_request_id("has space"));
        assert!(!is_valid_request_id("crlf\r\ninject"));
        assert!(!is_valid_request_id(&"x".repeat(65)));
        let a = fresh_request_id();
        let b = fresh_request_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(is_valid_request_id(&a));
    }

    #[test]
    fn flight_recorder_captures_requests_with_routes_and_spans() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let _ = roundtrip(handle.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        let _ = roundtrip(handle.addr(), "GET /scan/0 HTTP/1.1\r\n\r\n");
        handle.shutdown();
        join.join().unwrap();
        let recent = handle.flight().recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(handle.flight().recorded_total(), 2);
        // Newest first: the 404 probe, folded into "(unmatched)".
        assert_eq!(recent[0].route, "(unmatched)");
        assert_eq!(recent[0].status, 404);
        assert_eq!(recent[1].route, "/ping");
        assert_eq!(recent[1].status, 200);
        for r in &recent {
            assert!(!r.id.is_empty());
            let root = r.spans.iter().find(|s| s.name == "server.request");
            let root = root.expect("every request records a root span");
            assert!(r
                .spans
                .iter()
                .any(|s| s.name.starts_with("dispatch ") && s.parent_id == root.span_id));
        }
        // The unmatched probe's span tree also uses the folded label.
        assert!(recent[0]
            .spans
            .iter()
            .any(|s| s.name == "dispatch (unmatched)"));
        // Metrics fold the same way.
        let routes = handle.metrics().snapshot().routes;
        assert!(routes.iter().any(|(r, n)| r == "(unmatched)" && *n == 1));
        assert!(!routes.iter().any(|(r, _)| r.contains("/scan")));
    }
}
