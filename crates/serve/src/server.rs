//! The serving core: a nonblocking epoll event loop that owns every
//! connection, feeding a bounded pool of worker threads that run the
//! CPU-bound request pipeline.
//!
//! One loop thread multiplexes the listener and every connection
//! through [`crate::poll::Poller`] (level-triggered, `std`-only raw
//! syscalls). Each connection is a small state machine —
//! reading-headers/body → executing → writing → keep-alive idle — so
//! an *idle* keep-alive connection costs one fd and a few hundred
//! bytes, never a thread: one process holds tens of thousands of them
//! while the worker pool bounds concurrent evaluations.
//!
//! Capacity is still explicit at both ends. Worker count caps
//! concurrent evaluations; the job queue caps parsed-but-unserved
//! requests. When the queue is full the *loop* answers `503 Service
//! Unavailable` with `Retry-After` inline — load the server cannot
//! absorb is shed immediately instead of queueing unboundedly. This
//! mirrors how the Gables model treats a saturated resource: past the
//! roofline's knee, extra offered load changes who waits, never the
//! attainable throughput.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] sets a flag and
//! wakes the loop with a loopback self-connect; the loop closes idle
//! connections, lets in-flight requests finish (bounded grace), then
//! posts one `Stop` poison per worker and joins them.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use gables_model::obs;

use crate::flight::{FlightRecord, FlightRecorder};
use crate::http::{closed_early, parse_request_bytes, HttpError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::poll::{Interest, Poller};

/// Spans retained per request before the collector starts dropping.
const SPAN_CAPACITY: usize = 512;

/// epoll token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// epoll token of the worker-completion waker pipe.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Per-connection input buffer cap: one maximal request (head + body)
/// plus room for a pipelined successor's head. Beyond this the loop
/// stops reading (backpressure via TCP) until the buffer drains.
const IN_BUF_CAP: usize = crate::http::MAX_HEAD_BYTES + crate::http::MAX_BODY_BYTES + 4096;

/// Bytes of straggler input swallowed after a response that closes the
/// connection, so the close cannot RST the response off the wire.
const DRAIN_BUDGET: usize = 64 * 1024;

/// How long the post-response drain waits for the client's EOF.
const DRAIN_GRACE: Duration = Duration::from_millis(100);

/// How long shutdown waits for in-flight connections before giving up.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Largest write-buffer capacity a connection keeps between responses.
/// Buffers that grew past this (one oversized response) are released
/// after the flush instead of staying resident per connection.
const OUT_BUF_RECYCLE_CAP: usize = 256 * 1024;

/// A request handler: pure function of the parsed request.
pub type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes requests to handlers by exact `(method, path)` match.
#[derive(Default)]
pub struct Router {
    routes: Vec<(String, String, Handler)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router").field("routes", &routes).finish()
    }
}

impl Router {
    /// An empty router; unmatched requests get 404/405.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for an exact method + path (builder style).
    #[must_use]
    pub fn route(
        mut self,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .push((method.to_string(), path.to_string(), Box::new(handler)));
        self
    }

    /// Whether any handler is registered at this path (any method).
    /// Metrics label unknown paths `"(unmatched)"` instead of echoing
    /// them, so a client scanning arbitrary paths cannot grow the
    /// per-route counter map.
    pub fn has_path(&self, path: &str) -> bool {
        self.routes.iter().any(|(_, p, _)| p == path)
    }

    /// Every registered `(method, path)` pair, in registration order —
    /// the source of truth for the `GET /v1` discovery document.
    pub fn route_table(&self) -> Vec<(&str, &str)> {
        self.routes
            .iter()
            .map(|(m, p, _)| (m.as_str(), p.as_str()))
            .collect()
    }

    /// Dispatches one request: 404 for unknown paths, 405 (with the
    /// allowed methods) for known paths with the wrong method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut path_seen = false;
        for (method, path, handler) in &self.routes {
            if *path == req.path {
                path_seen = true;
                if *method == req.method {
                    return handler(req);
                }
            }
        }
        if path_seen {
            let allowed: Vec<&str> = self
                .routes
                .iter()
                .filter(|(_, p, _)| *p == req.path)
                .map(|(m, _, _)| m.as_str())
                .collect();
            Response::error(
                405,
                &format!(
                    "method {} not allowed; use {}",
                    req.method,
                    allowed.join(", ")
                ),
            )
            .with_header("Allow", allowed.join(", "))
        } else {
            Response::error(404, &format!("no route for {}", req.path))
        }
    }
}

/// Tuning knobs for [`Server`]. `Default` suits tests and local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (concurrent evaluations). Clamped to at least 1.
    pub workers: usize,
    /// Parsed requests allowed to wait for a worker before 503s start.
    pub queue_depth: usize,
    /// Inactivity allowance while a partial request is buffered; on
    /// expiry the connection is answered 408 and closed.
    pub read_timeout: Duration,
    /// Inactivity allowance while a response is being written.
    pub write_timeout: Duration,
    /// Value of the `Retry-After` header on backpressure 503s.
    pub retry_after_secs: u64,
    /// Requests retained by the flight recorder ring.
    pub flight_capacity: usize,
    /// How long an idle keep-alive connection (no buffered bytes) may
    /// sit before the loop closes it.
    pub keep_alive_timeout: Duration,
    /// Concurrent connections the loop will hold; beyond this, new
    /// connections are answered 503 and closed. Keep below the
    /// process fd limit.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
            flight_capacity: 64,
            keep_alive_timeout: Duration::from_secs(60),
            max_connections: 16_384,
        }
    }
}

/// One parsed request bound for the worker pool.
struct Job {
    slot: usize,
    generation: u64,
    request: Request,
    keep_alive: bool,
    /// The connection's recycled write buffer, carried along so the
    /// worker serializes the response into capacity the connection
    /// already owns instead of a fresh `Vec` per response. It returns
    /// to the connection inside [`Done::bytes`].
    buf: Vec<u8>,
}

enum Work {
    Job(Job),
    Stop,
}

/// A finished request: serialized bytes ready for the loop to write.
struct Done {
    slot: usize,
    generation: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// State shared between the event loop and the worker pool.
struct Shared {
    jobs: Mutex<VecDeque<Work>>,
    ready: Condvar,
    done: Mutex<Vec<Done>>,
    wake_pending: AtomicBool,
    waker: Mutex<std::io::PipeWriter>,
}

impl Shared {
    fn new(waker: std::io::PipeWriter) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            done: Mutex::new(Vec::new()),
            wake_pending: AtomicBool::new(false),
            waker: Mutex::new(waker),
        }
    }

    /// Pushes unconditionally (used for `Stop` poisons, which must
    /// never be shed).
    fn push(&self, work: Work) {
        self.jobs.lock().expect("queue poisoned").push_back(work);
        self.ready.notify_one();
    }

    /// Pushes only if under `limit`; false means the caller sheds.
    fn try_push(&self, work: Work, limit: usize) -> bool {
        let mut jobs = self.jobs.lock().expect("queue poisoned");
        if jobs.len() >= limit {
            return false;
        }
        jobs.push_back(work);
        drop(jobs);
        self.ready.notify_one();
        true
    }

    fn pop(&self) -> Work {
        let mut jobs = self.jobs.lock().expect("queue poisoned");
        loop {
            if let Some(work) = jobs.pop_front() {
                return work;
            }
            jobs = self.ready.wait(jobs).expect("queue poisoned");
        }
    }

    /// Hands a finished response back to the loop and pokes the waker
    /// pipe (deduplicated: at most one pending byte).
    fn complete(&self, done: Done) {
        self.done.lock().expect("done poisoned").push(done);
        if !self.wake_pending.swap(true, Ordering::SeqCst) {
            let mut waker = self.waker.lock().expect("waker poisoned");
            let _ = waker.write(&[1u8]);
        }
    }

    fn take_done(&self) -> Vec<Done> {
        std::mem::take(&mut *self.done.lock().expect("done poisoned"))
    }
}

/// A handle for observing and stopping a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    metrics: Arc<ServerMetrics>,
    flight: Arc<FlightRecorder>,
}

impl ServerHandle {
    /// The address the server is actually listening on (useful with
    /// port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The live request counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The flight recorder of recent requests.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Requests a graceful stop: sets the flag and wakes the event
    /// loop with a self-connect so it notices without waiting for an
    /// external event. Safe to call more than once.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The loop may be parked in epoll_wait; a connection attempt
        // makes the listener readable and wakes it. Errors are fine —
        // any concurrent real event also wakes it.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    flight: Arc<FlightRecorder>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr())
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Binds a listener. Use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let flight = Arc::new(FlightRecorder::new(config.flight_capacity));
        Ok(Self {
            listener,
            config,
            metrics: Arc::new(ServerMetrics::new()),
            flight,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket is in a bad state.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The request counters (shared with the eventual workers).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The flight recorder (shared with the eventual workers).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// A handle that can stop the server once [`Server::run`] starts.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.listener.local_addr()?,
            metrics: Arc::clone(&self.metrics),
            flight: Arc::clone(&self.flight),
        })
    }

    /// Serves until [`ServerHandle::shutdown`] is called: spawns the
    /// worker pool, runs the epoll event loop over the listener and
    /// every connection, sheds queue overflow with 503 +
    /// `Retry-After`, then drains in-flight work and joins the workers
    /// on shutdown. Blocks the calling thread for the server's
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Returns an error only if the listener, the epoll instance, or
    /// the waker pipe fails fatally (including `Unsupported` on
    /// non-Linux builds); per-connection errors are answered on that
    /// connection (or dropped) and serving continues.
    pub fn run(self, router: Router) -> std::io::Result<()> {
        let router = Arc::new(router);
        let workers = self.config.workers.max(1);
        let (waker_rx, waker_tx) = std::io::pipe()?;
        let shared = Arc::new(Shared::new(waker_tx));

        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            let router = Arc::clone(&router);
            let metrics = Arc::clone(&self.metrics);
            let flight = Arc::clone(&self.flight);
            pool.push(std::thread::spawn(move || loop {
                match shared.pop() {
                    Work::Stop => break,
                    Work::Job(job) => {
                        // Backstop: `execute` already confines handler
                        // panics, so this only trips on a bug in the
                        // serving plumbing itself — and even then the
                        // worker survives to drain the queue.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            execute(job, &router, &metrics, &flight, &shared);
                        }));
                        if outcome.is_err() {
                            metrics.record_panic();
                        }
                    }
                }
            }));
        }

        let mut event_loop = EventLoop {
            listener: self.listener,
            poller: Poller::new()?,
            waker_rx,
            config: self.config,
            metrics: self.metrics,
            flight: self.flight,
            shutdown: self.shutdown,
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            free: Vec::new(),
            generation: 0,
        };
        let result = event_loop.run();

        for _ in 0..workers {
            shared.push(Work::Stop);
        }
        for worker in pool {
            let _ = worker.join();
        }
        result
    }
}

/// What the loop is doing with a connection right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes (an empty buffer is keep-alive idle).
    Reading,
    /// A parsed request is in the worker pool; the response is pending.
    Executing,
    /// Response bytes are being flushed to the socket.
    Writing,
    /// Half-closed after a final response; swallowing stragglers so the
    /// close cannot RST the response off the wire.
    Draining,
}

/// One connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    in_buf: Vec<u8>,
    out_buf: Vec<u8>,
    out_pos: usize,
    close_after_write: bool,
    peer_eof: bool,
    /// When the bytes of the *current* partial request started arriving
    /// (drives the 408 deadline and the parse-error latency stamp).
    read_started: Option<Instant>,
    /// Last byte movement in either direction (drives idle/write
    /// deadlines).
    last_activity: Instant,
    /// Remaining drain allowance in the `Draining` state.
    drain_budget: usize,
    /// Armed (only) on entry to `Draining`; `None` everywhere else, so a
    /// state transition that forgets the arm can never leave a stale
    /// instant behind that makes the connection reapable on the next
    /// deadline tick.
    drain_deadline: Option<Instant>,
    generation: u64,
    interest: Interest,
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    waker_rx: std::io::PipeReader,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    flight: Arc<FlightRecorder>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generation: u64,
}

impl EventLoop {
    fn run(&mut self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        self.poller
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        self.poller
            .add(self.waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;

        let mut events = Vec::new();
        let mut stopping: Option<Instant> = None;
        loop {
            if self.shutdown.load(Ordering::SeqCst) && stopping.is_none() {
                stopping = Some(Instant::now());
                // Idle keep-alive connections have nothing owed to
                // them; everything else gets a bounded grace.
                for slot in 0..self.conns.len() {
                    let idle = matches!(
                        &self.conns[slot],
                        Some(c) if c.state == ConnState::Reading && c.in_buf.is_empty()
                    );
                    if idle {
                        self.close(slot);
                    }
                }
            }
            if let Some(since) = stopping {
                let live = self.conns.iter().flatten().count();
                if live == 0 || since.elapsed() > SHUTDOWN_GRACE {
                    return Ok(());
                }
            }

            self.poller.wait(&mut events, 100)?;
            let batch: Vec<crate::poll::Event> = events.clone();
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.on_accept(stopping.is_some()),
                    TOKEN_WAKER => {
                        let mut sink = [0u8; 64];
                        let _ = self.waker_rx.read(&mut sink);
                        self.shared.wake_pending.store(false, Ordering::SeqCst);
                    }
                    token => {
                        self.on_conn_event(token as usize, ev.readable, ev.writable, ev.hangup)
                    }
                }
            }
            // Completions are drained every tick (not only on waker
            // events), so a lost wake can delay a response by at most
            // one poll timeout.
            for done in self.shared.take_done() {
                self.on_done(done);
            }
            self.scan_deadlines();
        }
    }

    fn on_accept(&mut self, stopping: bool) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stopping {
                        continue; // drop: shutdown wake-up or late client
                    }
                    let live = self.conns.iter().flatten().count();
                    if live >= self.config.max_connections {
                        let _ = stream.set_nonblocking(true);
                        let resp = Response::error(503, "server busy: connection limit reached")
                            .with_header("Retry-After", self.config.retry_after_secs.to_string());
                        let mut s = stream;
                        let _ = s.write(&resp.serialize(false));
                        self.metrics.record_rejected();
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.generation += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), slot as u64, Interest::READ)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(Conn {
                        stream,
                        state: ConnState::Reading,
                        in_buf: Vec::new(),
                        out_buf: Vec::new(),
                        out_pos: 0,
                        close_after_write: false,
                        peer_eof: false,
                        read_started: None,
                        last_activity: Instant::now(),
                        drain_budget: DRAIN_BUDGET,
                        drain_deadline: None,
                        generation: self.generation,
                        interest: Interest::READ,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn on_conn_event(&mut self, slot: usize, readable: bool, writable: bool, hangup: bool) {
        if slot >= self.conns.len() || self.conns[slot].is_none() {
            return; // already closed this tick
        }
        if readable {
            self.on_readable(slot);
        }
        if self.conns.get(slot).is_some_and(Option::is_some) && writable {
            if let Some(conn) = self.conns[slot].as_ref() {
                if conn.state == ConnState::Writing {
                    self.flush_writes(slot);
                }
            }
        }
        // A bare hangup (no readable bit) can only be acted on when no
        // response is owed; otherwise the write path discovers it.
        if let Some(conn) = self.conns[slot].as_ref() {
            if hangup && !readable && conn.state == ConnState::Reading && conn.in_buf.is_empty() {
                self.close(slot);
            }
        }
    }

    fn on_readable(&mut self, slot: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.peer_eof {
                break;
            }
            if conn.state == ConnState::Draining {
                match conn.stream.read(&mut chunk) {
                    Ok(0) | Err(_) => {
                        self.close(slot);
                        return;
                    }
                    Ok(n) => {
                        if n >= conn.drain_budget {
                            self.close(slot);
                            return;
                        }
                        conn.drain_budget -= n;
                        continue;
                    }
                }
            }
            if conn.in_buf.len() >= IN_BUF_CAP {
                // Stop reading until the buffer drains; TCP backpressure
                // does the rest.
                self.update_interest(slot);
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.in_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if conn.read_started.is_none() {
                        conn.read_started = Some(conn.last_activity);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        if let Some(conn) = self.conns[slot].as_ref() {
            if conn.state == ConnState::Reading {
                self.try_dispatch(slot);
            } else if conn.state == ConnState::Executing && conn.peer_eof {
                self.update_interest(slot);
            }
        }
    }

    /// Attempts to parse and hand off the next buffered request.
    fn try_dispatch(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        match parse_request_bytes(&conn.in_buf) {
            Ok(None) => {
                if conn.peer_eof {
                    if conn.in_buf.is_empty() {
                        self.close(slot);
                    } else {
                        let err = closed_early(&conn.in_buf);
                        self.finish_unparsed(slot, &err);
                    }
                }
                // else: wait for more bytes (the 408 deadline guards).
            }
            Ok(Some(parsed)) => {
                conn.in_buf.drain(..parsed.consumed);
                if conn.in_buf.is_empty() {
                    conn.read_started = None;
                } else {
                    conn.read_started = Some(Instant::now());
                }
                let keep_alive = parsed.keep_alive && !conn.peer_eof;
                let job = Job {
                    slot,
                    generation: conn.generation,
                    request: parsed.request,
                    keep_alive,
                    // Idle while Executing — lend it to the worker so the
                    // response is serialized into recycled capacity.
                    buf: std::mem::take(&mut conn.out_buf),
                };
                conn.state = ConnState::Executing;
                let limit = self.config.queue_depth.max(1);
                if !self.shared.try_push(Work::Job(job), limit) {
                    self.shed(slot);
                } else {
                    self.update_interest(slot);
                }
            }
            Err(err) => self.finish_unparsed(slot, &err),
        }
    }

    /// Answers a 503 for a parsed request the queue cannot absorb.
    fn shed(&mut self, slot: usize) {
        self.metrics.record_rejected();
        let request_id = fresh_request_id();
        obs::log(
            obs::Level::Warn,
            "serve.access",
            "request shed: queue full",
            &[("request_id", request_id.as_str().into())],
        );
        let resp = Response::error(503, "server busy: request queue is full")
            .with_header("Retry-After", self.config.retry_after_secs.to_string())
            .with_header("X-Request-Id", request_id);
        self.queue_response(slot, &resp);
    }

    /// Answers a request that never parsed (malformed, oversized, timed
    /// out, truncated by EOF), recording the same telemetry the old
    /// blocking path did: route `"(unparsed)"`, method `-`, a flight
    /// record, and an access-log line.
    fn finish_unparsed(&mut self, slot: usize, err: &HttpError) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.in_buf.clear(); // framing is poisoned; nothing more parses
        let started = conn.read_started.take();
        let metrics = Arc::clone(&self.metrics);
        metrics.enter_in_flight();
        let _in_flight = InFlightGuard(&metrics);
        let alloc_scope = gables_model::prof::AllocScope::begin();
        let request_id = fresh_request_id();
        let response = Response::error(err.status(), &err.to_string())
            .with_header("X-Request-Id", request_id.as_str());
        let status = response.status;
        let latency = started.map(|t| t.elapsed()).unwrap_or_default();
        let route = "(unparsed)".to_string();
        self.metrics.record_handled(&route, status, latency);
        if obs::enabled(obs::Level::Info) {
            obs::log(
                obs::Level::Info,
                "serve.access",
                "request",
                &[
                    ("method", "-".into()),
                    ("route", route.as_str().into()),
                    ("status", status.into()),
                    ("latency_us", (latency.as_micros() as u64).into()),
                    ("bytes", response.body.len().into()),
                    ("cache", "-".into()),
                    ("request_id", request_id.as_str().into()),
                ],
            );
        }
        let alloc = alloc_scope.delta();
        self.flight.record(FlightRecord {
            seq: 0, // stamped by the recorder
            id: request_id,
            method: "-".to_string(),
            route,
            status,
            ts_unix_us: crate::slo::unix_now_us(),
            latency_us: latency.as_micros() as u64,
            cache_hit: None,
            allocs: alloc.allocs,
            alloc_bytes: alloc.bytes,
            cpu_busy_us: 0.0,
            spans: Vec::new(),
            spans_dropped: 0,
        });
        self.queue_response(slot, &response);
    }

    /// Serializes a loop-side error response (always `Connection: close`)
    /// into the connection's recycled write buffer and starts flushing.
    fn queue_response(&mut self, slot: usize, response: &Response) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let mut buf = std::mem::take(&mut conn.out_buf);
        response.serialize_into(false, &mut buf);
        self.queue_write(slot, buf, true);
    }

    /// Installs a response body and starts flushing it.
    fn queue_write(&mut self, slot: usize, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.out_buf = bytes;
        conn.out_pos = 0;
        conn.close_after_write = close;
        conn.state = ConnState::Writing;
        conn.last_activity = Instant::now();
        self.flush_writes(slot);
    }

    fn flush_writes(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.out_pos >= conn.out_buf.len() {
                self.on_write_complete(slot);
                return;
            }
            match conn.stream.write(&conn.out_buf[conn.out_pos..]) {
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.update_interest(slot);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    fn on_write_complete(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        // Keep the buffer for this connection's next response; an
        // oversized one-off releases its capacity instead of pinning it
        // for the connection's lifetime.
        if conn.out_buf.capacity() > OUT_BUF_RECYCLE_CAP {
            conn.out_buf = Vec::new();
        } else {
            conn.out_buf.clear();
        }
        conn.out_pos = 0;
        if conn.close_after_write {
            if conn.peer_eof {
                // The client already half-closed; everything it sent is
                // consumed, so a plain close cannot RST the response.
                self.close(slot);
            } else {
                // Half-close and swallow stragglers briefly so unread
                // pipelined bytes cannot RST the response off the wire.
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.state = ConnState::Draining;
                conn.drain_budget = DRAIN_BUDGET;
                conn.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                self.update_interest(slot);
            }
        } else {
            conn.state = ConnState::Reading;
            conn.last_activity = Instant::now();
            self.update_interest(slot);
            // A pipelined successor may already be buffered.
            self.try_dispatch(slot);
        }
    }

    fn on_done(&mut self, done: Done) {
        let Some(conn) = self.conns.get_mut(done.slot).and_then(Option::as_mut) else {
            return; // connection died while executing
        };
        if conn.generation != done.generation || conn.state != ConnState::Executing {
            return; // stale completion for a reused slot
        }
        let close = done.close || conn.peer_eof;
        self.queue_write(done.slot, done.bytes, close);
    }

    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            match conn.state {
                ConnState::Reading => {
                    if conn.in_buf.is_empty() && conn.read_started.is_none() {
                        if now.duration_since(conn.last_activity) > self.config.keep_alive_timeout {
                            self.close(slot);
                        }
                    } else if now.duration_since(conn.last_activity) > self.config.read_timeout {
                        let err = HttpError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut));
                        self.finish_unparsed(slot, &err);
                    }
                }
                ConnState::Writing => {
                    if now.duration_since(conn.last_activity) > self.config.write_timeout {
                        self.close(slot);
                    }
                }
                ConnState::Draining => {
                    // Armed on entry to Draining. A `None` here means a
                    // transition missed the arm — grant the grace now
                    // rather than reaping on the very next tick.
                    let deadline = *conn.drain_deadline.get_or_insert(now + DRAIN_GRACE);
                    if now >= deadline {
                        self.close(slot);
                    }
                }
                ConnState::Executing => {}
            }
        }
    }

    /// The interest a connection's state implies.
    fn desired_interest(conn: &Conn) -> Interest {
        let read = !conn.peer_eof && conn.in_buf.len() < IN_BUF_CAP;
        match conn.state {
            ConnState::Reading | ConnState::Executing => Interest { read, write: false },
            ConnState::Writing => Interest { read, write: true },
            ConnState::Draining => Interest::READ,
        }
    }

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let want = Self::desired_interest(conn);
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), slot as u64, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.free.push(slot);
        }
    }
}

/// Runs the full request pipeline on a worker thread: span tree,
/// dispatch (with a confined panic answered as a structured 500),
/// metrics, access log, and flight record — then hands the serialized
/// response back to the event loop.
fn execute(
    job: Job,
    router: &Router,
    metrics: &ServerMetrics,
    flight: &FlightRecorder,
    shared: &Shared,
) {
    metrics.enter_in_flight();
    let _in_flight = InFlightGuard(metrics);
    let alloc_scope = gables_model::prof::AllocScope::begin();
    let started = Instant::now();
    let collector = obs::SpanCollector::new(SPAN_CAPACITY);
    let req = &job.request;
    let request_id = req
        .header("x-request-id")
        .filter(|v| is_valid_request_id(v))
        .map(str::to_string)
        .unwrap_or_else(fresh_request_id);
    // Label unknown paths "(unmatched)" so metrics and span names stay
    // low-cardinality no matter what paths clients probe (the 404 body
    // still echoes the real path).
    let route = if router.has_path(&req.path) {
        req.path.clone()
    } else {
        "(unmatched)".to_string()
    };
    let response = {
        // The trace ID derives from the request ID, so a client
        // retrying with the same X-Request-Id produces the same trace
        // identity.
        let _root = obs::attach_root(&collector, obs::hash64(&request_id), "server.request");
        let _dispatch = obs::span(&format!("dispatch {route}"));
        // A panic in one handler must cost exactly that request: the
        // worker answers a structured 500 and lives to serve the next
        // job. Handlers borrow only `&Request`, so no shared state can
        // be left torn by the unwind (`AssertUnwindSafe` is about the
        // borrow checker, not an actual safety waiver).
        catch_unwind(AssertUnwindSafe(|| router.dispatch(req))).unwrap_or_else(|_| {
            metrics.record_panic();
            Response::error(500, "internal error: handler panicked")
        })
    };
    let response = response.with_header("X-Request-Id", request_id.as_str());
    let status = response.status;
    let latency = started.elapsed();
    metrics.record_handled(&route, status, latency);
    // Handlers report cache attribution out-of-band via an `X-Cache`
    // response header (set in the route layer); surface it per-request.
    let cache_hit = response
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("x-cache"))
        .map(|(_, v)| v == "hit");
    if obs::enabled(obs::Level::Info) {
        obs::log(
            obs::Level::Info,
            "serve.access",
            "request",
            &[
                ("method", req.method.as_str().into()),
                ("route", route.as_str().into()),
                ("status", status.into()),
                ("latency_us", (latency.as_micros() as u64).into()),
                ("bytes", response.body.len().into()),
                (
                    "cache",
                    match cache_hit {
                        Some(true) => "hit".into(),
                        Some(false) => "miss".into(),
                        None => "-".into(),
                    },
                ),
                ("request_id", request_id.as_str().into()),
            ],
        );
    }
    let (spans, spans_dropped) = collector.take();
    let self_times = gables_model::prof::self_times_us(&spans);
    let cpu_busy_us: f64 = self_times.iter().map(|(_, us)| us).sum();
    for (phase, us) in &self_times {
        metrics.record_phase_self(phase, *us);
    }
    let alloc = alloc_scope.delta();
    flight.record(FlightRecord {
        seq: 0, // stamped by the recorder
        id: request_id,
        method: req.method.clone(),
        route,
        status,
        ts_unix_us: crate::slo::unix_now_us(),
        latency_us: latency.as_micros() as u64,
        cache_hit,
        allocs: alloc.allocs,
        alloc_bytes: alloc.bytes,
        cpu_busy_us,
        spans,
        spans_dropped,
    });
    // Serialize into the connection's recycled buffer (lent via the
    // job); it rides back to the event loop inside `Done::bytes`.
    let mut bytes = job.buf;
    response.serialize_into(job.keep_alive, &mut bytes);
    shared.complete(Done {
        slot: job.slot,
        generation: job.generation,
        bytes,
        close: !job.keep_alive,
    });
}

/// Decrements the in-flight gauge on scope exit, so the gauge stays
/// honest even when a handler panic unwinds through the serving path.
struct InFlightGuard<'a>(&'a ServerMetrics);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.exit_in_flight();
    }
}

/// A fresh, process-unique request ID: 16 lowercase hex digits derived
/// from a per-process salt and a counter. Unguessable enough to avoid
/// collisions across restarts, cheap enough for the event loop.
fn fresh_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SALT: OnceLock<u64> = OnceLock::new();
    let salt = *SALT.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        nanos ^ u64::from(std::process::id()).rotate_left(32)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", obs::hash64(&format!("{salt:x}-{n}")))
}

/// Whether a client-supplied `X-Request-Id` is safe to echo and log:
/// non-empty, at most 64 bytes, only `[A-Za-z0-9._:-]`.
fn is_valid_request_id(value: &str) -> bool {
    !value.is_empty()
        && value.len() <= 64
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(
        router: Router,
        config: ServerConfig,
    ) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run(router).unwrap());
        (handle, join)
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn ping_router() -> Router {
        Router::new().route("GET", "/ping", |_| Response::text(200, "pong"))
    }

    #[test]
    fn serves_requests_and_shuts_down_gracefully() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("pong"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        let snapshot = handle.metrics().snapshot();
        assert_eq!(snapshot.handled, 1);
        assert_eq!(snapshot.status_2xx, 1);
        assert_eq!(snapshot.in_flight, 0);
    }

    #[test]
    fn keep_alive_connection_serves_sequential_requests() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for _ in 0..3 {
            stream.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let reply = read_framed(&mut stream);
            assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
            assert!(reply.contains("Connection: keep-alive"), "{reply}");
            assert!(reply.ends_with("pong"), "{reply}");
        }
        drop(stream);
        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.metrics().snapshot().handled, 3);
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::text(200, "alpha"))
            .route("GET", "/b", |_| Response::text(200, "beta"));
        let (handle, join) = started(router, ServerConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let alpha = out.find("alpha").expect("first response body");
        let beta = out.find("beta").expect("second response body");
        assert!(
            alpha < beta,
            "responses must arrive in request order:\n{out}"
        );
        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.metrics().snapshot().handled, 2);
    }

    #[test]
    fn draining_swallows_stragglers_and_still_delivers_the_response() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A close-delimited request with an unread pipelined successor:
        // after the response, the server enters Draining and must swallow
        // the leftover bytes for the drain grace instead of closing with
        // unread input (which could RST the response off the wire). A
        // connection whose drain deadline were left unarmed would be
        // reapable on the next deadline tick, racing the client's read.
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\nGET /ping HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
        assert!(out.ends_with("pong"), "{out}");
        // Stragglers sent while Draining are swallowed, not answered.
        let _ = stream.write(b"even later bytes");
        handle.shutdown();
        join.join().unwrap();
        // The pipelined successor behind the close was never dispatched.
        assert_eq!(handle.metrics().snapshot().handled, 1);
    }

    #[test]
    fn idle_connections_do_not_occupy_workers() {
        // One worker; a fistful of silent keep-alive connections must
        // not stop a real request from being served immediately.
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let (handle, join) = started(ping_router(), config);
        let idle: Vec<TcpStream> = (0..8)
            .map(|_| TcpStream::connect(handle.addr()).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        let start = Instant::now();
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.ends_with("pong"), "{reply}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "idle connections must not block the worker"
        );
        drop(idle);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(
            handle.addr(),
            "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        let reply = roundtrip(
            handle.addr(),
            "POST /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
        assert!(reply.contains("Allow: GET"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_request_is_answered_not_dropped() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.metrics().snapshot().status_4xx, 1);
    }

    #[test]
    fn full_queue_sheds_load_with_503_and_retry_after() {
        // One worker, one queue slot. Two slow requests occupy the
        // worker and the slot, so a third, real request must be shed
        // immediately — idle connections no longer pin anything, so the
        // stallers are genuinely slow *handlers*.
        let router = Router::new()
            .route("GET", "/ping", |_| Response::text(200, "pong"))
            .route("GET", "/slow", |_| {
                std::thread::sleep(Duration::from_millis(1500));
                Response::text(200, "slow")
            });
        let config = ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        };
        let (handle, join) = started(router, config);
        let addr = handle.addr();
        let stallers: Vec<_> = (0..2)
            .map(|_| {
                let t = std::thread::spawn(move || {
                    roundtrip(addr, "GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n")
                });
                // Stagger so the first is already *executing* (popped)
                // before the second fills the queue slot.
                std::thread::sleep(Duration::from_millis(300));
                t
            })
            .collect();
        let start = Instant::now();
        let reply = roundtrip(addr, "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "503 must be immediate, not wait out the busy worker"
        );
        assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
        assert!(reply.contains("Retry-After: 1"), "{reply}");
        assert!(handle.metrics().snapshot().rejected >= 1);
        for t in stallers {
            let reply = t.join().unwrap();
            assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn handler_panic_is_a_500_and_the_worker_survives() {
        let router = Router::new()
            .route("GET", "/ping", |_| Response::text(200, "pong"))
            .route("GET", "/boom", |_| panic!("intentional test panic"));
        // One worker: the request after the panic can only be served by
        // the same thread that caught it.
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let (handle, join) = started(router, config);
        let reply = roundtrip(
            handle.addr(),
            "GET /boom HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        assert!(reply.contains("handler panicked"), "{reply}");
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.ends_with("pong"), "{reply}");
        handle.shutdown();
        join.join().unwrap();
        let snapshot = handle.metrics().snapshot();
        assert_eq!(snapshot.panics, 1);
        assert_eq!(snapshot.status_5xx, 1);
        assert_eq!(snapshot.in_flight, 0);
        assert_eq!(snapshot.handled, 2);
    }

    #[test]
    fn router_dispatch_is_exact_match() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::text(200, "a"))
            .route("POST", "/a", |_| Response::text(200, "posted"));
        let mk = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(router.dispatch(&mk("GET", "/a")).body, b"a");
        assert_eq!(router.dispatch(&mk("POST", "/a")).body, b"posted");
        assert_eq!(router.dispatch(&mk("DELETE", "/a")).status, 405);
        assert_eq!(router.dispatch(&mk("GET", "/b")).status, 404);
        assert_eq!(router.route_table(), vec![("GET", "/a"), ("POST", "/a")]);
    }

    #[test]
    fn shutdown_without_traffic_does_not_hang() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn every_response_carries_a_request_id_and_custom_ids_echo_back() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("X-Request-Id: "), "{reply}");
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nX-Request-Id: my.custom-id:7\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("X-Request-Id: my.custom-id:7"), "{reply}");
        // A hostile ID (header-injection attempt) is replaced, not echoed.
        let reply = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nX-Request-Id: evil id\r\nConnection: close\r\n\r\n",
        );
        assert!(!reply.contains("evil id"), "{reply}");
        assert!(reply.contains("X-Request-Id: "), "{reply}");
        // Even a parse failure is answered with an ID.
        let reply = roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.contains("X-Request-Id: "), "{reply}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn request_id_validation_rules() {
        assert!(is_valid_request_id("abc-123_X.z:9"));
        assert!(!is_valid_request_id(""));
        assert!(!is_valid_request_id("has space"));
        assert!(!is_valid_request_id("crlf\r\ninject"));
        assert!(!is_valid_request_id(&"x".repeat(65)));
        let a = fresh_request_id();
        let b = fresh_request_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(is_valid_request_id(&a));
    }

    #[test]
    fn flight_recorder_captures_requests_with_routes_and_spans() {
        let (handle, join) = started(ping_router(), ServerConfig::default());
        let _ = roundtrip(
            handle.addr(),
            "GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let _ = roundtrip(
            handle.addr(),
            "GET /scan/0 HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        handle.shutdown();
        join.join().unwrap();
        let recent = handle.flight().recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(handle.flight().recorded_total(), 2);
        // Newest first: the 404 probe, folded into "(unmatched)".
        assert_eq!(recent[0].route, "(unmatched)");
        assert_eq!(recent[0].status, 404);
        assert_eq!(recent[1].route, "/ping");
        assert_eq!(recent[1].status, 200);
        for r in &recent {
            assert!(!r.id.is_empty());
            let root = r.spans.iter().find(|s| s.name == "server.request");
            let root = root.expect("every request records a root span");
            assert!(r
                .spans
                .iter()
                .any(|s| s.name.starts_with("dispatch ") && s.parent_id == root.span_id));
        }
        // The unmatched probe's span tree also uses the folded label.
        assert!(recent[0]
            .spans
            .iter()
            .any(|s| s.name == "dispatch (unmatched)"));
        // Metrics fold the same way.
        let routes = handle.metrics().snapshot().routes;
        assert!(routes.iter().any(|(r, n)| r == "(unmatched)" && *n == 1));
        assert!(!routes.iter().any(|(r, _)| r.contains("/scan")));
    }

    /// Reads exactly one `Content-Length`-framed response off a
    /// keep-alive connection.
    fn read_framed(stream: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse().ok())
                    .expect("Content-Length header");
                let body_start = head_end + 4;
                if buf.len() >= body_start + len {
                    return String::from_utf8_lossy(&buf[..body_start + len]).to_string();
                }
            }
            let n = stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "connection closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}
